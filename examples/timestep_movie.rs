//! Render every stored timestep of the simulation to a PPM frame —
//! the "browsing a stored simulation run" use case that motivates the
//! paper's application class.
//!
//! ```text
//! cargo run --release -p examples --bin timestep_movie
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::{Dataset, Dims, TIMESTEPS};

fn main() {
    let (topo, hosts) = rogue_cluster(4);
    let dataset = Dataset::generate(Dims::new(49, 49, 49), (4, 4, 4), 64, 123);
    let mut cfg = AppConfig::new(dataset, hosts.clone(), 2, 384, 384);
    cfg.iso = 0.5;
    cfg.species = 1;
    let cfg = Arc::new(cfg);

    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(&hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };

    // All ten timesteps as consecutive units of work in ONE run: filter
    // copies stay resident, re-running their init/process/finalize cycle
    // per timestep.
    let multi = dcapp::run_pipeline_uows(&topo, &cfg, &spec, TIMESTEPS).expect("run");
    let dir = examples::out_dir();
    for (t, (img, dt)) in multi.images.iter().zip(&multi.uow_elapsed).enumerate() {
        let path = dir.join(format!("movie_{t:02}.ppm"));
        img.save_ppm(&path).expect("write frame");
        println!(
            "timestep {t}: {:.3} virtual s, {} active pixels -> {}",
            dt.as_secs_f64(),
            img.coverage(isosurf::BACKGROUND),
            path.display()
        );
    }
    let avg = multi
        .uow_elapsed
        .iter()
        .map(|d| d.as_secs_f64())
        .sum::<f64>()
        / multi.uow_elapsed.len() as f64;
    println!(
        "\naverage per-timestep render time: {avg:.3}s ({} engine events total)",
        multi.report.events
    );
}
