//! Heterogeneity demo: half the cluster is busy with background jobs.
//! Compare round-robin and demand-driven buffer scheduling, and inspect
//! where the buffers actually went.
//!
//! ```text
//! cargo run --release -p examples --bin heterogeneous_cluster
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use volume::{Dataset, Dims};

fn main() {
    let dataset = Dataset::generate(Dims::new(49, 49, 97), (4, 4, 8), 64, 7);

    for bg in [0u32, 8] {
        println!("\n--- {} background jobs on each Rogue node ---", bg);
        for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
            // 2 loaded Rogue + 2 dedicated Blue nodes.
            let (topo, rogues, blues) = rogue_blue_mix(2);
            for &h in &rogues {
                topo.host(h).cpu.set_bg_jobs(bg);
            }
            let mut hosts = rogues.clone();
            hosts.extend(&blues);
            let mut cfg = AppConfig::new(dataset.clone(), hosts.clone(), 2, 512, 512);
            cfg.iso = 0.5;
            let cfg = Arc::new(cfg);

            let spec = PipelineSpec {
                grouping: Grouping::RERaSplit {
                    raster: Placement::one_per_host(&hosts),
                },
                algorithm: Algorithm::ActivePixel,
                policy,
                merge_host: blues[0],
            };
            let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
            let stream = r.to_raster.expect("raster stream");
            let per_set: Vec<String> = r
                .report
                .stream(stream)
                .copysets
                .iter()
                .map(|(h, c)| format!("h{}:{}", h.0, c.buffers_received))
                .collect();
            println!(
                "  {:>3}: {:>7.3}s   buffers per raster copy set: {}",
                policy.label(),
                r.elapsed.as_secs_f64(),
                per_set.join("  ")
            );
            if bg > 0 && policy.label() == "DD" {
                println!("       host utilization:");
                for u in topo.utilization(r.elapsed) {
                    println!("       {u}");
                }
            }
        }
    }
    println!(
        "\nWith load, DD routes triangle buffers toward the dedicated (Blue) \
         nodes and finishes sooner; RR splits evenly and waits for the slow nodes."
    );
}
