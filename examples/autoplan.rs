//! Automatic configuration: let the planner probe the dataset, model the
//! candidate configurations, and pick the grouping/placement/policy — then
//! check its choice against a brute-force sweep.
//!
//! ```text
//! cargo run --release -p examples --bin autoplan
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use volume::{Dataset, Dims};

fn main() {
    // A heterogeneous, loaded cluster: 2 busy Rogue + 2 idle Blue nodes.
    let (topo, rogues, blues) = rogue_blue_mix(2);
    for &h in &rogues {
        topo.host(h).cpu.set_bg_jobs(6);
    }
    let mut hosts = rogues.clone();
    hosts.extend(&blues);

    let dataset = Dataset::generate(Dims::new(49, 49, 97), (4, 4, 8), 64, 31);
    let mut cfg = AppConfig::new(dataset, hosts.clone(), 2, 512, 512);
    cfg.iso = 0.5;
    let cfg = Arc::new(cfg);

    let plan = dcapp::plan(&topo, &cfg, &hosts);
    println!("planner: {}", plan.rationale);
    println!("model estimates per configuration:");
    for (label, secs) in &plan.candidates {
        println!("  {label:>8}: {secs:.2}s (model)");
    }

    let planned = dcapp::run_pipeline(&topo, &cfg, &plan.spec).expect("run");
    println!(
        "\nplanned  [{} + {}]: {:.3}s measured",
        plan.spec.grouping.label(),
        plan.spec.policy.label(),
        planned.elapsed.as_secs_f64()
    );

    // Brute force for comparison.
    let mut best = (String::new(), f64::INFINITY);
    for grouping in [
        Grouping::RERaM,
        Grouping::RERaSplit {
            raster: Placement::one_per_host(&hosts),
        },
        Grouping::REraSplit {
            era: Placement::one_per_host(&hosts),
        },
    ] {
        for policy in [
            WritePolicy::RoundRobin,
            WritePolicy::WeightedRoundRobin,
            WritePolicy::demand_driven(),
        ] {
            let spec = PipelineSpec {
                grouping: grouping.clone(),
                algorithm: Algorithm::ActivePixel,
                policy,
                merge_host: blues[0],
            };
            let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
            let label = format!("{} + {}", spec.grouping.label(), policy.label());
            println!("  sweep  [{label}]: {:.3}s", r.elapsed.as_secs_f64());
            if r.elapsed.as_secs_f64() < best.1 {
                best = (label, r.elapsed.as_secs_f64());
            }
        }
    }
    println!(
        "\nbest of sweep: [{}] {:.3}s — planner landed within {:.0}%",
        best.0,
        best.1,
        (planned.elapsed.as_secs_f64() / best.1 - 1.0) * 100.0
    );
}
