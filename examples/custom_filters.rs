//! Writing your own filters: the `datacutter` framework is not tied to
//! rendering. This example builds a three-stage text-analytics pipeline —
//! a document source, a tokenize/count filter running as transparent
//! copies on two hosts, and a combining sink — exactly the
//! "filter + combine" pattern the paper describes for stateful filters.
//!
//! ```text
//! cargo run --release -p examples --bin custom_filters
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use datacutter::{
    DataBuffer, Filter, FilterCtx, FilterError, GraphBuilder, Placement, Run, WritePolicy,
};
use hetsim::presets::rogue_cluster;
use hetsim::SimDuration;
use parking_lot_alias::Mutex;

mod parking_lot_alias {
    pub use std::sync::Mutex;
}

/// Emits synthetic "documents".
struct DocSource {
    docs: u32,
}

impl Filter for DocSource {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let corpus = [
            "the quick brown fox",
            "jumps over the lazy dog",
            "the dog barks",
        ];
        for i in 0..self.docs {
            let text = corpus[i as usize % corpus.len()].to_string();
            let bytes = text.len() as u64;
            // Reading a document costs a little I/O.
            ctx.disk_read(0, 4096 + bytes, i > 0);
            ctx.write(0, DataBuffer::new(text, bytes));
        }
        Ok(())
    }
}

/// Tokenizes and counts words; a *stateful* filter — partial counts are
/// flushed downstream at end-of-work, and a combine filter folds them.
struct WordCount {
    counts: HashMap<String, u64>,
}

impl Filter for WordCount {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(buf) = ctx.read(0) {
            let text = buf.downcast::<String>();
            // Charge CPU proportional to document length.
            ctx.compute(SimDuration::from_micros(50 * text.len() as u64));
            for w in text.split_whitespace() {
                *self.counts.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        // End-of-work: ship this copy's partial accumulator.
        let partial: Vec<(String, u64)> = self.counts.drain().collect();
        let bytes = partial.iter().map(|(w, _)| w.len() as u64 + 8).sum();
        ctx.write(0, DataBuffer::new(partial, bytes));
        Ok(())
    }
}

/// Folds partial counts into the final tally (the "combine" filter the
/// paper appends when transparent copies hold internal state).
struct Combine {
    out: Arc<Mutex<HashMap<String, u64>>>,
}

impl Filter for Combine {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(buf) = ctx.read(0) {
            let partial = buf.downcast::<Vec<(String, u64)>>();
            ctx.compute(SimDuration::from_micros(partial.len() as u64));
            let mut out = self.out.lock().unwrap();
            for (w, n) in partial {
                *out.entry(w).or_insert(0) += n;
            }
        }
        Ok(())
    }
}

fn main() {
    let (topo, hosts) = rogue_cluster(3);
    let totals: Arc<Mutex<HashMap<String, u64>>> = Arc::default();

    let mut g = GraphBuilder::new();
    let src = g.add_filter("docs", Placement::on_host(hosts[0], 1), |_| DocSource {
        docs: 30,
    });
    let wc = g.add_filter(
        "wordcount",
        Placement::one_per_host(&[hosts[1], hosts[2]]),
        |_| WordCount {
            counts: HashMap::new(),
        },
    );
    let totals2 = totals.clone();
    let comb = g.add_filter("combine", Placement::on_host(hosts[0], 1), move |_| {
        Combine {
            out: totals2.clone(),
        }
    });
    g.connect(src, wc, WritePolicy::demand_driven());
    g.connect(wc, comb, WritePolicy::RoundRobin);

    let report = Run::new(g.build()).go(&topo).expect("run");

    let mut counts: Vec<(String, u64)> = totals
        .lock()
        .unwrap()
        .iter()
        .map(|(w, &n)| (w.clone(), n))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "word counts after {:.4} virtual seconds:",
        report.elapsed.as_secs_f64()
    );
    for (w, n) in &counts {
        println!("  {n:>3}  {w}");
    }
    assert_eq!(counts[0], ("the".to_string(), 30)); // 10 of each doc, one "the" per doc
    println!("\ntwo transparent WordCount copies processed disjoint document subsets;");
    println!("the combine filter made the result independent of the copy count.");
}
