//! Skewed storage demo: most of the dataset's files sit on two of the four
//! nodes. Compare how the three filter groupings cope.
//!
//! ```text
//! cargo run --release -p examples --bin skewed_storage
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use volume::{Dataset, Dims, FilePlacement};

fn main() {
    let dataset = Dataset::generate(Dims::new(49, 49, 97), (4, 4, 8), 64, 9);

    for skew in [0u32, 50, 100] {
        println!("\n--- {skew}% of the Blue nodes' files moved to the Rogue nodes ---");
        let (topo, rogues, blues) = rogue_blue_mix(2);
        let hosts = vec![blues[0], blues[1], rogues[0], rogues[1]];
        for grouping_label in ["RERa-M", "R-ERa-M", "RE-Ra-M"] {
            let mut cfg = AppConfig::new(dataset.clone(), hosts.clone(), 2, 512, 512);
            cfg.iso = 0.5;
            cfg.placement = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], skew);
            let cfg = Arc::new(cfg);
            let compute = Placement::one_per_host(&hosts);
            let spec = PipelineSpec {
                grouping: match grouping_label {
                    "RERa-M" => Grouping::RERaM,
                    "R-ERa-M" => Grouping::REraSplit { era: compute },
                    _ => Grouping::RERaSplit { raster: compute },
                },
                algorithm: Algorithm::ActivePixel,
                policy: WritePolicy::demand_driven(),
                merge_host: blues[0],
            };
            let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
            println!("  {:>8}: {:>7.3}s", grouping_label, r.elapsed.as_secs_f64());
        }
    }
    println!(
        "\nThe fused RERa-M is hostage to the node with the most data; the split \
         groupings decouple retrieval from processing and degrade far less."
    );
}
