//! Quickstart: render one timestep of a synthetic reactive-transport
//! dataset through the RE–Ra–M DataCutter pipeline on a 4-node emulated
//! cluster, and save the image.
//!
//! ```text
//! cargo run --release -p examples --bin quickstart
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::{Dataset, Dims};

fn main() {
    // 1. An emulated 4-node cluster (Rogue-like: 1 CPU, 2 disks, Fast
    //    Ethernet per node).
    let (topo, hosts) = rogue_cluster(4);

    // 2. A synthetic dataset: 48^3 cells, 64 sub-volumes, Hilbert-
    //    declustered over 64 files striped across the 4 nodes.
    let dataset = Dataset::generate(Dims::new(49, 49, 49), (4, 4, 4), 64, 42);
    let mut cfg = AppConfig::new(dataset, hosts.clone(), 2, 512, 512);
    cfg.iso = 0.5;
    let cfg = Arc::new(cfg);

    // 3. The pipeline: read+extract on every data node, one raster copy
    //    per node, demand-driven buffer scheduling, merge on node 0.
    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(&hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };

    // 4. Run one unit of work (one timestep).
    let result = dcapp::run_pipeline(&topo, &cfg, &spec).expect("pipeline run");

    println!(
        "rendered {}x{} image in {:.3} virtual seconds ({} engine events)",
        cfg.camera.width,
        cfg.camera.height,
        result.elapsed.as_secs_f64(),
        result.report.events
    );
    for copy in &result.report.copies {
        let c = &copy.counters;
        println!(
            "  {:>4} copy {} on host {:>2}: in {:>4} bufs / out {:>4} bufs, work {:>8.4}s, stalled {:>8.4}s",
            copy.filter_name,
            copy.copy_index,
            copy.host.0,
            c.buffers_in,
            c.buffers_out,
            c.work.as_secs_f64(),
            (c.read_wait + c.write_wait).as_secs_f64(),
        );
    }

    // 5. Check against the sequential reference renderer and save.
    let reference = dcapp::reference_image(&cfg);
    assert_eq!(
        result.image.diff_pixels(&reference),
        0,
        "distributed == sequential"
    );
    let path = examples::out_dir().join("quickstart.ppm");
    result.image.save_ppm(&path).expect("write image");
    println!(
        "image matches the sequential reference; saved to {}",
        path.display()
    );
}
