//! Shared helpers for the examples. The actual examples are the binaries
//! next to this file:
//!
//! * `quickstart` — build a small cluster, render one timestep through the
//!   RE–Ra–M pipeline, save a PPM, print the run metrics.
//! * `heterogeneous_cluster` — background load on half the nodes; watch
//!   demand-driven scheduling shift buffers to the idle nodes.
//! * `skewed_storage` — unbalanced data placement; compare the filter
//!   groupings' sensitivity.
//! * `timestep_movie` — render all ten stored timesteps to PPM frames.
//! * `custom_filters` — write your own filters against the `datacutter`
//!   API (a word-count pipeline, nothing to do with rendering).

/// Directory examples write their output images into.
pub fn out_dir() -> std::path::PathBuf {
    let p = std::path::PathBuf::from("target/example-output");
    std::fs::create_dir_all(&p).expect("create output dir");
    p
}
