//! Range-query rendering: zoom into a region of interest. Only the chunks
//! whose cells intersect the query box are read off disk and processed —
//! the access pattern that defines the paper's application class.
//!
//! ```text
//! cargo run --release -p examples --bin roi_query
//! ```

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::{CellRange, Dataset, Dims};

fn main() {
    let (topo, hosts) = rogue_cluster(4);
    let dataset = Dataset::generate(Dims::new(65, 65, 65), (4, 4, 4), 64, 2024);

    let queries: [(&str, Option<CellRange>); 3] = [
        ("full volume", None),
        (
            "upper half",
            Some(CellRange {
                lo: (0, 0, 32),
                hi: (64, 64, 64),
            }),
        ),
        (
            "center core",
            Some(CellRange {
                lo: (24, 24, 24),
                hi: (40, 40, 40),
            }),
        ),
    ];

    let dir = examples::out_dir();
    for (name, query) in queries {
        let mut cfg = AppConfig::new(dataset.clone(), hosts.clone(), 2, 384, 384);
        cfg.iso = 0.5;
        cfg.query = query;
        let cfg = Arc::new(cfg);
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[0],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
        let disk: u64 = r.report.copies.iter().map(|c| c.counters.disk_bytes).sum();
        let path = dir.join(format!("roi_{}.ppm", name.replace(' ', "_")));
        r.image.save_ppm(&path).expect("write");
        println!(
            "{name:>12}: {:>7.3}s, {:>5.2} MB read, {:>6} surface pixels -> {}",
            r.elapsed.as_secs_f64(),
            disk as f64 / 1e6,
            r.image.coverage(isosurf::BACKGROUND),
            path.display()
        );
    }
    println!(
        "\nsmaller queries touch fewer declustered chunks: less I/O, less compute, same pipeline"
    );
}
