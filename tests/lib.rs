//! Shared helpers for the cross-crate integration tests in `it/`.

use std::sync::Arc;

use dcapp::{AppConfig, PipelineResult, SharedConfig};
use hetsim::{HostId, Topology};
use volume::{Dataset, Dims};

/// A small but non-trivial dataset: 24×24×48 cells, 36 chunks, 16 files.
pub fn test_dataset(seed: u64) -> Dataset {
    Dataset::generate(Dims::new(25, 25, 49), (3, 3, 4), 16, seed)
}

/// Standard test configuration over the given hosts.
pub fn test_cfg(dataset: Dataset, hosts: Vec<HostId>, image: u32) -> SharedConfig {
    let mut cfg = AppConfig::new(dataset, hosts, 2, image, image);
    cfg.iso = 0.5;
    Arc::new(cfg)
}

/// A homogeneous test cluster.
pub fn cluster(n: usize) -> (Topology, Vec<HostId>) {
    hetsim::presets::rogue_cluster(n)
}

/// FNV-1a, folded incrementally so the digest covers heterogeneous data.
///
/// Shared by the bit-identity suites (`dataplane_identity`,
/// `compositing_identity`) and the compositing bench's digest-drift gate,
/// so every pin in the tree is computed by the same fold.
pub struct Fnv(pub u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    /// Fold in a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    /// Fold in raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Digest of the rendered pixels (dimensions included, so a blank 96×96
/// and a blank 128×128 hash differently).
pub fn image_digest(img: &isosurf::Image) -> u64 {
    let mut h = Fnv::new();
    h.u64(img.width as u64);
    h.u64(img.height as u64);
    for px in &img.data {
        h.bytes(px);
    }
    h.0
}

/// Digest of the quantities [`Recovery::Lossless`](datacutter::Recovery)
/// pins for *any* crash plan: the rendered pixels and the loss
/// accounting. Elapsed time, per-copy distribution, and repair tallies
/// legitimately differ between a recovered run and the fault-free run;
/// the contract is zero loss and identical output, not an identical
/// delivery schedule.
pub fn recovery_digest(r: &PipelineResult) -> u64 {
    let mut h = Fnv::new();
    h.u64(image_digest(&r.image));
    h.u64(r.report.faults.buffers_lost);
    h.u64(r.report.faults.bytes_lost);
    h.u64(r.report.faults.degraded as u64);
    h.0
}

/// Digest of the per-stream delivery totals (buffers and bytes summed
/// over copy sets). Invariant under lossless recovery when the crashed
/// copies had consumed nothing yet (dead-from-start plans) *and* no
/// surviving stage re-batches — every unique sequence number is then
/// claimed and counted exactly once somewhere. Mid-run crashes
/// re-process consumed-but-unsettled buffers (their effects died with
/// the crashed copy's accumulator), and losing a copy of a batching
/// stage changes how many partial batches get flushed, so both
/// legitimately shift these totals — use [`recovery_digest`] there
/// instead.
pub fn stream_totals_digest(r: &PipelineResult) -> u64 {
    let mut h = Fnv::new();
    for s in &r.report.streams {
        h.u64(s.total_buffers());
        h.u64(s.total_bytes());
    }
    h.0
}

/// Digest of everything the run measured: virtual completion time, engine
/// event count, per-copy counters (the byte meters), per-stream copy-set
/// counters, UOW boundaries and fault tallies.
pub fn metrics_digest(r: &PipelineResult) -> u64 {
    let mut h = Fnv::new();
    let rep = &r.report;
    h.u64(rep.elapsed.as_nanos());
    h.u64(rep.events);
    for b in &rep.uow_boundaries {
        h.u64(b.as_nanos());
    }
    for c in &rep.copies {
        h.u64(c.host.0 as u64);
        h.u64(c.copy_index as u64);
        h.u64(c.counters.buffers_in);
        h.u64(c.counters.bytes_in);
        h.u64(c.counters.buffers_out);
        h.u64(c.counters.bytes_out);
        h.u64(c.counters.work.as_nanos());
        h.u64(c.counters.compute_elapsed.as_nanos());
        h.u64(c.counters.read_wait.as_nanos());
        h.u64(c.counters.write_wait.as_nanos());
        h.u64(c.counters.disk_bytes);
        h.u64(c.counters.disk_elapsed.as_nanos());
    }
    for s in &rep.streams {
        for (host, cs) in &s.copysets {
            h.u64(host.0 as u64);
            h.u64(cs.buffers_received);
            h.u64(cs.bytes_received);
        }
    }
    h.u64(rep.faults.copies_killed);
    h.u64(rep.faults.buffers_replayed);
    h.u64(rep.faults.bytes_replayed);
    h.u64(rep.faults.buffers_lost);
    h.u64(rep.faults.bytes_lost);
    h.u64(rep.faults.retransmits);
    h.0
}
