//! Shared helpers for the cross-crate integration tests in `it/`.

use std::sync::Arc;

use dcapp::{AppConfig, SharedConfig};
use hetsim::{HostId, Topology};
use volume::{Dataset, Dims};

/// A small but non-trivial dataset: 24×24×48 cells, 36 chunks, 16 files.
pub fn test_dataset(seed: u64) -> Dataset {
    Dataset::generate(Dims::new(25, 25, 49), (3, 3, 4), 16, seed)
}

/// Standard test configuration over the given hosts.
pub fn test_cfg(dataset: Dataset, hosts: Vec<HostId>, image: u32) -> SharedConfig {
    let mut cfg = AppConfig::new(dataset, hosts, 2, image, image);
    cfg.iso = 0.5;
    Arc::new(cfg)
}

/// A homogeneous test cluster.
pub fn cluster(n: usize) -> (Topology, Vec<HostId>) {
    hetsim::presets::rogue_cluster(n)
}
