//! Proof that the E → Ra → M hot path reaches a zero-allocation steady
//! state: after a warm-up unit of work, pumping further work through the
//! stage logic (pooled triangle batches, recycled WPA flush buffers,
//! pooled z-buffer bands, serial extraction into a warmed vector)
//! performs no heap allocation at all, measured by a counting global
//! allocator.
//!
//! The loop below mirrors what `dcapp`'s stages do per unit of work,
//! driven through the same public APIs (`BufferPool`, `TriBatch`,
//! `RaOut`, `ActivePixelBuffer::supply`, `merge_batch`,
//! `extract_serial`); the filter wrappers themselves only add the
//! emulation context, which is not part of the per-buffer hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dcapp::{BufferPool, RaOut, TriBatch};
use isosurf::{extract_serial, merge_batch, ActivePixelBuffer, Triangle, WinningPixel, ZBuffer};
use volume::{Dims, RectGrid};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const IMG: u32 = 64;
const BATCH: usize = 256;

struct Harness {
    grid: RectGrid,
    pending: Vec<Triangle>,
    tri_pool: BufferPool<Triangle>,
    wpa_pool: BufferPool<WinningPixel>,
    dpool: BufferPool<f32>,
    cpool: BufferPool<[u8; 3]>,
    ap: ActivePixelBuffer,
    flushed: Vec<Vec<WinningPixel>>,
    /// Merge accumulator (the M stage).
    zb: ZBuffer,
    /// A pre-rendered raster target whose bands ship each pass (the
    /// z-buffer Ra variant's end-of-work).
    src: ZBuffer,
}

impl Harness {
    fn new() -> Harness {
        let mut s = 0x5eed_u64;
        let grid = RectGrid::from_fn(Dims::new(16, 16, 16), |_, _, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 11) as f32 / 10.0
        });
        let mut src = ZBuffer::new(IMG, IMG);
        for i in 0..(IMG * IMG) {
            src.plot(i % IMG, i / IMG, (i % 9) as f32, [i as u8, 0, 0]);
        }
        Harness {
            grid,
            pending: Vec::new(),
            tri_pool: BufferPool::new(),
            wpa_pool: BufferPool::new(),
            dpool: BufferPool::new(),
            cpool: BufferPool::new(),
            ap: ActivePixelBuffer::new(IMG, 512),
            flushed: Vec::new(),
            zb: ZBuffer::new(IMG, IMG),
            src,
        }
    }
}

/// One unit of work through the pooled stage logic.
fn pass(h: &mut Harness) {
    let Harness {
        grid,
        pending,
        tri_pool,
        wpa_pool,
        dpool,
        cpool,
        ap,
        flushed,
        zb,
        src,
    } = h;

    // E: extract into the warmed pending vector, drain into pooled batches.
    pending.clear();
    extract_serial(grid, (0, 0, 0), 0.5, pending);
    while !pending.is_empty() {
        let n = pending.len().min(BATCH);
        let mut tris = tri_pool.take(BATCH);
        tris.buf_mut().extend(pending.drain(..n));
        let batch = TriBatch { tris };

        // Ra (active-pixel): re-arm the WPA with every buffer the merge
        // recycled, then plot; full WPAs flush into `flushed`.
        while let Some(v) = wpa_pool.try_take_raw() {
            ap.supply(v);
        }
        for t in batch.tris.iter() {
            for v in &t.v {
                let x = (v.x.abs() as u32) % IMG;
                let y = (v.y.abs() as u32) % IMG;
                ap.plot(x, y, v.z, [9, 9, 9], &mut |b| flushed.push(b));
            }
        }

        // M: merge each flushed batch; dropping the payload recycles it.
        for b in flushed.drain(..) {
            let out = RaOut::Wpa(wpa_pool.adopt(b));
            if let RaOut::Wpa(w) = out {
                merge_batch(zb, &w);
            }
        }
        // `batch` drops here, returning its buffer to `tri_pool`.
    }
    // End-of-work flush of the partial WPA.
    ap.force_flush(&mut |b| flushed.push(b));
    for b in flushed.drain(..) {
        let out = RaOut::Wpa(wpa_pool.adopt(b));
        if let RaOut::Wpa(w) = out {
            merge_batch(zb, &w);
        }
    }

    // Ra (z-buffer variant): ship the raster target in pooled bands and
    // fold them, as the merge filter would.
    let w = IMG as usize;
    let mut y0 = 0usize;
    while y0 < IMG as usize {
        let (a, b) = (y0 * w, (y0 + 16) * w);
        let mut depth = dpool.take(b - a);
        depth.buf_mut().extend_from_slice(&src.depth[a..b]);
        let mut color = cpool.take(b - a);
        color.buf_mut().extend_from_slice(&src.color[a..b]);
        let out = RaOut::Band {
            y0: y0 as u32,
            width: IMG,
            depth,
            color,
        };
        if let RaOut::Band {
            y0,
            width,
            depth,
            color,
        } = out
        {
            let base = (y0 * width) as usize;
            for (i, (&d, &c)) in depth.iter().zip(color.iter()).enumerate() {
                if d < zb.depth[base + i] {
                    zb.depth[base + i] = d;
                    zb.color[base + i] = c;
                }
            }
        }
        y0 += 16;
    }
}

#[test]
fn steady_state_pipeline_performs_zero_allocations() {
    let mut h = Harness::new();

    // Warm-up: grows `pending`, populates every pool, and lets the WPA
    // spare-list reach equilibrium (the first passes mint the buffers
    // that circulate forever after).
    for _ in 0..3 {
        pass(&mut h);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..16 {
        pass(&mut h);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state E→Ra→M passes allocated {} times",
        after - before
    );

    // Sanity: the harness actually exercised the path (the warm-up made
    // pool misses, extraction produced triangles, merging plotted pixels).
    assert!(h.tri_pool.allocated() > 0);
    assert!(!h.zb.depth.is_empty());
}
