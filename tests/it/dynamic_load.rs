//! The paper's headline claim is about *dynamically changing* load:
//! "getting good performance with unexpected loads without user
//! intervention is a great benefit". These tests change the background
//! load *while the pipeline runs* and check that demand-driven scheduling
//! adapts — per unit of work, and even within one.

// Deliberately exercises the deprecated `run_app_with` compatibility
// wrapper.
#![allow(deprecated)]

use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::SimDuration;
use integration_tests::{cluster, test_cfg, test_dataset};
use parking_lot::Mutex;

#[test]
fn dd_adapts_when_load_arrives_mid_run() {
    // Run many UOWs; a "login storm" drops 16 background jobs on host 0
    // partway through. Under DD the buffer share of host 0's raster set
    // must fall in the later cycles.
    let run = |policy: WritePolicy| {
        let (topo, hosts) = cluster(3);
        let cfg = {
            // Raster-bound configuration so the consumers' pace matters:
            // large image, fine-grained batches.
            let base = test_cfg(test_dataset(60), hosts.clone(), 512);
            let mut c = dcapp::clone_config(&base);
            c.tri_batch = 64;
            c.cost.raster_per_pixel *= 10.0;
            Arc::new(c)
        };
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            algorithm: Algorithm::ActivePixel,
            policy,
            merge_host: hosts[1],
        };
        // Saboteur process: we cannot spawn into the pipeline's internal
        // simulation, so flip the load between UOWs via two separate runs
        // instead: warm (no load) then loaded, comparing distributions.
        let r_unloaded = dcapp::run_pipeline(&topo, &cfg, &spec).unwrap();
        topo.host(hosts[0]).cpu.set_bg_jobs(16);
        let r_loaded = dcapp::run_pipeline(&topo, &cfg, &spec).unwrap();
        let share = |r: &dcapp::PipelineResult| {
            let s = r.report.stream(r.to_raster.unwrap());
            let h0 = s.copysets[0].1.buffers_received as f64;
            h0 / s.total_buffers() as f64
        };
        (share(&r_unloaded), share(&r_loaded))
    };
    let (dd_before, dd_after) = run(WritePolicy::demand_driven());
    assert!(
        dd_after < dd_before * 0.8,
        "DD share of loaded host should drop: {dd_before:.3} -> {dd_after:.3}"
    );
    let (rr_before, rr_after) = run(WritePolicy::RoundRobin);
    assert!(
        (rr_after - rr_before).abs() < 0.02,
        "RR is load-oblivious: {rr_before:.3} -> {rr_after:.3}"
    );
}

#[test]
fn load_arriving_inside_a_uow_slows_only_the_tail() {
    // Within one simulation, a background process raises the load on one
    // host mid-computation; the CPU model must dilate only the remainder.
    let mut sim = hetsim::Simulation::new();
    let (topo, hosts) = cluster(2);
    let t2 = topo.clone();
    let h0 = hosts[0];
    let done: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let d1 = done.clone();
    sim.spawn("worker", move |env| {
        // 2s of work at speed 1.0 on an idle host...
        t2.host(h0).cpu.compute(&env, SimDuration::from_secs(2));
        d1.lock().push(("worker".into(), env.now().as_nanos()));
    });
    let t3 = topo.clone();
    let d2 = done.clone();
    sim.spawn("storm", move |env| {
        env.delay(SimDuration::from_secs(1));
        t3.host(h0).cpu.set_bg_jobs(3); // the second half runs at 1/4 speed
        d2.lock().push(("storm".into(), env.now().as_nanos()));
    });
    sim.run().unwrap();
    let v = done.lock().clone();
    let worker_end = v.iter().find(|(n, _)| n == "worker").unwrap().1 as f64 / 1e9;
    // First ~1s at full speed, remaining ~1s of work at 1/4 speed => ~5s
    // total (quantized by the CPU slice granularity).
    assert!(
        (4.0..6.0).contains(&worker_end),
        "expected mid-run dilation, worker finished at {worker_end}"
    );
}

#[test]
fn dd_beats_rr_under_a_mid_run_load_storm() {
    // A load storm hits one worker host *while the pipeline is running*
    // (via an auxiliary load-generator process inside the same
    // simulation). DD reroutes around it; RR cannot.
    use datacutter::{DataBuffer, Filter, FilterCtx, FilterError, GraphBuilder};
    use hetsim::{spawn_load_generator, LoadProfile};

    struct Src;
    impl Filter for Src {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..60u32 {
                ctx.compute(SimDuration::from_millis(2));
                ctx.write(0, DataBuffer::new(i, 1024));
            }
            Ok(())
        }
    }
    struct Work;
    impl Filter for Work {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                let _ = b.downcast::<u32>();
                ctx.compute(SimDuration::from_millis(8));
            }
            Ok(())
        }
    }

    let run = |policy: WritePolicy| {
        let (topo, hosts) = cluster(3);
        let mut g = GraphBuilder::new();
        let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| Src);
        let w = g.add_filter(
            "work",
            Placement::one_per_host(&[hosts[1], hosts[2]]),
            |_| Work,
        );
        g.connect(s, w, policy);
        let storm_cpu = topo.host(hosts[1]).cpu.clone();
        let report = datacutter::run_app_with(&topo, g.build(), 1, move |sim| {
            // Calm for 50ms, then 15 jobs for 200ms, then calm again.
            let profile = LoadProfile {
                steps: vec![
                    (SimDuration::from_millis(50), 0),
                    (SimDuration::from_millis(200), 15),
                ],
            };
            spawn_load_generator(sim, "storm", storm_cpu, profile);
        })
        .unwrap();
        report.elapsed.as_secs_f64()
    };
    let rr = run(WritePolicy::RoundRobin);
    let dd = run(WritePolicy::demand_driven());
    assert!(
        dd < rr,
        "DD ({dd:.3}s) should dodge the mid-run storm; RR took {rr:.3}s"
    );
}

#[test]
fn multi_uow_run_absorbs_alternating_load() {
    // Sanity at the application level: a multi-UOW run completes and stays
    // image-correct even with heavy static load on one host.
    let (topo, hosts) = cluster(3);
    topo.host(hosts[2]).cpu.set_bg_jobs(12);
    let cfg = test_cfg(test_dataset(61), hosts.clone(), 96);
    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(&hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };
    let multi = dcapp::run_pipeline_uows(&topo, &cfg, &spec, 3).unwrap();
    for (t, img) in multi.images.iter().enumerate() {
        let mut c = dcapp::clone_config(&cfg);
        c.timestep = t as u32;
        assert_eq!(
            img.diff_pixels(&dcapp::reference_image(&Arc::new(c))),
            0,
            "uow {t} under load"
        );
    }
}
