//! Property-based tests on the emulation engine and the filter framework:
//! message integrity, FIFO ordering, policy accounting, and determinism
//! under randomized workloads.

// Deliberately exercises the deprecated `run_app*` compatibility wrappers.
#![allow(deprecated)]

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use datacutter::{
    run_app, run_app_faulted, DataBuffer, FaultOptions, Filter, FilterCtx, FilterError,
    GraphBuilder, Placement, WritePolicy,
};
use hetsim::{
    channel, ClusterSpec, FaultPlan, HostId, HostSpec, SimDuration, SimTime, Simulation,
    TopologyBuilder,
};

fn topology(n: usize) -> (hetsim::Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 50.0e6,
        nic_latency: SimDuration::from_micros(80),
    });
    let hosts = (0..n)
        .map(|i| {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1 + (i as u32 % 2),
                    speed: 0.5 + 0.25 * (i as f64 % 3.0),
                    mem_mb: 256,
                    disks: 1,
                    disk_bandwidth_bps: 25.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            )
        })
        .collect();
    (b.build(), hosts)
}

struct Numbers {
    n: u32,
    delay_us: u64,
}
impl Filter for Numbers {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            ctx.compute(SimDuration::from_micros(self.delay_us));
            ctx.write(0, DataBuffer::new(i, 128));
        }
        Ok(())
    }
}

struct Relay {
    work_us: u64,
}
impl Filter for Relay {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            ctx.compute(SimDuration::from_micros(self.work_us));
            let v = b.downcast::<u32>();
            ctx.write(0, DataBuffer::new(v, 128));
        }
        Ok(())
    }
}

struct Gather {
    out: Arc<Mutex<Vec<u32>>>,
}
impl Filter for Gather {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            self.out.lock().push(b.downcast::<u32>());
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No message is lost or duplicated through a randomized two-stage
    /// pipeline, for any policy / copy-count / host-count combination.
    #[test]
    fn pipelines_never_lose_or_duplicate(
        n_hosts in 2usize..5,
        copies in 1u32..4,
        n_items in 1u32..60,
        policy_sel in 0u8..3,
        src_delay in 0u64..200,
        work in 0u64..400,
    ) {
        let (topo, hosts) = topology(n_hosts);
        let policy = match policy_sel {
            0 => WritePolicy::RoundRobin,
            1 => WritePolicy::WeightedRoundRobin,
            _ => WritePolicy::demand_driven(),
        };
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let relay_hosts: Vec<HostId> = hosts[1..].to_vec();
        let relay = g.add_filter(
            "relay",
            Placement { per_host: relay_hosts.iter().map(|&h| (h, copies)).collect() },
            move |_| Relay { work_us: work },
        );
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, relay, policy);
        g.connect(relay, sink, WritePolicy::RoundRobin);
        run_app(&topo, g.build()).unwrap();
        let mut got = out.lock().clone();
        got.sort_unstable();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(got, want);
    }

    /// A single-copy consumer observes each producer's items in FIFO
    /// order regardless of timing.
    #[test]
    fn streams_are_fifo_per_producer(
        n_items in 1u32..50,
        src_delay in 0u64..300,
        work in 0u64..300,
    ) {
        let (topo, hosts) = topology(2);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[1], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, sink, WritePolicy::RoundRobin);
        let _ = work;
        run_app(&topo, g.build()).unwrap();
        let got = out.lock().clone();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(got, want); // in order, not just same multiset
    }

    /// The whole framework is deterministic: any random configuration run
    /// twice yields identical virtual end times and event counts.
    #[test]
    fn random_pipelines_are_deterministic(
        n_hosts in 2usize..5,
        copies in 1u32..3,
        n_items in 1u32..40,
        work in 0u64..500,
    ) {
        let run = || {
            let (topo, hosts) = topology(n_hosts);
            let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
            let mut g = GraphBuilder::new();
            let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
                n: n_items,
                delay_us: 50,
            });
            let relay = g.add_filter(
                "relay",
                Placement { per_host: hosts[1..].iter().map(|&h| (h, copies)).collect() },
                move |_| Relay { work_us: work },
            );
            let out2 = out.clone();
            let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
                out: out2.clone(),
            });
            g.connect(src, relay, WritePolicy::demand_driven());
            g.connect(relay, sink, WritePolicy::RoundRobin);
            let report = run_app(&topo, g.build()).unwrap();
            let collected = out.lock().clone();
            (report.elapsed.as_nanos(), report.events, collected)
        };
        prop_assert_eq!(run(), run());
    }

    /// Raw channels: random send/recv interleavings conserve items and
    /// preserve order.
    #[test]
    fn raw_channels_conserve_items(
        cap in 1usize..8,
        n in 1u32..100,
        send_gap in 0u64..50,
        recv_gap in 0u64..50,
    ) {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), cap);
        sim.spawn("tx", move |env| {
            for i in 0..n {
                if send_gap > 0 {
                    env.delay(SimDuration::from_micros(send_gap));
                }
                tx.send(&env, i).unwrap();
            }
        });
        let got: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        sim.spawn("rx", move |env| {
            while let Some(v) = rx.recv(&env) {
                if recv_gap > 0 {
                    env.delay(SimDuration::from_micros(recv_gap));
                }
                g2.lock().push(v);
            }
        });
        sim.run().unwrap();
        let want: Vec<u32> = (0..n).collect();
        prop_assert_eq!(got.lock().clone(), want);
    }

    /// CPU conservation: elapsed time for a batch of computations is never
    /// less than total work divided by total capacity.
    #[test]
    fn cpu_elapsed_respects_capacity(
        cores in 1u32..4,
        speed_pct in 25u32..200,
        n_threads in 1usize..5,
        work_ms in 1u64..50,
    ) {
        let speed = speed_pct as f64 / 100.0;
        let cpu = hetsim::Cpu::new(cores, speed);
        let mut sim = Simulation::new();
        for i in 0..n_threads {
            let cpu = cpu.clone();
            sim.spawn(format!("t{i}"), move |env| {
                cpu.compute(&env, SimDuration::from_millis(work_ms));
            });
        }
        let stats = sim.run().unwrap();
        let total_work = work_ms as f64 / 1e3 * n_threads as f64;
        let capacity = cores as f64 * speed;
        let lower_bound = total_work / capacity;
        let elapsed = stats.end_time.as_secs_f64();
        prop_assert!(
            elapsed >= lower_bound * 0.999,
            "elapsed {elapsed} < floor {lower_bound}"
        );
        // And not absurdly more than the serial worst case.
        let upper = total_work / speed + 1e-6;
        prop_assert!(elapsed <= upper * 1.001, "elapsed {elapsed} > ceiling {upper}");
    }
}

/// Case count for the crash-recovery property; the scheduled `fault-heavy`
/// CI job turns the dial up.
#[cfg(feature = "fault-heavy")]
const CRASH_CASES: u32 = 96;
#[cfg(not(feature = "fault-heavy"))]
const CRASH_CASES: u32 = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CRASH_CASES))]

    /// Crashing one relay host at a random virtual time under the
    /// demand-driven policy never deadlocks the run, never delivers an
    /// item twice, and — because unacknowledged buffers are replayed to
    /// the surviving copy sets and a dying copy flushes its in-flight
    /// item — never loses one either.
    #[test]
    fn random_crash_never_deadlocks_or_double_delivers(
        n_hosts in 3usize..6,
        copies in 1u32..3,
        n_items in 1u32..60,
        src_delay in 0u64..200,
        work in 50u64..600,
        crash_ms in 0u64..80,
        victim_sel in 0usize..8,
    ) {
        let (topo, hosts) = topology(n_hosts);
        let relay_hosts: Vec<HostId> = hosts[1..].to_vec();
        let victim = relay_hosts[victim_sel % relay_hosts.len()];
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let relay = g.add_filter(
            "relay",
            Placement { per_host: relay_hosts.iter().map(|&h| (h, copies)).collect() },
            move |_| Relay { work_us: work },
        );
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, relay, WritePolicy::demand_driven());
        g.connect(relay, sink, WritePolicy::RoundRobin);
        let plan = FaultPlan::new()
            .crash_host(victim, SimTime::ZERO + SimDuration::from_millis(crash_ms));
        let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(10));
        let report = match run_app_faulted(&topo, g.build(), 1, opts) {
            Ok(r) => r,
            Err(e) => return Err(format!("faulted run did not complete: {e}")),
        };
        let mut got = out.lock().clone();
        got.sort_unstable();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(
            got,
            want,
            "crash of {:?} at {}ms: replayed {} lost {}",
            victim,
            crash_ms,
            report.faults.buffers_replayed,
            report.faults.buffers_lost
        );
        prop_assert_eq!(report.faults.buffers_lost, 0);
    }
}

// ---- BufferSlab properties -------------------------------------------------

proptest! {
    /// Random interleavings of `make` and `recycle` never alias live
    /// payloads: every outstanding buffer keeps exactly the value it was
    /// built with, even as boxes cycle through the slab's free lists
    /// underneath.
    #[test]
    fn buffer_slab_never_aliases_live_payloads(
        ops in prop::collection::vec((any::<bool>(), any::<u16>()), 1..200),
    ) {
        let slab = datacutter::BufferSlab::new();
        let mut live: Vec<(DataBuffer, u64)> = Vec::new();
        let mut token = 0u64;
        for (do_recycle, sel) in ops {
            if do_recycle && !live.is_empty() {
                let (buf, expect) = live.remove(sel as usize % live.len());
                let got: Vec<u64> = slab.recycle(buf);
                prop_assert_eq!(got, vec![expect; 3]);
            } else {
                token += 1;
                live.push((slab.make(vec![token; 3], token), token));
            }
            // If a recycled box were handed out while its previous owner
            // was still live, the overwrite above would corrupt one of
            // these payloads.
            for (buf, expect) in &live {
                prop_assert_eq!(buf.peek::<Vec<u64>>(), Some(&vec![*expect; 3]));
                prop_assert_eq!(buf.wire_bytes(), *expect);
            }
        }
        // Free-list bookkeeping: allocations are bounded by the peak number
        // of simultaneously live buffers, not by the number of makes.
        prop_assert!(slab.allocated() <= token);
    }

    /// Buffers built from recycled boxes carry fresh diagnostics — the new
    /// `wire_bytes` and the new payload's type name, not the previous
    /// occupant's.
    #[test]
    fn buffer_slab_recycled_buffers_keep_diagnostics(wires in prop::collection::vec(1u64..10_000, 1..40)) {
        let slab = datacutter::BufferSlab::new();
        // Seed the free list so every subsequent make reuses a box.
        let seed = slab.make(vec![0u8], 1);
        let _: Vec<u8> = slab.recycle(seed);
        for &w in &wires {
            let b = slab.make(vec![7u8, 8], w);
            prop_assert_eq!(b.wire_bytes(), w);
            prop_assert_eq!(b.peek::<Vec<u8>>(), Some(&vec![7u8, 8]));
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slab.recycle_ctx::<String>(b, "diag probe")
            }))
            .expect_err("mismatched recycle must panic");
            let msg = err.downcast_ref::<String>().expect("string panic payload");
            prop_assert!(msg.contains("diag probe"), "missing context: {}", msg);
            prop_assert!(msg.contains("alloc::vec::Vec<u8>"), "missing actual type: {}", msg);
            prop_assert!(msg.contains(&format!("{w} wire bytes")), "missing wire size: {}", msg);
            // The panicking recycle consumed the box; reseed for the next
            // iteration.
            let seed = slab.make(vec![0u8], 1);
            let _: Vec<u8> = slab.recycle(seed);
        }
    }
}
