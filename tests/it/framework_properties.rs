//! Property-based tests on the emulation engine and the filter framework:
//! message integrity, FIFO ordering, policy accounting, and determinism
//! under randomized workloads.

// Deliberately exercises the deprecated `run_app*` compatibility wrappers.
#![allow(deprecated)]

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use datacutter::{
    run_app, run_app_faulted, DataBuffer, FaultOptions, Filter, FilterCtx, FilterError,
    GraphBuilder, Placement, WritePolicy,
};
use hetsim::{
    channel, ClusterSpec, FaultPlan, HostId, HostSpec, SimDuration, SimTime, Simulation,
    TopologyBuilder,
};

fn topology(n: usize) -> (hetsim::Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 50.0e6,
        nic_latency: SimDuration::from_micros(80),
    });
    let hosts = (0..n)
        .map(|i| {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1 + (i as u32 % 2),
                    speed: 0.5 + 0.25 * (i as f64 % 3.0),
                    mem_mb: 256,
                    disks: 1,
                    disk_bandwidth_bps: 25.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            )
        })
        .collect();
    (b.build(), hosts)
}

struct Numbers {
    n: u32,
    delay_us: u64,
}
impl Filter for Numbers {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            ctx.compute(SimDuration::from_micros(self.delay_us));
            ctx.write(0, DataBuffer::new(i, 128));
        }
        Ok(())
    }
}

struct Relay {
    work_us: u64,
}
impl Filter for Relay {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            ctx.compute(SimDuration::from_micros(self.work_us));
            let v = b.downcast::<u32>();
            ctx.write(0, DataBuffer::new(v, 128));
        }
        Ok(())
    }
}

struct Gather {
    out: Arc<Mutex<Vec<u32>>>,
}
impl Filter for Gather {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            self.out.lock().push(b.downcast::<u32>());
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No message is lost or duplicated through a randomized two-stage
    /// pipeline, for any policy / copy-count / host-count combination.
    #[test]
    fn pipelines_never_lose_or_duplicate(
        n_hosts in 2usize..5,
        copies in 1u32..4,
        n_items in 1u32..60,
        policy_sel in 0u8..3,
        src_delay in 0u64..200,
        work in 0u64..400,
    ) {
        let (topo, hosts) = topology(n_hosts);
        let policy = match policy_sel {
            0 => WritePolicy::RoundRobin,
            1 => WritePolicy::WeightedRoundRobin,
            _ => WritePolicy::demand_driven(),
        };
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let relay_hosts: Vec<HostId> = hosts[1..].to_vec();
        let relay = g.add_filter(
            "relay",
            Placement { per_host: relay_hosts.iter().map(|&h| (h, copies)).collect() },
            move |_| Relay { work_us: work },
        );
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, relay, policy);
        g.connect(relay, sink, WritePolicy::RoundRobin);
        run_app(&topo, g.build()).unwrap();
        let mut got = out.lock().clone();
        got.sort_unstable();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(got, want);
    }

    /// A single-copy consumer observes each producer's items in FIFO
    /// order regardless of timing.
    #[test]
    fn streams_are_fifo_per_producer(
        n_items in 1u32..50,
        src_delay in 0u64..300,
        work in 0u64..300,
    ) {
        let (topo, hosts) = topology(2);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[1], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, sink, WritePolicy::RoundRobin);
        let _ = work;
        run_app(&topo, g.build()).unwrap();
        let got = out.lock().clone();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(got, want); // in order, not just same multiset
    }

    /// The whole framework is deterministic: any random configuration run
    /// twice yields identical virtual end times and event counts.
    #[test]
    fn random_pipelines_are_deterministic(
        n_hosts in 2usize..5,
        copies in 1u32..3,
        n_items in 1u32..40,
        work in 0u64..500,
    ) {
        let run = || {
            let (topo, hosts) = topology(n_hosts);
            let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
            let mut g = GraphBuilder::new();
            let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
                n: n_items,
                delay_us: 50,
            });
            let relay = g.add_filter(
                "relay",
                Placement { per_host: hosts[1..].iter().map(|&h| (h, copies)).collect() },
                move |_| Relay { work_us: work },
            );
            let out2 = out.clone();
            let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
                out: out2.clone(),
            });
            g.connect(src, relay, WritePolicy::demand_driven());
            g.connect(relay, sink, WritePolicy::RoundRobin);
            let report = run_app(&topo, g.build()).unwrap();
            let collected = out.lock().clone();
            (report.elapsed.as_nanos(), report.events, collected)
        };
        prop_assert_eq!(run(), run());
    }

    /// Raw channels: random send/recv interleavings conserve items and
    /// preserve order.
    #[test]
    fn raw_channels_conserve_items(
        cap in 1usize..8,
        n in 1u32..100,
        send_gap in 0u64..50,
        recv_gap in 0u64..50,
    ) {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), cap);
        sim.spawn("tx", move |env| {
            for i in 0..n {
                if send_gap > 0 {
                    env.delay(SimDuration::from_micros(send_gap));
                }
                tx.send(&env, i).unwrap();
            }
        });
        let got: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        sim.spawn("rx", move |env| {
            while let Some(v) = rx.recv(&env) {
                if recv_gap > 0 {
                    env.delay(SimDuration::from_micros(recv_gap));
                }
                g2.lock().push(v);
            }
        });
        sim.run().unwrap();
        let want: Vec<u32> = (0..n).collect();
        prop_assert_eq!(got.lock().clone(), want);
    }

    /// CPU conservation: elapsed time for a batch of computations is never
    /// less than total work divided by total capacity.
    #[test]
    fn cpu_elapsed_respects_capacity(
        cores in 1u32..4,
        speed_pct in 25u32..200,
        n_threads in 1usize..5,
        work_ms in 1u64..50,
    ) {
        let speed = speed_pct as f64 / 100.0;
        let cpu = hetsim::Cpu::new(cores, speed);
        let mut sim = Simulation::new();
        for i in 0..n_threads {
            let cpu = cpu.clone();
            sim.spawn(format!("t{i}"), move |env| {
                cpu.compute(&env, SimDuration::from_millis(work_ms));
            });
        }
        let stats = sim.run().unwrap();
        let total_work = work_ms as f64 / 1e3 * n_threads as f64;
        let capacity = cores as f64 * speed;
        let lower_bound = total_work / capacity;
        let elapsed = stats.end_time.as_secs_f64();
        prop_assert!(
            elapsed >= lower_bound * 0.999,
            "elapsed {elapsed} < floor {lower_bound}"
        );
        // And not absurdly more than the serial worst case.
        let upper = total_work / speed + 1e-6;
        prop_assert!(elapsed <= upper * 1.001, "elapsed {elapsed} > ceiling {upper}");
    }
}

/// Case count for the crash-recovery property; the scheduled `fault-heavy`
/// CI job turns the dial up.
#[cfg(feature = "fault-heavy")]
const CRASH_CASES: u32 = 96;
#[cfg(not(feature = "fault-heavy"))]
const CRASH_CASES: u32 = 16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CRASH_CASES))]

    /// Crashing one relay host at a random virtual time under the
    /// demand-driven policy never deadlocks the run, never delivers an
    /// item twice, and — because unacknowledged buffers are replayed to
    /// the surviving copy sets and a dying copy flushes its in-flight
    /// item — never loses one either.
    #[test]
    fn random_crash_never_deadlocks_or_double_delivers(
        n_hosts in 3usize..6,
        copies in 1u32..3,
        n_items in 1u32..60,
        src_delay in 0u64..200,
        work in 50u64..600,
        crash_ms in 0u64..80,
        victim_sel in 0usize..8,
    ) {
        let (topo, hosts) = topology(n_hosts);
        let relay_hosts: Vec<HostId> = hosts[1..].to_vec();
        let victim = relay_hosts[victim_sel % relay_hosts.len()];
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Numbers {
            n: n_items,
            delay_us: src_delay,
        });
        let relay = g.add_filter(
            "relay",
            Placement { per_host: relay_hosts.iter().map(|&h| (h, copies)).collect() },
            move |_| Relay { work_us: work },
        );
        let out2 = out.clone();
        let sink = g.add_filter("sink", Placement::on_host(hosts[0], 1), move |_| Gather {
            out: out2.clone(),
        });
        g.connect(src, relay, WritePolicy::demand_driven());
        g.connect(relay, sink, WritePolicy::RoundRobin);
        let plan = FaultPlan::new()
            .crash_host(victim, SimTime::ZERO + SimDuration::from_millis(crash_ms));
        let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(10));
        let report = match run_app_faulted(&topo, g.build(), 1, opts) {
            Ok(r) => r,
            Err(e) => return Err(format!("faulted run did not complete: {e}")),
        };
        let mut got = out.lock().clone();
        got.sort_unstable();
        let want: Vec<u32> = (0..n_items).collect();
        prop_assert_eq!(
            got,
            want,
            "crash of {:?} at {}ms: replayed {} lost {}",
            victim,
            crash_ms,
            report.faults.buffers_replayed,
            report.faults.buffers_lost
        );
        prop_assert_eq!(report.faults.buffers_lost, 0);
    }
}

// ---- BufferSlab properties -------------------------------------------------

proptest! {
    /// Random interleavings of `make` and `recycle` never alias live
    /// payloads: every outstanding buffer keeps exactly the value it was
    /// built with, even as boxes cycle through the slab's free lists
    /// underneath.
    #[test]
    fn buffer_slab_never_aliases_live_payloads(
        ops in prop::collection::vec((any::<bool>(), any::<u16>()), 1..200),
    ) {
        let slab = datacutter::BufferSlab::new();
        let mut live: Vec<(DataBuffer, u64)> = Vec::new();
        let mut token = 0u64;
        for (do_recycle, sel) in ops {
            if do_recycle && !live.is_empty() {
                let (buf, expect) = live.remove(sel as usize % live.len());
                let got: Vec<u64> = slab.recycle(buf);
                prop_assert_eq!(got, vec![expect; 3]);
            } else {
                token += 1;
                live.push((slab.make(vec![token; 3], token), token));
            }
            // If a recycled box were handed out while its previous owner
            // was still live, the overwrite above would corrupt one of
            // these payloads.
            for (buf, expect) in &live {
                prop_assert_eq!(buf.peek::<Vec<u64>>(), Some(&vec![*expect; 3]));
                prop_assert_eq!(buf.wire_bytes(), *expect);
            }
        }
        // Free-list bookkeeping: allocations are bounded by the peak number
        // of simultaneously live buffers, not by the number of makes.
        prop_assert!(slab.allocated() <= token);
    }

    /// Buffers built from recycled boxes carry fresh diagnostics — the new
    /// `wire_bytes` and the new payload's type name, not the previous
    /// occupant's.
    #[test]
    fn buffer_slab_recycled_buffers_keep_diagnostics(wires in prop::collection::vec(1u64..10_000, 1..40)) {
        let slab = datacutter::BufferSlab::new();
        // Seed the free list so every subsequent make reuses a box.
        let seed = slab.make(vec![0u8], 1);
        let _: Vec<u8> = slab.recycle(seed);
        for &w in &wires {
            let b = slab.make(vec![7u8, 8], w);
            prop_assert_eq!(b.wire_bytes(), w);
            prop_assert_eq!(b.peek::<Vec<u8>>(), Some(&vec![7u8, 8]));
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slab.recycle_ctx::<String>(b, "diag probe")
            }))
            .expect_err("mismatched recycle must panic");
            let msg = err.downcast_ref::<String>().expect("string panic payload");
            prop_assert!(msg.contains("diag probe"), "missing context: {}", msg);
            prop_assert!(msg.contains("alloc::vec::Vec<u8>"), "missing actual type: {}", msg);
            prop_assert!(msg.contains(&format!("{w} wire bytes")), "missing wire size: {}", msg);
            // The panicking recycle consumed the box; reseed for the next
            // iteration.
            let seed = slab.make(vec![0u8], 1);
            let _: Vec<u8> = slab.recycle(seed);
        }
    }
}

// ---------------------------------------------------------------------------
// Out-of-core data plane properties: the shared chunk cache, the spill
// ring, and the memory-budget ledger. These pin the accounting invariants
// the budgeted pipeline leans on — a cache that overshoots its capacity or
// a ledger that leaks grants would silently defeat the whole budget.

use datacutter::{MemoryBudget, SpillCodec, SpillRing, SpillTicket, StreamOoc};
use volume::{CacheKey, ChunkCache, ChunkId, Dims, RectGrid};

/// Minimal xorshift so scrambled orders derive from one proptest input.
fn scramble(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunk-cache accounting holds after EVERY operation for random
    /// interleavings of inserts (including same-key refreshes that grow or
    /// shrink the entry) and lookups: the hit/miss counters sum to exactly
    /// the lookups we issued, resident bytes never exceed capacity, and a
    /// hit always returns the grid most recently inserted under its key —
    /// never a stale refresh victim or another key's data.
    #[test]
    fn chunk_cache_accounting_holds_after_every_op(
        cap_units in 1u64..5,
        ops in prop::collection::vec((any::<bool>(), 0u32..10, 2u32..7), 1..120),
    ) {
        // Capacity in units of the largest possible entry, so any entry
        // fits alone but small capacities force constant CLOCK churn.
        let unit = Dims::new(6, 6, 6).byte_size();
        let cache = ChunkCache::new(cap_units * unit);
        // Model: last fill value inserted under each key. The cache may
        // hold a subset of the model (evictions), never a superset.
        let mut model: std::collections::HashMap<CacheKey, f32> = Default::default();
        let mut lookups = 0u64;
        for (i, (is_insert, key_sel, side)) in ops.into_iter().enumerate() {
            let key = CacheKey {
                species: key_sel % 2,
                timestep: key_sel / 5,
                chunk: ChunkId(key_sel % 5),
            };
            if is_insert {
                let fill = i as f32;
                let grid = Arc::new(RectGrid::filled(Dims::new(side, side, side), fill));
                prop_assert!(cache.insert(key, grid), "entry sized to fit was rejected");
                model.insert(key, fill);
            } else {
                lookups += 1;
                if let Some(g) = cache.get(key) {
                    prop_assert_eq!(
                        Some(g.data[0]),
                        model.get(&key).copied(),
                        "hit returned a stale or foreign grid"
                    );
                }
            }
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, lookups);
            prop_assert!(
                s.resident_bytes <= s.capacity_bytes,
                "resident {} exceeds capacity {}",
                s.resident_bytes,
                s.capacity_bytes
            );
        }
    }

    /// Spill-ring round trips are bit-identical for random payload sizes
    /// and contents, across out-of-order redemption and slot reuse, and
    /// the byte counters conserve (everything spilled is faulted back).
    /// After full drain the coalesced free list must satisfy any
    /// frontier-sized allocation without growing the file.
    #[test]
    fn spill_ring_round_trips_bit_identical(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..32),
        order_seed in any::<u64>(),
    ) {
        let mut order_seed = order_seed | 1; // xorshift must not start at 0
        let ring = SpillRing::create().expect("spill ring");
        let mut parked: Vec<(SpillTicket, Vec<u8>)> = payloads
            .iter()
            .map(|p| (ring.spill(p).expect("spill"), p.clone()))
            .collect();
        while !parked.is_empty() {
            let i = (scramble(&mut order_seed) >> 16) as usize % parked.len();
            let (ticket, want) = parked.swap_remove(i);
            prop_assert_eq!(ticket.len() as usize, want.len());
            let got = ring.fault(ticket).expect("fault");
            prop_assert_eq!(got, want, "spilled bytes came back different");
        }
        prop_assert_eq!(ring.spill_bytes(), ring.fault_bytes());
        prop_assert_eq!(ring.spills(), ring.faults());
        // Everything was freed: one more spill of frontier size must slot
        // into the coalesced free space, not extend the file.
        let frontier = ring.frontier_bytes();
        if frontier > 0 {
            let refill = vec![0xA5u8; frontier as usize];
            let t = ring.spill(&refill).expect("refill spill");
            prop_assert_eq!(ring.frontier_bytes(), frontier, "free list failed to coalesce");
            ring.discard(t);
        }
    }

    /// The chunk spill codec survives arbitrary `f32` bit patterns —
    /// NaNs, infinities, negative zero — through a full encode → spill →
    /// fault → decode round trip, bit for bit.
    #[test]
    fn chunk_payload_spill_codec_is_bit_exact(
        origin in (any::<u32>(), any::<u32>(), any::<u32>()),
        nx in 1u32..5,
        ny in 1u32..5,
        nz in 1u32..5,
        bit_seed in any::<u64>(),
    ) {
        let mut bit_seed = bit_seed | 1;
        let n = (nx * ny * nz) as usize;
        let data: Vec<f32> = (0..n)
            .map(|_| f32::from_bits(scramble(&mut bit_seed) as u32))
            .collect();
        let payload = dcapp::ChunkPayload {
            origin,
            grid: RectGrid { dims: Dims { nx, ny, nz }, data },
        };
        let mut bytes = Vec::new();
        payload.spill_encode(&mut bytes);
        let ring = SpillRing::create().expect("spill ring");
        let ticket = ring.spill(&bytes).expect("spill");
        let back = ring.fault(ticket).expect("fault");
        let decoded = dcapp::ChunkPayload::spill_decode(&back).expect("decode");
        prop_assert_eq!(decoded.origin, payload.origin);
        prop_assert_eq!(decoded.grid.dims, payload.grid.dims);
        let want: Vec<u32> = payload.grid.data.iter().map(|f| f.to_bits()).collect();
        let got: Vec<u32> = decoded.grid.data.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(got, want, "f32 bit patterns drifted through the spill path");
    }

    /// Ledger conservation: for any interleaving of charges and
    /// discharges, `granted − released == resident` on the run-wide
    /// ledger, the stream's resident count matches its outstanding
    /// payloads exactly, and the spill verdict flips precisely when the
    /// stream crosses its share.
    #[test]
    fn memory_budget_conserves_bytes(
        share in 1u64..10_000,
        ops in prop::collection::vec((any::<bool>(), 1u64..5_000), 1..200),
    ) {
        let ledger = MemoryBudget::new(share * 4);
        let stream = StreamOoc::new(ledger.clone(), datacutter::StorageCtl::healthy(), share);
        let mut outstanding: Vec<u64> = Vec::new();
        for (is_charge, bytes) in ops {
            if is_charge || outstanding.is_empty() {
                let over = stream.charge(bytes);
                outstanding.push(bytes);
                let resident: u64 = outstanding.iter().sum();
                prop_assert_eq!(over, resident > share, "spill verdict disagrees with share");
            } else {
                let bytes = outstanding.pop().expect("non-empty");
                stream.discharge(bytes);
            }
            let expect: u64 = outstanding.iter().sum();
            prop_assert_eq!(stream.resident(), expect);
            prop_assert_eq!(ledger.resident(), expect);
            prop_assert_eq!(ledger.granted() - ledger.released(), ledger.resident());
        }
        // Drain: a balanced ledger ends exactly where it started.
        for bytes in outstanding.drain(..) {
            stream.discharge(bytes);
        }
        prop_assert_eq!(stream.resident(), 0);
        prop_assert_eq!(ledger.granted(), ledger.released());
    }
}

// ---------------------------------------------------------------------------
// Self-healing storage plane properties: every spill frame the budgeted
// pipeline parks is sealed with an 8-byte FNV-1a trailer. The contract the
// recovery ladder leans on is that *any* single bit flip anywhere in a
// sealed frame — payload or trailer — is detected at fault-in (FNV-1a's
// xor-then-odd-multiply step is injective, so one changed byte can never
// cancel out), and that sealing is stable under re-spill: fault a frame
// in, decode it, encode and seal it again, and the bytes are identical.

use datacutter::{open_frame, seal_frame};
use dcapp::{ChunkPayload, RaOut, TriBatch};
use isosurf::{Triangle, WinningPixel};

/// Encode `p` with its spill codec and seal the checksum trailer on —
/// exactly what `DataBuffer::spill_frame` produces for the ring.
fn sealed<T: SpillCodec>(p: &T) -> Vec<u8> {
    let mut frame = Vec::new();
    p.spill_encode(&mut frame);
    seal_frame(&mut frame);
    frame
}

/// A chunk payload whose voxels carry arbitrary `f32` bit patterns.
fn chunk_payload(dims: Dims, bit_seed: &mut u64) -> ChunkPayload {
    let n = (dims.nx * dims.ny * dims.nz) as usize;
    ChunkPayload {
        origin: (1, 2, 3),
        grid: RectGrid {
            dims,
            data: (0..n)
                .map(|_| f32::from_bits(scramble(bit_seed) as u32))
                .collect(),
        },
    }
}

/// A triangle batch with arbitrary vertex/normal bit patterns.
fn tri_batch(ntris: usize, bit_seed: &mut u64) -> TriBatch {
    let f = |s: &mut u64| f32::from_bits(scramble(s) as u32);
    let tris: Vec<Triangle> = (0..ntris)
        .map(|_| Triangle {
            v: [
                isosurf::vec3(f(bit_seed), f(bit_seed), f(bit_seed)),
                isosurf::vec3(f(bit_seed), f(bit_seed), f(bit_seed)),
                isosurf::vec3(f(bit_seed), f(bit_seed), f(bit_seed)),
            ],
            normal: isosurf::vec3(f(bit_seed), f(bit_seed), f(bit_seed)),
        })
        .collect();
    TriBatch { tris: tris.into() }
}

/// A raster-output payload in either variant.
fn ra_out(band: bool, entries: usize, bit_seed: &mut u64) -> RaOut {
    if band {
        RaOut::Band {
            y0: (scramble(bit_seed) % 97) as u32,
            width: entries as u32,
            depth: (0..entries)
                .map(|_| f32::from_bits(scramble(bit_seed) as u32))
                .collect::<Vec<_>>()
                .into(),
            color: (0..entries)
                .map(|_| {
                    let b = scramble(bit_seed);
                    [b as u8, (b >> 8) as u8, (b >> 16) as u8]
                })
                .collect::<Vec<_>>()
                .into(),
        }
    } else {
        RaOut::Wpa(
            (0..entries)
                .map(|_| {
                    let b = scramble(bit_seed);
                    WinningPixel {
                        x: b as u16,
                        y: (b >> 16) as u16,
                        depth: f32::from_bits((b >> 32) as u32),
                        rgb: [b as u8, (b >> 8) as u8, (b >> 24) as u8],
                    }
                })
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip in a sealed `ChunkPayload` frame is detected,
    /// and the untampered frame opens to the exact encoded bits.
    #[test]
    fn sealed_chunk_frames_detect_any_single_bit_flip(
        nx in 1u32..4, ny in 1u32..4, nz in 1u32..4,
        bit_seed in any::<u64>(),
        flip_sel in any::<u64>(),
    ) {
        let mut s = bit_seed | 1;
        let p = chunk_payload(Dims { nx, ny, nz }, &mut s);
        let frame = sealed(&p);
        let body = open_frame(&frame).expect("untampered frame opens");
        let q = ChunkPayload::spill_decode(body).expect("decode");
        let want: Vec<u32> = p.grid.data.iter().map(|f| f.to_bits()).collect();
        let got: Vec<u32> = q.grid.data.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(got, want);
        let bit = flip_sel % (frame.len() as u64 * 8);
        let mut bad = frame.clone();
        bad[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(
            open_frame(&bad).is_err(),
            "flip of bit {} in a {}-byte chunk frame went undetected",
            bit, frame.len()
        );
    }

    /// Any single bit flip in a sealed `TriBatch` frame is detected —
    /// including the empty batch, whose sealed frame is trailer-only.
    #[test]
    fn sealed_tri_frames_detect_any_single_bit_flip(
        ntris in 0usize..5,
        bit_seed in any::<u64>(),
        flip_sel in any::<u64>(),
    ) {
        let mut s = bit_seed | 1;
        let b = tri_batch(ntris, &mut s);
        let frame = sealed(&b);
        let body = open_frame(&frame).expect("untampered frame opens");
        prop_assert_eq!(TriBatch::spill_decode(body).expect("decode").tris.len(), ntris);
        let bit = flip_sel % (frame.len() as u64 * 8);
        let mut bad = frame.clone();
        bad[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(
            open_frame(&bad).is_err(),
            "flip of bit {} in a {}-byte tri frame went undetected",
            bit, frame.len()
        );
    }

    /// Any single bit flip in a sealed `RaOut` frame — either variant —
    /// is detected.
    #[test]
    fn sealed_raout_frames_detect_any_single_bit_flip(
        band in any::<bool>(),
        entries in 0usize..8,
        bit_seed in any::<u64>(),
        flip_sel in any::<u64>(),
    ) {
        let mut s = bit_seed | 1;
        let r = ra_out(band, entries, &mut s);
        let frame = sealed(&r);
        let body = open_frame(&frame).expect("untampered frame opens");
        prop_assert!(RaOut::spill_decode(body).is_some(), "decode");
        let bit = flip_sel % (frame.len() as u64 * 8);
        let mut bad = frame.clone();
        bad[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(
            open_frame(&bad).is_err(),
            "flip of bit {} in a {}-byte raout frame went undetected",
            bit, frame.len()
        );
    }

    /// Re-spill stability for all three codecs: open a sealed frame,
    /// decode it, encode and seal the decoded payload again — the second
    /// sealed frame must be byte-identical to the first, so a payload
    /// that spills, faults in, and spills again never drifts (and its
    /// checksum never changes).
    #[test]
    fn sealing_is_stable_under_re_spill(
        nx in 1u32..4, ny in 1u32..4, nz in 1u32..4,
        ntris in 0usize..5,
        band in any::<bool>(),
        entries in 0usize..8,
        bit_seed in any::<u64>(),
    ) {
        let mut s = bit_seed | 1;
        let chunk = sealed(&chunk_payload(Dims { nx, ny, nz }, &mut s));
        let re = sealed(
            &ChunkPayload::spill_decode(open_frame(&chunk).expect("open")).expect("decode"),
        );
        prop_assert_eq!(&re, &chunk, "chunk frame drifted across a re-spill");
        let tri = sealed(&tri_batch(ntris, &mut s));
        let re = sealed(&TriBatch::spill_decode(open_frame(&tri).expect("open")).expect("decode"));
        prop_assert_eq!(&re, &tri, "tri frame drifted across a re-spill");
        let ra = sealed(&ra_out(band, entries, &mut s));
        let re = sealed(&RaOut::spill_decode(open_frame(&ra).expect("open")).expect("decode"));
        prop_assert_eq!(&re, &ra, "raout frame drifted across a re-spill");
    }
}
