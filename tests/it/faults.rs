//! Fault injection and recovery: the milestone's acceptance scenarios.
//!
//! A mid-run crash of one extract host under the demand-driven policy
//! must leave the rendered image bit-identical to the fault-free run —
//! every buffer that was queued at (or still in flight to) the dead copy
//! set is replayed to the survivor via the DD acknowledgment machinery.
//! The same crash under round robin has no acks to replay from, so the
//! run completes *degraded*: it still terminates, renders what survived,
//! and accounts for every lost buffer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use datacutter::{
    FaultOptions, Filter, FilterCtx, FilterError, GraphBuilder, NativeExecutor, NativeFaultPlan,
    Placement, Run, RunError, SimExecutor, SupervisorPolicy, WritePolicy,
};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::{FaultPlan, SimDuration, SimTime};
use integration_tests::{cluster, test_cfg, test_dataset};

/// `R–E–Ra–M` with the extract stage replicated on hosts 1 and 2 (so one
/// of them can die and leave a survivor), raster on host 3, merge on
/// host 4, all data on host 0.
fn spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

#[test]
fn dd_crash_mid_uow_replays_to_bit_identical_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    assert!(clean.report.faults.injected.is_empty());

    // Kill one extract host while the R->E stream is busy.
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.25);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("faulted run must still complete");

    let f = &faulted.report.faults;
    assert!(!f.injected.is_empty(), "the plan must be recorded");
    assert!(
        f.copies_killed >= 1,
        "the copy on the dead host dies: {f:?}"
    );
    assert!(f.buffers_replayed > 0, "unacked buffers replayed: {f:?}");
    assert_eq!(f.buffers_lost, 0, "DD replay loses nothing: {f:?}");
    assert!(!f.degraded, "nothing lost, so not degraded: {f:?}");
    assert_eq!(
        faulted.image.diff_pixels(&clean.image),
        0,
        "replayed run must render the exact fault-free image"
    );
}

#[test]
fn rr_crash_completes_degraded_with_losses_accounted() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::RoundRobin);

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    // Early crash: the raster/merge tail dominates total elapsed, so only
    // an early failure lands while the R->E stream is still busy.
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("degraded run must still complete");

    let f = &faulted.report.faults;
    assert!(f.copies_killed >= 1, "{f:?}");
    assert_eq!(f.buffers_replayed, 0, "RR has no acks to replay: {f:?}");
    assert!(
        f.buffers_lost > 0,
        "RR-routed buffers at the dead set are lost: {f:?}"
    );
    assert!(f.bytes_lost > 0, "{f:?}");
    assert!(f.degraded, "losses mark the run degraded: {f:?}");
}

#[test]
fn rr_crash_fails_fast_when_degraded_mode_disallowed() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::RoundRobin);

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let opts = FaultOptions::new(plan).allow_degraded(false);
    match dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts) {
        Err(RunError::NoSurvivingConsumers { stream }) => {
            assert!(!stream.is_empty());
        }
        Err(other) => panic!("expected NoSurvivingConsumers, got {other}"),
        Ok(_) => panic!("expected NoSurvivingConsumers, got a completed run"),
    }
}

#[test]
fn empty_plan_is_bit_identical_to_unfaulted_runtime() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    let nofault =
        dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(FaultPlan::new()))
            .expect("run");
    assert_eq!(
        nofault.elapsed, clean.elapsed,
        "empty plan must not perturb time"
    );
    assert_eq!(nofault.image.diff_pixels(&clean.image), 0);
    assert_eq!(nofault.report.faults.copies_killed, 0);
}

#[test]
fn stall_delays_but_preserves_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(13), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    // Freeze the single raster copy: it is on the critical path, so the
    // whole window must show up in the elapsed time.
    let at = SimTime::ZERO + clean.elapsed.mul_f64(0.2);
    let plan = FaultPlan::new().stall_host(hosts[3], at, SimDuration::from_millis(200));
    let stalled = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("stalled run");
    assert_eq!(
        stalled.image.diff_pixels(&clean.image),
        0,
        "a stall loses no state"
    );
    assert!(stalled.elapsed > clean.elapsed, "the freeze must cost time");
    assert_eq!(stalled.report.faults.copies_killed, 0);
}

#[test]
fn message_drops_force_retransmits_but_preserve_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(17), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    let plan = FaultPlan::new().drop_messages(0xD00D, 0.08);
    let lossy = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("lossy run");
    let f = &lossy.report.faults;
    assert!(
        f.retransmits > 0,
        "an 8% drop rate must hit something: {f:?}"
    );
    assert_eq!(
        f.buffers_lost, 0,
        "drops retransmit, they do not lose: {f:?}"
    );
    assert_eq!(lossy.image.diff_pixels(&clean.image), 0);
}

// ---- tile-composite merge-group crashes -----------------------------------

/// `RE–Ra–Mt–A` with the merge group split across hosts 2 and 3, which
/// run **nothing else** — so crashing host 3 kills exactly one merge
/// copy. Storage and RE sit on host 0, raster on host 1, the assembler
/// on host 4.
fn tiled_spec(hosts: &[hetsim::HostId]) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: Placement::on_host(hosts[1], 1),
            merge: Placement::one_per_host(&[hosts[2], hosts[3]]),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[4],
    }
}

/// Config tuned so the merge-group crash actually has fragments in
/// flight: one-row tiles fan each WPA batch out into many fragments, and
/// an inflated per-entry merge cost keeps the merge copies' queues deep
/// for most of the run instead of draining each burst instantly.
fn tiled_fault_cfg(hosts: &[hetsim::HostId]) -> dcapp::SharedConfig {
    let mut cfg = dcapp::AppConfig::new(test_dataset(7), vec![hosts[0]], 2, 96, 96);
    cfg.iso = 0.5;
    cfg.tile_size = 1;
    cfg.cost.merge_per_entry = 2.0e-3;
    Arc::new(cfg)
}

/// Conservation on the tile-hash stream: every fragment the raster stage
/// shipped was either dequeued by a merge copy or tallied as lost with
/// the dead set — nothing double-counted, nothing vanished.
fn assert_tile_stream_conservation(r: &dcapp::PipelineResult) {
    let produced: u64 = r
        .report
        .copies
        .iter()
        .filter(|c| c.filter_name == "Ra")
        .map(|c| c.counters.buffers_out)
        .sum();
    let consumed = r
        .report
        .streams
        .iter()
        .find(|s| s.stream == r.to_merge)
        .expect("the Ra->Mt stream must be reported")
        .total_buffers();
    let lost = r.report.faults.buffers_lost;
    assert_eq!(
        consumed + lost,
        produced,
        "tile-hash conservation: consumed {consumed} + lost {lost} != produced {produced}"
    );
}

/// A merge copy dies mid-run under demand-driven sources and tile-hash
/// fragment routing. The tile-hash writer has no acks to replay, so the
/// fragments queued at the dead set are lost — but the run completes,
/// rerouting later fragments for the dead set's tiles to the survivor
/// (compositing is commutative, so any copy can absorb any tile), and
/// the loss accounting is exact.
#[test]
fn tiled_merge_copy_crash_recovers_with_exact_conservation() {
    let (topo, hosts) = cluster(5);
    let cfg = tiled_fault_cfg(&hosts);
    let spec = tiled_spec(&hosts);

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    // The crash must land while the Ra->Mt stream is busy: early enough
    // that the merge copies are still working through their queues (the
    // assembly fold dominates the tail of the run), late enough that
    // fragments have reached the doomed set.
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.12);
    let plan = FaultPlan::new().crash_host(hosts[3], crash_at);
    let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(10));
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts)
        .expect("run must survive a dead merge copy");

    let f = &faulted.report.faults;
    assert_eq!(f.copies_killed, 1, "only the host-3 Mt copy dies: {f:?}");
    assert_eq!(
        f.buffers_replayed, 0,
        "tile-hash has no acks to replay: {f:?}"
    );
    assert!(
        f.buffers_lost > 0,
        "fragments queued at the dead merge set are lost: {f:?}"
    );
    assert!(f.degraded, "losses mark the run degraded: {f:?}");
    assert_tile_stream_conservation(&faulted);
}

/// The same scenario on real threads, with the merge copy dead from the
/// first observation point so the accounting is timing-independent: the
/// run completes and conservation is exact regardless of how many
/// fragments raced into the dead set before detection.
#[test]
fn native_tiled_merge_copy_crash_conserves_fragments() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = tiled_spec(&hosts);

    let plan = FaultPlan::new().crash_host(hosts[3], SimTime::ZERO);
    let faulted = dcapp::run_pipeline_faulted_exec(
        &topo,
        &cfg,
        &spec,
        FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(2)),
        NativeExecutor::new(),
    )
    .expect("native run must survive a dead merge copy");

    let f = &faulted.report.faults;
    assert_eq!(f.copies_killed, 1, "only the host-3 Mt copy dies: {f:?}");
    assert_eq!(
        f.buffers_replayed, 0,
        "tile-hash has no acks to replay: {f:?}"
    );
    assert_tile_stream_conservation(&faulted);
}

// ---- native (wall-clock) chaos scenarios ---------------------------------
//
// The same fault plans, interpreted on the native executor's wall-clock
// axis. Scenarios are built to have timing-independent accounting (a host
// dead from t=0 kills exactly its copies on both substrates) so the
// sim-vs-native parity assertions hold despite real-thread scheduling.

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

/// The acceptance parity scenario: one extract host dead from the first
/// observation point, demand-driven replay on both substrates. The kill
/// count and the loss accounting must match the equivalent sim run, and
/// the rendered image must be bit-identical across substrates (merging is
/// order-independent, and DD replay loses nothing).
#[test]
fn native_dd_crash_matches_sim_loss_accounting_and_pixels() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());
    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");

    let plan = FaultPlan::new().crash_host(hosts[2], SimTime::ZERO);
    let sim = dcapp::run_pipeline_faulted_exec(
        &topo,
        &cfg,
        &spec,
        FaultOptions::new(plan.clone()).liveness_timeout(ms(2)),
        SimExecutor::new(),
    )
    .expect("sim faulted run");
    let nat = dcapp::run_pipeline_faulted_exec(
        &topo,
        &cfg,
        &spec,
        FaultOptions::new(plan).liveness_timeout(ms(2)),
        NativeExecutor::new(),
    )
    .expect("native faulted run must still complete");

    for (label, f) in [("sim", &sim.report.faults), ("native", &nat.report.faults)] {
        assert_eq!(
            f.copies_killed, 1,
            "{label}: exactly the host-2 extract copy dies: {f:?}"
        );
        assert_eq!(f.buffers_lost, 0, "{label}: DD replay loses nothing: {f:?}");
        assert!(!f.degraded, "{label}: nothing lost, not degraded: {f:?}");
    }
    assert_eq!(sim.image.diff_pixels(&clean.image), 0);
    assert_eq!(
        nat.image.diff_pixels(&sim.image),
        0,
        "native chaos run must render the sim run's exact pixels"
    );
}

/// Round robin has no acks to replay from, so a native run with a dead
/// extract host completes *degraded*: every chunk routed to the dead set
/// before eviction is tallied as lost, and the run still terminates. The
/// liveness timeout is set past the extract phase so eviction never
/// rescues the dead set — making the loss deterministic on wall clocks.
#[test]
fn native_rr_crash_completes_degraded_with_losses_accounted() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::RoundRobin);

    let plan = FaultPlan::new().crash_host(hosts[2], SimTime::ZERO);
    let faulted = dcapp::run_pipeline_faulted_exec(
        &topo,
        &cfg,
        &spec,
        FaultOptions::new(plan).liveness_timeout(SimDuration::from_secs(60)),
        NativeExecutor::new(),
    )
    .expect("degraded native run must still complete");

    let f = &faulted.report.faults;
    assert_eq!(f.copies_killed, 1, "{f:?}");
    assert_eq!(f.buffers_replayed, 0, "RR has no acks to replay: {f:?}");
    assert!(
        f.buffers_lost > 0,
        "RR keeps round-robining into the dead set: {f:?}"
    );
    assert!(f.bytes_lost > 0, "{f:?}");
    assert!(f.degraded, "losses mark the run degraded: {f:?}");
}

/// Seeded message drops and per-message delay injection on real threads:
/// the chaos layer retransmits and delays but must not lose anything, and
/// the image stays bit-identical to the fault-free native run.
#[test]
fn native_drops_and_delays_preserve_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(17), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());
    let clean =
        dcapp::run_pipeline_exec(&topo, &cfg, &spec, NativeExecutor::new()).expect("clean run");

    let chaos = NativeFaultPlan::new()
        .drop_messages(0xD00D, 0.08)
        .delay_messages(0xD1A7, 0.10, us(200));
    let lossy = dcapp::run_pipeline_faulted_exec(
        &topo,
        &cfg,
        &spec,
        chaos.options().liveness_timeout(ms(2)),
        NativeExecutor::new(),
    )
    .expect("lossy native run");
    let f = &lossy.report.faults;
    assert!(f.retransmits > 0, "8% drops must hit something: {f:?}");
    assert!(
        f.messages_delayed > 0,
        "10% delays must hit something: {f:?}"
    );
    assert_eq!(
        f.buffers_lost, 0,
        "drops retransmit, they do not lose: {f:?}"
    );
    assert_eq!(lossy.image.diff_pixels(&clean.image), 0);
}

// ---- supervised restarts (panic containment) ------------------------------

/// A small src -> sink graph where one sink copy can be poisoned to panic
/// or wedge; `seen` counts every buffer a sink copy actually consumed.
struct ChaosGraph {
    graph: datacutter::AppGraph,
    seen: Arc<AtomicU64>,
    /// The poisoned copy's accumulated payload sum, published when its
    /// (possibly restarted) incarnation drains the stream — the probe
    /// for "did replay rebuild the exact pre-crash state".
    sum: Arc<AtomicU64>,
}

const CHAOS_BUFFERS: u32 = 64;

/// `sink_hosts.len()` single-copy sink sets. `poison` marks the global
/// sink copy index that misbehaves; what it does is decided by `mode`.
#[derive(Clone, Copy, PartialEq)]
enum PoisonMode {
    /// Panic on the first `process` call (before consuming anything),
    /// then behave.
    PanicOnce,
    /// Panic on every `process` call.
    PanicAlways,
    /// Block without heartbeats (a real `std::thread::sleep`).
    Wedge,
    /// Consume this many buffers into filter state, then panic once —
    /// the consumed prefix's effects die with the incarnation, so only
    /// a journal replay can rebuild them.
    PanicAfter(u32),
}

fn chaos_graph(
    src_host: hetsim::HostId,
    sink_hosts: &[hetsim::HostId],
    poison: usize,
    mode: PoisonMode,
) -> ChaosGraph {
    struct Src;
    impl Filter for Src {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..CHAOS_BUFFERS {
                // Replicable so lossless runs can retain replicas; plain
                // runs are unaffected (retention is off without the knob).
                let b = ctx.buffer_slab().make_replicable(i, 256);
                ctx.write(0, b);
            }
            Ok(())
        }
    }
    struct Sink {
        poisoned: bool,
        mode: PoisonMode,
        armed: Arc<AtomicBool>,
        seen: Arc<AtomicU64>,
        sum: Arc<AtomicU64>,
    }
    impl Filter for Sink {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            if self.poisoned {
                match self.mode {
                    PoisonMode::PanicOnce => {
                        if self.armed.swap(false, Ordering::SeqCst) {
                            panic!("injected chaos panic");
                        }
                    }
                    PoisonMode::PanicAlways => panic!("injected chaos panic"),
                    PoisonMode::Wedge => {
                        std::thread::sleep(std::time::Duration::from_secs(5));
                        return Ok(());
                    }
                    PoisonMode::PanicAfter(_) => {}
                }
            }
            // Accumulate in *local* state so a panic genuinely destroys
            // the partial sum; the poisoned copy publishes it only after
            // draining the stream.
            let mut local = 0u64;
            let mut consumed = 0u32;
            while let Some(b) = ctx.read(0) {
                local += b.downcast::<u32>() as u64;
                self.seen.fetch_add(1, Ordering::SeqCst);
                consumed += 1;
                if let (true, PoisonMode::PanicAfter(k)) = (self.poisoned, self.mode) {
                    if consumed == k && self.armed.swap(false, Ordering::SeqCst) {
                        panic!("injected chaos panic");
                    }
                }
            }
            if self.poisoned {
                self.sum.store(local, Ordering::SeqCst);
            }
            Ok(())
        }
    }
    let seen: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let sum: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let armed = Arc::new(AtomicBool::new(true));
    let mut g = GraphBuilder::new();
    let s = g.add_filter("src", Placement::on_host(src_host, 1), |_| Src);
    let seen2 = seen.clone();
    let sum2 = sum.clone();
    let k = g.add_filter(
        "snk",
        Placement {
            per_host: sink_hosts.iter().map(|&h| (h, 1)).collect(),
        },
        move |info| Sink {
            poisoned: info.copy_index == poison,
            mode,
            armed: armed.clone(),
            seen: seen2.clone(),
            sum: sum2.clone(),
        },
    );
    g.connect(s, k, WritePolicy::demand_driven());
    ChaosGraph {
        graph: g.build(),
        seen,
        sum,
    }
}

/// Panic containment with a restart budget: the poisoned copy panics once
/// mid-run, the supervisor machinery restarts it in place after the
/// seeded backoff, and the run completes with zero loss — the panic never
/// aborts the process and never shows up as a raw `ProcessPanic`.
#[test]
fn native_supervised_panic_restarts_and_completes() {
    let (topo, hosts) = cluster(2);
    let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicOnce);
    let policy = SupervisorPolicy::new()
        .max_restarts(2)
        .backoff(us(50), ms(1));
    let report = Run::new(cg.graph)
        .executor(NativeExecutor::new())
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("supervised run completes");
    let f = &report.faults;
    assert_eq!(f.restarts, 1, "{f:?}");
    assert_eq!(f.copies_killed, 0, "restart rescued the copy: {f:?}");
    assert_eq!(f.buffers_lost, 0, "{f:?}");
    assert!(!f.degraded, "{f:?}");
    assert_eq!(
        cg.seen.load(Ordering::SeqCst),
        CHAOS_BUFFERS as u64,
        "the restarted copy resumes the unit of work and consumes everything"
    );
}

/// The same supervised-restart machinery on the deterministic substrate:
/// two identical runs replay the identical restart schedule and virtual
/// timeline (backoff is a pure function of the policy seed).
#[test]
fn supervised_restart_is_deterministic_on_sim() {
    let (topo, hosts) = cluster(2);
    let run = || {
        let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicOnce);
        let policy = SupervisorPolicy::new()
            .max_restarts(2)
            .backoff(ms(1), ms(10));
        let report = Run::new(cg.graph)
            .faults(NativeFaultPlan::new().supervise(policy).options())
            .go(&topo)
            .expect("supervised sim run completes");
        (
            report.elapsed,
            report.faults.restarts,
            cg.seen.load(Ordering::SeqCst),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "supervised sim runs must be bit-identical");
    assert_eq!(a.1, 1, "one restart");
    assert_eq!(a.2, CHAOS_BUFFERS as u64);
}

/// Restart budget exhausted: the poisoned copy panics until its budget
/// runs out, is declared dead in the merged death oracle, and the run
/// completes via the regular crash path — unacked DD buffers replayed to
/// the surviving sink set, nothing lost.
#[test]
fn native_restart_budget_exhausted_dies_and_replays_to_survivor() {
    let (topo, hosts) = cluster(3);
    let cg = chaos_graph(hosts[0], &[hosts[1], hosts[2]], 1, PoisonMode::PanicAlways);
    let policy = SupervisorPolicy::new()
        .max_restarts(1)
        .backoff(us(50), ms(1));
    let report = Run::new(cg.graph)
        .executor(NativeExecutor::new())
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("degraded-capable run completes");
    let f = &report.faults;
    assert_eq!(f.restarts, 1, "budget consumed: {f:?}");
    assert_eq!(f.copies_killed, 1, "budget exhausted => dead: {f:?}");
    assert_eq!(
        f.buffers_lost, 0,
        "DD replay salvages the dead queue: {f:?}"
    );
    assert_eq!(
        cg.seen.load(Ordering::SeqCst),
        CHAOS_BUFFERS as u64,
        "the surviving sink set consumes every buffer"
    );
}

/// Wall-clock wedge detection: a copy that blocks without heartbeats is
/// declared dead by the supervisor, evicted from the barrier, and its
/// thread abandoned — the run completes degraded in bounded time instead
/// of hanging for the sleeper's five seconds.
#[test]
fn native_wedge_detection_completes_degraded() {
    let (topo, hosts) = cluster(3);
    let cg = chaos_graph(hosts[0], &[hosts[1], hosts[2]], 1, PoisonMode::Wedge);
    let policy = SupervisorPolicy::new()
        .heartbeat_interval(ms(2))
        .wedge_timeout(ms(20));
    let report = Run::new(cg.graph)
        .executor(NativeExecutor::new())
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("wedged run completes degraded");
    let f = &report.faults;
    assert_eq!(f.copies_wedged, 1, "{f:?}");
    assert!(f.degraded, "a wedged copy marks the run degraded: {f:?}");
    // Wedge detection has latency: the survivor may close the cycle
    // before the sleeper is declared dead, in which case the buffers
    // stranded in the wedged set's window cannot be replayed to anyone
    // and must be accounted as losses. Conservation is exact either way.
    let seen = cg.seen.load(Ordering::SeqCst);
    assert!(
        f.buffers_lost > 0,
        "the wedged window never acks, so its buffers strand: {f:?}"
    );
    assert_eq!(
        seen + f.buffers_lost,
        CHAOS_BUFFERS as u64,
        "every buffer is either consumed or accounted lost: seen={seen} {f:?}"
    );
    assert!(
        report.elapsed < SimDuration::from_secs(2),
        "the run must not wait out the sleeper: {:?}",
        report.elapsed
    );
}

/// Unsupervised panic containment: with no fault options at all, a
/// panicking filter copy surfaces as a structured `FilterPanic` — on both
/// substrates — instead of crashing the process or leaking a raw
/// `ProcessPanic`.
#[test]
fn filter_panic_is_contained_as_structured_error() {
    let (topo, hosts) = cluster(2);
    for native in [false, true] {
        let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicAlways);
        let mut run = Run::new(cg.graph);
        if native {
            run = run.executor(NativeExecutor::new());
        }
        match run.go(&topo) {
            Err(RunError::FilterPanic {
                filter, message, ..
            }) => {
                assert_eq!(filter, "snk");
                assert!(message.contains("injected chaos panic"), "{message}");
            }
            other => panic!("expected FilterPanic (native={native}), got {other:?}"),
        }
    }
}

// ---- lossless recovery: directed scenarios --------------------------------

/// Replay after restart: the poisoned sink consumes a prefix into filter
/// state and panics — the state dies with the incarnation. Under
/// `Recovery::Lossless` the restarted copy forgets its dedup claims,
/// re-fetches the journaled prefix from the producer's retention ring,
/// and rebuilds the exact accumulator before draining the rest, on both
/// substrates.
#[test]
fn lossless_restart_replays_journal_and_rebuilds_state() {
    const K: u32 = 24;
    let (topo, hosts) = cluster(2);
    for native in [false, true] {
        let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicAfter(K));
        let policy = SupervisorPolicy::new()
            .max_restarts(2)
            .backoff(ms(1), ms(10));
        let mut run = Run::new(cg.graph);
        if native {
            run = run.executor(NativeExecutor::new());
        }
        let report = run
            .faults(
                NativeFaultPlan::new()
                    .supervise(policy)
                    .options()
                    .lossless()
                    .liveness_timeout(ms(2)),
            )
            .go(&topo)
            .expect("supervised lossless run completes");
        let f = &report.faults;
        assert_eq!(f.restarts, 1, "native={native}: {f}");
        assert_eq!(f.copies_killed, 0, "restart rescued the copy: {f}");
        assert_eq!(
            f.buffers_redelivered, K as u64,
            "native={native}: the journaled prefix is re-fetched: {f}"
        );
        assert_eq!(f.buffers_lost, 0, "native={native}: {f}");
        assert!(!f.degraded, "native={native}: {f}");
        let expect: u64 = (0..CHAOS_BUFFERS as u64).sum();
        assert_eq!(
            cg.sum.load(Ordering::SeqCst),
            expect,
            "native={native}: the restarted copy rebuilds the exact sum"
        );
        assert_eq!(
            cg.seen.load(Ordering::SeqCst),
            (CHAOS_BUFFERS + K) as u64,
            "native={native}: prefix consumed twice, remainder once"
        );
    }
}

/// Duplicate suppression: a mid-run crash makes the reaper both forward
/// the dead set's salvaged queue originals *and* redeliver the retained
/// replicas of the same provenances — the survivor claims each sequence
/// number once and repools the other copy, so nothing is double-counted
/// and the image still matches the fault-free run exactly.
#[test]
fn lossless_mid_run_crash_suppresses_duplicate_redeliveries() {
    let (topo, hosts) = cluster(5);
    // The tiled config's inflated per-entry merge cost keeps the merge
    // copies' queues deep for most of the run, so the dead set is
    // guaranteed to hold salvageable originals when it dies.
    let cfg = tiled_fault_cfg(&hosts);
    let spec = tiled_spec(&hosts);
    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.12);
    let plan = FaultPlan::new().crash_host(hosts[3], crash_at);
    let opts = dcapp::lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(10)));
    let faulted =
        dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts).expect("lossless run completes");
    let f = &faulted.report.faults;
    assert!(
        f.duplicates_suppressed > 0,
        "salvaged originals and retained replicas must overlap: {f}"
    );
    assert_eq!(f.buffers_lost, 0, "{f}");
    assert!(!f.degraded, "{f}");
    assert_eq!(
        faulted.image.diff_pixels(&clean.image),
        0,
        "suppression must not drop distinct data"
    );
}

/// Retention-ring overflow: with a deliberately tiny `retention_depth`
/// the ring evicts old replicas (tallied, repooled), and a later restart
/// finds part of its journal gone — the run still completes, but
/// degraded, with the misses accounted as losses instead of hanging or
/// silently corrupting.
#[test]
fn retention_overflow_degrades_with_eviction_accounting() {
    const K: u32 = 32;
    let (topo, hosts) = cluster(2);
    let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicAfter(K));
    let policy = SupervisorPolicy::new()
        .max_restarts(2)
        .backoff(ms(1), ms(10));
    let report = Run::new(cg.graph)
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .lossless()
                .retention_depth(2)
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("overflowing run still completes");
    let f = &report.faults;
    assert_eq!(f.restarts, 1, "{f}");
    assert!(f.retention_evicted > 0, "a depth-2 ring must evict: {f}");
    assert!(
        f.buffers_lost > 0,
        "journal re-fetch misses evicted replicas: {f}"
    );
    assert!(f.degraded, "losses mark the run degraded: {f}");
}

/// Budget-exhausted fallback: when the only consumer set panics past its
/// restart budget, lossless recovery has no survivor to redeliver to —
/// the run falls back to PR 5's loss-accounted degraded completion
/// instead of hanging or erroring.
#[test]
fn lossless_budget_exhausted_falls_back_to_degraded_completion() {
    let (topo, hosts) = cluster(2);
    let cg = chaos_graph(hosts[0], &[hosts[1]], 0, PoisonMode::PanicAlways);
    let policy = SupervisorPolicy::new()
        .max_restarts(1)
        .backoff(us(50), ms(1));
    let report = Run::new(cg.graph)
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .lossless()
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("lossless degrades rather than hangs when no survivor remains");
    let f = &report.faults;
    assert_eq!(f.restarts, 1, "budget consumed: {f}");
    assert_eq!(f.copies_killed, 1, "budget exhausted => dead: {f}");
    assert!(f.buffers_lost > 0, "no survivor to redeliver to: {f}");
    assert!(f.degraded, "{f}");
    assert_eq!(
        cg.seen.load(Ordering::SeqCst),
        0,
        "the poisoned copy never consumed anything"
    );
}

// ---- backoff schedule properties -----------------------------------------

mod backoff_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The supervised restart backoff is a pure function of
        /// (policy, copy, attempt): identical inputs replay the identical
        /// schedule, every delay stays inside the jittered exponential
        /// envelope `[env/2, env]` with `env = min(base << attempt, cap)`,
        /// and different seeds actually decorrelate the jitter.
        #[test]
        fn backoff_schedule_is_deterministic_and_bounded(
            seed in any::<u64>(),
            copy_key in any::<u64>(),
            base_ms in 1u64..50,
            cap_ms in 50u64..500,
            attempt in 0u32..16,
        ) {
            let base = SimDuration::from_millis(base_ms);
            let cap = SimDuration::from_millis(cap_ms);
            let a = datacutter::backoff_delay(base, cap, seed, copy_key, attempt);
            let b = datacutter::backoff_delay(base, cap, seed, copy_key, attempt);
            prop_assert_eq!(a, b, "same inputs, same delay");

            let envelope = base
                .as_nanos()
                .checked_shl(attempt)
                .unwrap_or(u64::MAX)
                .min(cap.as_nanos());
            prop_assert!(a.as_nanos() >= envelope / 2, "jitter floor: {a:?} vs {envelope}");
            prop_assert!(a.as_nanos() <= envelope, "jitter ceiling: {a:?} vs {envelope}");
        }

        /// Whole-schedule determinism per seed: the first eight attempts of
        /// a copy replay exactly; perturbing the seed changes at least one
        /// delay (the schedule really is seed-driven).
        #[test]
        fn backoff_schedules_replay_per_seed(
            seed in any::<u64>(),
            copy_key in any::<u64>(),
        ) {
            let base = SimDuration::from_millis(1);
            let cap = SimDuration::from_millis(100);
            let schedule = |s: u64| -> Vec<SimDuration> {
                (0..8).map(|k| datacutter::backoff_delay(base, cap, s, copy_key, k)).collect()
            };
            prop_assert_eq!(schedule(seed), schedule(seed));
            // A different seed must change the schedule.
            let other = schedule(seed ^ 0xA5A5_A5A5_5A5A_5A5A);
            prop_assert_ne!(schedule(seed), other);
        }
    }
}
