//! Fault injection and recovery: the milestone's acceptance scenarios.
//!
//! A mid-run crash of one extract host under the demand-driven policy
//! must leave the rendered image bit-identical to the fault-free run —
//! every buffer that was queued at (or still in flight to) the dead copy
//! set is replayed to the survivor via the DD acknowledgment machinery.
//! The same crash under round robin has no acks to replay from, so the
//! run completes *degraded*: it still terminates, renders what survived,
//! and accounts for every lost buffer.

use datacutter::{FaultOptions, Placement, RunError, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::{FaultPlan, SimDuration, SimTime};
use integration_tests::{cluster, test_cfg, test_dataset};

/// `R–E–Ra–M` with the extract stage replicated on hosts 1 and 2 (so one
/// of them can die and leave a survivor), raster on host 3, merge on
/// host 4, all data on host 0.
fn spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

#[test]
fn dd_crash_mid_uow_replays_to_bit_identical_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    assert!(clean.report.faults.injected.is_empty());

    // Kill one extract host while the R->E stream is busy.
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.25);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("faulted run must still complete");

    let f = &faulted.report.faults;
    assert!(!f.injected.is_empty(), "the plan must be recorded");
    assert!(
        f.copies_killed >= 1,
        "the copy on the dead host dies: {f:?}"
    );
    assert!(f.buffers_replayed > 0, "unacked buffers replayed: {f:?}");
    assert_eq!(f.buffers_lost, 0, "DD replay loses nothing: {f:?}");
    assert!(!f.degraded, "nothing lost, so not degraded: {f:?}");
    assert_eq!(
        faulted.image.diff_pixels(&clean.image),
        0,
        "replayed run must render the exact fault-free image"
    );
}

#[test]
fn rr_crash_completes_degraded_with_losses_accounted() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::RoundRobin);

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    // Early crash: the raster/merge tail dominates total elapsed, so only
    // an early failure lands while the R->E stream is still busy.
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("degraded run must still complete");

    let f = &faulted.report.faults;
    assert!(f.copies_killed >= 1, "{f:?}");
    assert_eq!(f.buffers_replayed, 0, "RR has no acks to replay: {f:?}");
    assert!(
        f.buffers_lost > 0,
        "RR-routed buffers at the dead set are lost: {f:?}"
    );
    assert!(f.bytes_lost > 0, "{f:?}");
    assert!(f.degraded, "losses mark the run degraded: {f:?}");
}

#[test]
fn rr_crash_fails_fast_when_degraded_mode_disallowed() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::RoundRobin);

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let opts = FaultOptions::new(plan).allow_degraded(false);
    match dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts) {
        Err(RunError::NoSurvivingConsumers { stream }) => {
            assert!(!stream.is_empty());
        }
        Err(other) => panic!("expected NoSurvivingConsumers, got {other}"),
        Ok(_) => panic!("expected NoSurvivingConsumers, got a completed run"),
    }
}

#[test]
fn empty_plan_is_bit_identical_to_unfaulted_runtime() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    let nofault =
        dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(FaultPlan::new()))
            .expect("run");
    assert_eq!(
        nofault.elapsed, clean.elapsed,
        "empty plan must not perturb time"
    );
    assert_eq!(nofault.image.diff_pixels(&clean.image), 0);
    assert_eq!(nofault.report.faults.copies_killed, 0);
}

#[test]
fn stall_delays_but_preserves_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(13), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    // Freeze the single raster copy: it is on the critical path, so the
    // whole window must show up in the elapsed time.
    let at = SimTime::ZERO + clean.elapsed.mul_f64(0.2);
    let plan = FaultPlan::new().stall_host(hosts[3], at, SimDuration::from_millis(200));
    let stalled = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("stalled run");
    assert_eq!(
        stalled.image.diff_pixels(&clean.image),
        0,
        "a stall loses no state"
    );
    assert!(stalled.elapsed > clean.elapsed, "the freeze must cost time");
    assert_eq!(stalled.report.faults.copies_killed, 0);
}

#[test]
fn message_drops_force_retransmits_but_preserve_output() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(17), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    let plan = FaultPlan::new().drop_messages(0xD00D, 0.08);
    let lossy = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
        .expect("lossy run");
    let f = &lossy.report.faults;
    assert!(
        f.retransmits > 0,
        "an 8% drop rate must hit something: {f:?}"
    );
    assert_eq!(
        f.buffers_lost, 0,
        "drops retransmit, they do not lose: {f:?}"
    );
    assert_eq!(lossy.image.diff_pixels(&clean.image), 0);
}
