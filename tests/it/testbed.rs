//! Full UMD-testbed integration: pipelines spanning all four emulated
//! clusters, cross-cluster streams, and the compute-node placement.

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::{red_with_deathstar, umd_testbed};
use integration_tests::{test_cfg, test_dataset};

#[test]
fn pipeline_spans_all_four_clusters() {
    let tb = umd_testbed();
    // Data on 2 Rogue + 2 Red nodes; raster copies on Blue; merge on
    // Deathstar — every cluster participates.
    let storage = vec![tb.rogue.1[0], tb.rogue.1[1], tb.red.1[0], tb.red.1[1]];
    let cfg = test_cfg(test_dataset(40), storage.clone(), 96);
    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(&[tb.blue.1[0], tb.blue.1[1]]),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: tb.deathstar.1,
    };
    let r = dcapp::run_pipeline(&tb.topology, &cfg, &spec).expect("run");
    assert_eq!(r.image.diff_pixels(&dcapp::reference_image(&cfg)), 0);
    // Traffic crossed into Blue and Deathstar.
    assert!(
        tb.topology.nic_bytes(tb.blue.1[0]).1 > 0,
        "blue received stream traffic"
    );
    assert!(
        tb.topology.nic_bytes(tb.deathstar.1).1 > 0,
        "deathstar received merge traffic"
    );
}

#[test]
fn eight_way_node_runs_seven_copies() {
    let (topo, reds, ds) = red_with_deathstar(2);
    let cfg = test_cfg(test_dataset(41), reds.clone(), 96);
    let mut per_host: Vec<(hetsim::HostId, u32)> = reds.iter().map(|&h| (h, 1)).collect();
    per_host.push((ds, 7));
    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement { per_host },
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::WeightedRoundRobin,
        merge_host: ds,
    };
    let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
    assert_eq!(r.image.diff_pixels(&dcapp::reference_image(&cfg)), 0);
    // All 9 raster copies exist; the deathstar set received the weighted
    // majority of buffers.
    let s = r.report.stream(r.to_raster.unwrap());
    let red_total: u64 = s.copysets[..2]
        .iter()
        .map(|(_, c)| c.buffers_received)
        .sum();
    let ds_total = s.copysets[2].1.buffers_received;
    assert!(
        ds_total > red_total,
        "7-copy deathstar set should dominate under WRR: {ds_total} vs {red_total}"
    );
}

#[test]
fn slow_uplink_hurts_remote_placement() {
    // Two identical hosts, one per cluster, joined by a very slow
    // backbone. Placing the extract+raster stage across the backbone (so
    // every chunk crosses it) must lose to the co-located placement —
    // the only difference between the runs is the link.
    use hetsim::{ClusterSpec, HostSpec, SimDuration, TopologyBuilder};
    let build = || {
        let mut b = TopologyBuilder::new();
        let mk_cluster = |name: &str| ClusterSpec {
            name: name.into(),
            nic_bandwidth_bps: 100.0e6,
            nic_latency: SimDuration::from_micros(60),
        };
        let c0 = b.add_cluster(mk_cluster("a"));
        let c1 = b.add_cluster(mk_cluster("b"));
        let mk_host = |name: &str| HostSpec {
            name: name.into(),
            cores: 1,
            speed: 1.0,
            mem_mb: 512,
            disks: 2,
            disk_bandwidth_bps: 25.0e6,
            disk_seek: SimDuration::from_millis(9),
        };
        let h0 = b.add_host(c0, mk_host("data"));
        let h1 = b.add_host(c1, mk_host("compute"));
        // Painfully slow backbone: 100 KB/s.
        b.connect_clusters(c0, c1, 0.1e6, SimDuration::from_millis(1));
        (b.build(), h0, h1)
    };

    let elapsed = |remote: bool| {
        let (topo, h0, h1) = build();
        let cfg = test_cfg(test_dataset(42), vec![h0], 96);
        let era_host = if remote { h1 } else { h0 };
        let spec = PipelineSpec {
            grouping: Grouping::REraSplit {
                era: Placement::on_host(era_host, 1),
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::RoundRobin,
            merge_host: h0,
        };
        dcapp::run_pipeline(&topo, &cfg, &spec).unwrap().elapsed
    };
    let local = elapsed(false);
    let remote = elapsed(true);
    assert!(
        local < remote,
        "co-located ERa ({local}) should beat ERa across a 100 KB/s backbone ({remote})"
    );
}

#[test]
fn background_load_only_dilates_loaded_hosts() {
    let (topo, hosts) = integration_tests::cluster(2);
    topo.host(hosts[0]).cpu.set_bg_jobs(16);
    let cfg = test_cfg(test_dataset(43), hosts.clone(), 96);
    let spec = PipelineSpec {
        grouping: Grouping::RERaM,
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::RoundRobin,
        merge_host: hosts[1],
    };
    let r = dcapp::run_pipeline(&topo, &cfg, &spec).unwrap();
    // Copy on the loaded host took much longer per unit of work.
    let copies = r.report.copies_of(r.filters[0]);
    let loaded = copies.iter().find(|c| c.host == hosts[0]).unwrap();
    let idle = copies.iter().find(|c| c.host == hosts[1]).unwrap();
    let dilate = |c: &datacutter::CopyReport| {
        c.counters.compute_elapsed.as_secs_f64() / c.counters.work.as_secs_f64().max(1e-12)
    };
    assert!(
        dilate(loaded) > 5.0 * dilate(idle),
        "loaded {} vs idle {}",
        dilate(loaded),
        dilate(idle)
    );
}
