//! The cooperative [`datacutter::TaskedExecutor`] against the simulator
//! and the thread-per-copy native executor: the same application graph,
//! multiplexed as waker-parked tasks over a deliberately tiny worker
//! pool, must produce bit-identical rendered images under every writer
//! policy — and recover losslessly from seeded crashes. The pool sizes
//! here (1–2 workers) are chosen to force heavy oversubscription: every
//! blocking read/write must release its admission slot, or the suite
//! deadlocks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datacutter::{
    DataBuffer, FaultOptions, Filter, FilterCtx, FilterError, GraphBuilder, NativeFaultPlan,
    Placement, Run, RunError, SimExecutor, SupervisorPolicy, TaskedExecutor, WritePolicy,
};
use dcapp::{
    lossless_options, reference_image, run_pipeline_exec, Algorithm, Grouping, PipelineSpec,
};
use hetsim::{FaultPlan, SimDuration, SimTime};
use integration_tests::{cluster, recovery_digest, test_cfg, test_dataset};
use parking_lot::Mutex;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn spec(hosts: &[hetsim::HostId], policy: WritePolicy, alg: Algorithm) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        algorithm: alg,
        policy,
        merge_host: hosts[0],
    }
}

/// `R–E–Ra–M` with the extract stage replicated on hosts 1 and 2, the
/// same shape as the `recovery.rs` lossless matrix.
fn recovery_spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

/// The equivalence property on the cooperative substrate: for each
/// writer policy and both rendering algorithms, the pipeline renders the
/// exact same image on the simulator and on a two-worker task pool, and
/// both match the sequential reference.
#[test]
fn sim_and_tasked_render_identical_images_all_policies() {
    let (topo, hosts) = cluster(3);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let reference = reference_image(&cfg);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let s = spec(&hosts, policy, alg);
            let sim = run_pipeline_exec(&topo, &cfg, &s, SimExecutor::new()).unwrap();
            let tasked =
                run_pipeline_exec(&topo, &cfg, &s, TaskedExecutor::with_workers(2)).unwrap();
            assert_eq!(
                sim.image.diff_pixels(&reference),
                0,
                "sim image diverged from reference ({} {alg:?})",
                policy.label()
            );
            assert_eq!(
                tasked.image.diff_pixels(&reference),
                0,
                "tasked image diverged from reference ({} {alg:?})",
                policy.label()
            );
            assert_eq!(
                tasked.image.diff_pixels(&sim.image),
                0,
                "tasked vs sim pixels differ ({} {alg:?})",
                policy.label()
            );
            // Tasked runs report wall-clock elapsed and no virtual events.
            assert_eq!(tasked.report.events, 0);
            assert!(sim.report.events > 0);
        }
    }
}

/// Oversubscription stress: 8 transparent raster copies plus read and
/// merge stages — well over a dozen tasks — multiplexed over a single
/// admission slot, repeatedly. Progress requires that every parked task
/// hands its slot to a runnable one.
#[test]
fn tasked_stress_many_copies_on_one_worker() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(13), hosts.clone(), 96);
    let reference = reference_image(&cfg);
    // 4 hosts x 2 copies = 8 raster copies.
    let s = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement {
                per_host: hosts.iter().map(|&h| (h, 2)).collect(),
            },
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };
    for round in 0..3 {
        let r = run_pipeline_exec(&topo, &cfg, &s, TaskedExecutor::with_workers(1)).unwrap();
        assert_eq!(
            r.image.diff_pixels(&reference),
            0,
            "stress round {round} diverged"
        );
    }
}

/// Multi-UOW cycles (global barrier between units of work) on the task
/// pool: the barrier parks tasks across UOW boundaries, so every cycle's
/// data stays within its cycle even when parties outnumber workers.
#[test]
fn tasked_multi_uow_barrier_cycles() {
    let (topo, hosts) = cluster(2);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    struct UowSrc;
    impl Filter for UowSrc {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..8u32 {
                ctx.write(0, DataBuffer::new(ctx.uow() * 100 + i, 64));
            }
            Ok(())
        }
    }
    struct Gather {
        out: Arc<Mutex<Vec<u32>>>,
    }
    impl Filter for Gather {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                self.out.lock().push(b.downcast::<u32>());
            }
            Ok(())
        }
    }
    let mut g = GraphBuilder::new();
    let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| UowSrc);
    let out2 = out.clone();
    let k = g.add_filter("snk", Placement::on_host(hosts[1], 2), move |_| Gather {
        out: out2.clone(),
    });
    g.connect(s, k, WritePolicy::demand_driven());
    let report = Run::new(g.build())
        .uows(3)
        .executor(TaskedExecutor::with_workers(2))
        .go(&topo)
        .unwrap();
    let mut v = out.lock().clone();
    v.sort_unstable();
    let mut want: Vec<u32> = (0..3u32)
        .flat_map(|u| (0..8u32).map(move |i| u * 100 + i))
        .collect();
    want.sort_unstable();
    assert_eq!(v, want);
    // Two inter-UOW barrier boundaries on the wall clock.
    assert_eq!(report.uow_boundaries.len(), 2);
    assert!(report.uow_boundaries[0] <= report.uow_boundaries[1]);
}

/// A failing filter on the task pool surfaces the same structured error
/// a simulated or native run would.
#[test]
fn tasked_filter_error_is_structured() {
    let (topo, hosts) = cluster(1);
    struct Bad;
    impl Filter for Bad {
        fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
            Err(FilterError("tasked boom".into()))
        }
    }
    let mut g = GraphBuilder::new();
    g.add_filter("bad", Placement::on_host(hosts[0], 1), |_| Bad);
    match Run::new(g.build())
        .executor(TaskedExecutor::with_workers(1))
        .go(&topo)
    {
        Err(RunError::Filter {
            filter, message, ..
        }) => {
            assert_eq!(filter, "bad");
            assert!(message.contains("tasked boom"));
        }
        other => panic!("expected structured filter error, got {other:?}"),
    }
}

/// Setup hooks (which need the simulation object) are rejected up front
/// with a structured error, and a graph exceeding the executor's task
/// cap is rejected before anything spawns.
#[test]
fn tasked_rejects_setup_and_oversized_graphs() {
    let (topo, hosts) = cluster(2);
    let mk = || {
        let mut g = GraphBuilder::new();
        struct Quiet;
        impl Filter for Quiet {
            fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
                Ok(())
            }
        }
        g.add_filter("quiet", Placement::on_host(hosts[0], 4), |_| Quiet);
        g.build()
    };
    match Run::new(mk())
        .executor(TaskedExecutor::new())
        .setup(|_sim| {})
        .go(&topo)
    {
        Err(RunError::Unsupported { what }) => assert!(what.contains("setup")),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    // 4 copies against a cap of 3: structured rejection naming the knob.
    match Run::new(mk())
        .executor(TaskedExecutor::new().max_tasks(3))
        .go(&topo)
    {
        Err(RunError::Unsupported { what }) => {
            assert!(what.contains("max_task_copies"), "got: {what}");
            assert!(what.contains('4'), "got: {what}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

/// Lossless recovery on the cooperative substrate: a dead-from-start
/// crash of one extract host under RR, WRR, and DD completes with
/// `lost == 0` and pixels bit-identical to the fault-free tasked run —
/// the supervised-restart/reaper machinery works when the restarted
/// incarnation is a task, not a dedicated thread.
#[test]
fn tasked_lossless_dead_start_crash_all_policies() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = recovery_spec(&hosts, policy);
        let plan = FaultPlan::new().crash_host(hosts[2], SimTime::ZERO);
        let opts = lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(2)));
        let clean = dcapp::run_pipeline_exec(&topo, &cfg, &spec, TaskedExecutor::with_workers(2))
            .expect("fault-free tasked run");
        let faulted = dcapp::run_pipeline_faulted_exec(
            &topo,
            &cfg,
            &spec,
            opts,
            TaskedExecutor::with_workers(2),
        )
        .expect("lossless tasked run completes");
        let label = format!("tasked/{}", policy.label());
        let f = &faulted.report.faults;
        assert!(f.copies_killed >= 1, "{label}: the victim must die: {f}");
        assert_eq!(f.buffers_lost, 0, "{label}: lossless loses nothing: {f}");
        assert_eq!(f.bytes_lost, 0, "{label}: {f}");
        assert!(!f.degraded, "{label}: zero loss is not degraded: {f}");
        assert_eq!(
            faulted.image.diff_pixels(&clean.image),
            0,
            "{label}: recovered image must be bit-identical to fault-free"
        );
        assert_eq!(
            recovery_digest(&faulted),
            recovery_digest(&clean),
            "{label}: image+loss digest must match fault-free"
        );
    }
}

/// Mid-run crash on the task pool: the victim extract copy dies a
/// quarter of the way through (scaled from a fault-free run's wall
/// clock), its consumed-but-unsettled buffers are replayed or
/// redelivered to the survivor, and the image stays bit-identical with
/// nothing lost. Wall-clock crash instants are inexact, so unlike the
/// simulator matrix this does not pin the replay tallies — only the
/// lossless contract.
#[test]
fn tasked_lossless_mid_run_crash_recovers() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    let spec = recovery_spec(&hosts, WritePolicy::demand_driven());
    let clean = dcapp::run_pipeline_exec(&topo, &cfg, &spec, TaskedExecutor::with_workers(2))
        .expect("fault-free tasked run");
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.25);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let opts = lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(2)));
    let faulted =
        dcapp::run_pipeline_faulted_exec(&topo, &cfg, &spec, opts, TaskedExecutor::with_workers(2))
            .expect("lossless tasked mid-run crash completes");
    let f = &faulted.report.faults;
    assert!(f.copies_killed >= 1, "the victim must die: {f}");
    assert_eq!(f.buffers_lost, 0, "lossless loses nothing: {f}");
    assert_eq!(f.bytes_lost, 0, "{f}");
    assert!(!f.degraded, "zero loss is not degraded: {f}");
    assert_eq!(
        faulted.image.diff_pixels(&clean.image),
        0,
        "recovered image must be bit-identical to fault-free"
    );
    assert_eq!(recovery_digest(&faulted), recovery_digest(&clean));
}

/// The restart timeline labels tasked-substrate incarnations as tasks
/// (not threads): a sink copy panics once, the supervisor restarts it in
/// place on the pool, and the `FaultReport` restart event carries the
/// `task` substrate label instead of the OS-thread default.
#[test]
fn tasked_restart_timeline_labels_tasks() {
    let (topo, hosts) = cluster(2);
    struct Src;
    impl Filter for Src {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..16u32 {
                ctx.write(0, DataBuffer::new(i, 64));
            }
            Ok(())
        }
    }
    struct PanicOnce {
        armed: Arc<AtomicBool>,
    }
    impl Filter for PanicOnce {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            if self.armed.swap(false, Ordering::SeqCst) {
                panic!("seeded one-shot panic");
            }
            while ctx.read(0).is_some() {}
            Ok(())
        }
    }
    let armed = Arc::new(AtomicBool::new(true));
    let mut g = GraphBuilder::new();
    let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| Src);
    let armed2 = armed.clone();
    let k = g.add_filter("snk", Placement::on_host(hosts[1], 1), move |_| PanicOnce {
        armed: armed2.clone(),
    });
    g.connect(s, k, WritePolicy::demand_driven());
    let policy = SupervisorPolicy::new()
        .max_restarts(2)
        .backoff(SimDuration::from_micros(50), ms(1));
    let report = Run::new(g.build())
        .executor(TaskedExecutor::with_workers(2))
        .faults(
            NativeFaultPlan::new()
                .supervise(policy)
                .options()
                .liveness_timeout(ms(2)),
        )
        .go(&topo)
        .expect("supervised tasked run completes");
    let f = &report.faults;
    assert_eq!(f.restarts, 1, "{f}");
    assert_eq!(f.copies_killed, 0, "restart rescued the copy: {f}");
    assert!(!f.restart_events.is_empty());
    for e in &f.restart_events {
        assert_eq!(
            e.worker, "task",
            "tasked-substrate restarts must be labelled as tasks: {f}"
        );
    }
}
