//! Bit-identity of tile-owned compositing (`RE-Ra-Mt-A`) against the
//! serial single-sink merge, on the fig5 heterogeneous configuration.
//!
//! The tentpole claim is that cutting the image into row-strip tiles,
//! tile-hash-routing fragments to a parallel merge group and stitching
//! afterwards changes **where** the depth test runs but not one bit of
//! its result. So for every writer policy on the producer side the tiled
//! image digest must equal the serial pipeline's pinned image digest
//! (`dataplane_identity`'s table), on the simulator *and* on the native
//! OS-thread executor. Metrics digests are pinned for the deterministic
//! simulator only — wall-clock runs are asserted pixel-identical instead.
//!
//! To recapture after an intentional behavior change:
//! `cargo test -q -p integration-tests --test compositing_identity -- --ignored --nocapture`

use datacutter::{FaultOptions, NativeExecutor, Placement, WritePolicy};
use dcapp::{
    reference_image, run_pipeline, run_pipeline_exec, run_pipeline_faulted,
    run_pipeline_faulted_exec, Algorithm, Grouping, PipelineResult, PipelineSpec,
};
use hetsim::presets::rogue_blue_mix;
use hetsim::{FaultPlan, HostId, SimDuration, SimTime, Topology};
use integration_tests::{image_digest, metrics_digest, test_cfg, test_dataset};

/// The serial pipeline's pinned fault-free image digest (the `rr`/`wrr`/
/// `dd` rows of `dataplane_identity::PINNED`). Tile compositing must
/// reproduce it exactly — this is the acceptance criterion, so the value
/// is duplicated here rather than shared: changing either copy is a
/// deliberate act.
const SERIAL_IMAGE: u64 = 0xa7ef3c36edc7d9b7;

/// The fig5 heterogeneous setting, scaled for tests: 2 loaded Rogue + 2
/// dedicated Blue hosts, raster everywhere, merge group on the Blues.
fn fig5_setting() -> (Topology, Vec<HostId>, Vec<HostId>) {
    let (topo, rogues, blues) = rogue_blue_mix(2);
    for &h in &rogues {
        topo.host(h).cpu.set_bg_jobs(4);
    }
    (topo, rogues, blues)
}

fn tiled_spec(hosts: &[HostId], blues: &[HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: Placement::one_per_host(hosts),
            merge: Placement::one_per_host(blues),
        },
        algorithm: Algorithm::ActivePixel,
        policy,
        merge_host: blues[0],
    }
}

fn setting() -> (Topology, Vec<HostId>, Vec<HostId>) {
    let (topo, rogues, blues) = fig5_setting();
    let mut hosts = rogues.clone();
    hosts.extend(&blues);
    (topo, hosts, blues)
}

fn run_policy(policy: WritePolicy) -> PipelineResult {
    let (topo, hosts, blues) = setting();
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = tiled_spec(&hosts, &blues, policy);
    run_pipeline(&topo, &cfg, &s).expect("tiled fig5 run failed")
}

fn run_policy_native(policy: WritePolicy) -> PipelineResult {
    let (topo, hosts, blues) = setting();
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = tiled_spec(&hosts, &blues, policy);
    run_pipeline_exec(&topo, &cfg, &s, NativeExecutor::new()).expect("native tiled run failed")
}

/// The serial suite's faulted-DD scenario transplanted onto the tiled
/// pipeline: kill the second Rogue (an RE + Ra host; the merge group on
/// the Blues survives intact) 40 virtual ms in, under demand-driven
/// routing with a 10 ms liveness timeout.
fn run_faulted() -> PipelineResult {
    let (topo, hosts, blues) = setting();
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = tiled_spec(&hosts, &blues, WritePolicy::demand_driven());
    let plan = FaultPlan::new().crash_host(hosts[1], SimTime::ZERO + SimDuration::from_millis(40));
    let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(10));
    run_pipeline_faulted(&topo, &cfg, &s, opts).expect("faulted tiled run failed")
}

/// Faulted-DD with the crash at t=0: the dead host's copies never run, so
/// the surviving work set is timing-independent and the rendered image is
/// comparable across the virtual-time and wall-clock substrates.
fn run_faulted_t0(exec: impl Into<datacutter::ExecutorChoice>) -> PipelineResult {
    let (topo, hosts, blues) = setting();
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = tiled_spec(&hosts, &blues, WritePolicy::demand_driven());
    let plan = FaultPlan::new().crash_host(hosts[1], SimTime::ZERO);
    let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(2));
    run_pipeline_faulted_exec(&topo, &cfg, &s, opts, exec).expect("t0-faulted tiled run failed")
}

/// `(label, image digest, sim metrics digest)` for the tiled pipeline.
/// The fault-free image digests are **not free pins**: they must equal
/// [`SERIAL_IMAGE`], and the tests assert that identity explicitly.
const PINNED: &[(&str, u64, u64)] = &[
    ("rr", 0xa7ef3c36edc7d9b7, 0x51a7bdb31d793cbf),
    ("wrr", 0xa7ef3c36edc7d9b7, 0x51a7bdb31d793cbf),
    ("dd", 0xa7ef3c36edc7d9b7, 0x529ce9c119adf4d4),
    ("dd_fault", 0xaca36968a69f3fc3, 0x5dba03bc19df90b0),
];

fn pinned(label: &str) -> (u64, u64) {
    let (_, i, m) = PINNED
        .iter()
        .find(|(l, _, _)| *l == label)
        .expect("unknown pin label");
    (*i, *m)
}

fn check(label: &str, r: &PipelineResult) {
    let (want_img, want_met) = pinned(label);
    assert_eq!(
        image_digest(&r.image),
        want_img,
        "{label}: tiled pixels diverged from the pinned digest"
    );
    assert_eq!(
        metrics_digest(r),
        want_met,
        "{label}: tiled metrics diverged from the pinned digest"
    );
}

#[test]
fn tiled_round_robin_matches_serial_image_digest() {
    let r = run_policy(WritePolicy::RoundRobin);
    assert_eq!(pinned("rr").0, SERIAL_IMAGE);
    check("rr", &r);
}

#[test]
fn tiled_weighted_round_robin_matches_serial_image_digest() {
    let r = run_policy(WritePolicy::WeightedRoundRobin);
    assert_eq!(pinned("wrr").0, SERIAL_IMAGE);
    check("wrr", &r);
}

#[test]
fn tiled_demand_driven_matches_serial_image_digest() {
    // DD additionally matches the sequential reference (sanity that the
    // shared pin pins a *correct* image, not a stable wrong one).
    let r = run_policy(WritePolicy::demand_driven());
    let (_, hosts, _) = setting();
    let cfg = test_cfg(test_dataset(7), hosts, 96);
    assert_eq!(r.image.diff_pixels(&reference_image(&cfg)), 0);
    assert_eq!(pinned("dd").0, SERIAL_IMAGE);
    check("dd", &r);
}

#[test]
fn tiled_faulted_demand_driven_matches_pinned_digests() {
    let r = run_faulted();
    assert!(
        r.report.faults.copies_killed > 0,
        "the fault plan must actually kill copies"
    );
    check("dd_fault", &r);
}

/// Native executor, all three producer policies: the wall-clock pipeline
/// must render the exact pixels the simulator pinned. (Metrics are not
/// pinned on this substrate — thread scheduling perturbs the timings.)
#[test]
fn native_tiled_runs_match_sim_image_digests() {
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let r = run_policy_native(policy);
        assert_eq!(
            image_digest(&r.image),
            SERIAL_IMAGE,
            "{policy:?}: native tiled pixels diverged from the serial pin"
        );
    }
}

/// Faulted-DD across substrates: with the crash pinned at t=0 the loss
/// accounting and the rendered image are deterministic, so the native run
/// must reproduce the sim run bit-for-bit.
#[test]
fn native_tiled_faulted_dd_matches_sim_pixels() {
    let sim = run_faulted_t0(datacutter::SimExecutor::new());
    let nat = run_faulted_t0(NativeExecutor::new());
    for (label, r) in [("sim", &sim), ("native", &nat)] {
        let f = &r.report.faults;
        assert_eq!(
            f.copies_killed, 2,
            "{label}: host-1 RE and Ra copies die: {f:?}"
        );
        assert_eq!(f.buffers_lost, 0, "{label}: DD replay loses nothing: {f:?}");
    }
    assert_eq!(
        image_digest(&nat.image),
        image_digest(&sim.image),
        "native faulted tiled run must render the sim run's exact pixels"
    );
}

/// Recapture helper: prints the digest table to paste into [`PINNED`].
#[test]
#[ignore = "manual recapture helper"]
fn print_digests() {
    let rows: Vec<(&str, PipelineResult)> = vec![
        ("rr", run_policy(WritePolicy::RoundRobin)),
        ("wrr", run_policy(WritePolicy::WeightedRoundRobin)),
        ("dd", run_policy(WritePolicy::demand_driven())),
        ("dd_fault", run_faulted()),
    ];
    for (label, r) in &rows {
        println!(
            "    (\"{label}\", {:#018x}, {:#018x}),",
            image_digest(&r.image),
            metrics_digest(r)
        );
    }
}
