//! Lossless recovery: the tentpole acceptance suite.
//!
//! With [`datacutter::Recovery::Lossless`], producers retain every
//! sent-but-unsettled buffer in slab-pooled retention rings, consumers
//! deduplicate by per-(producer copy, stream) sequence number, and the
//! reaper/supervisor replay or redeliver retained traffic when a copy
//! dies — so a seeded crash plan completes with `lost == 0` and an image
//! bit-identical to the fault-free run under *every* writer policy, on
//! both the virtual-time simulator and the native executor.
//!
//! Two crash classes are distinguished deliberately:
//!
//! - **Dead-from-start** (`crash_host(h, SimTime::ZERO)`): the doomed
//!   copy fail-stops at its first read boundary and never consumes, so
//!   on top of the pixel/loss contract the per-stream delivery *totals*
//!   are exactly invariant whenever the surviving stages' per-copy
//!   batching is unchanged (the tile-hash scenario) — every unique
//!   sequence number is claimed once somewhere.
//! - **Mid-run**: the dead copy consumed buffers whose effects died with
//!   its accumulator state; redelivery re-processes them at a survivor
//!   (and streaming filters re-emit downstream), so totals legitimately
//!   shift while the *image* stays bit-identical — every rendering fold
//!   (z-buffer depth test, winning-pixel composition) is idempotent
//!   under duplicated identical inputs.

use std::sync::Arc;

use datacutter::{FaultOptions, NativeExecutor, Placement, SimExecutor, WritePolicy};
use dcapp::{lossless_options, Algorithm, Grouping, PipelineSpec};
use hetsim::{FaultPlan, SimDuration, SimTime};
use integration_tests::{cluster, recovery_digest, stream_totals_digest, test_cfg, test_dataset};

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// `R–E–Ra–M` with the extract stage replicated on hosts 1 and 2 (so one
/// can die and leave a survivor), raster on host 3, merge on host 4, all
/// data on host 0 — the same shape as the `faults.rs` scenarios.
fn spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

/// Tile-owned compositing with the merge group on hosts 2 and 3.
fn tiled_spec(hosts: &[hetsim::HostId]) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: Placement::on_host(hosts[1], 1),
            merge: Placement::one_per_host(&[hosts[2], hosts[3]]),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[4],
    }
}

/// One-row tiles and an inflated per-entry merge cost so a mid-run merge
/// crash has real fragment traffic in flight.
fn tiled_fault_cfg(hosts: &[hetsim::HostId]) -> dcapp::SharedConfig {
    let mut cfg = dcapp::AppConfig::new(test_dataset(7), vec![hosts[0]], 2, 96, 96);
    cfg.iso = 0.5;
    cfg.tile_size = 1;
    cfg.cost.merge_per_entry = 2.0e-3;
    Arc::new(cfg)
}

/// The recovered run's invariants against its same-substrate fault-free
/// baseline.
///
/// `dead_from_start` plans cannot guarantee replay traffic: the reaper
/// may evict the dead set's writers before the first producer send, in
/// which case routing around the corpse is the whole recovery. Mid-run
/// plans are the opposite: traffic is in flight, so retained buffers
/// must move.
///
/// `exact_totals` pins the per-stream delivery totals, which needs both
/// a dead-from-start victim (it consumed nothing) *and* no surviving
/// stage whose per-copy batching changes — losing one of two extract
/// copies means one final partial `TriBatch` flush instead of two, so
/// the FourStage shape shifts totals even when the victim never ran.
fn assert_lossless(
    label: &str,
    clean: &dcapp::PipelineResult,
    faulted: &dcapp::PipelineResult,
    dead_from_start: bool,
    exact_totals: bool,
) {
    let f = &faulted.report.faults;
    assert!(f.copies_killed >= 1, "{label}: the victim must die: {f}");
    assert_eq!(f.buffers_lost, 0, "{label}: lossless loses nothing: {f}");
    assert_eq!(f.bytes_lost, 0, "{label}: {f}");
    assert!(!f.degraded, "{label}: zero loss is not degraded: {f}");
    if !dead_from_start {
        assert!(
            f.buffers_replayed + f.buffers_redelivered > 0,
            "{label}: mid-run recovery must actually move retained traffic: {f}"
        );
    }
    assert_eq!(
        faulted.image.diff_pixels(&clean.image),
        0,
        "{label}: recovered image must be bit-identical to fault-free"
    );
    assert_eq!(
        recovery_digest(faulted),
        recovery_digest(clean),
        "{label}: image+loss digest must match fault-free"
    );
    if exact_totals {
        assert_eq!(
            stream_totals_digest(faulted),
            stream_totals_digest(clean),
            "{label}: dead-from-start recovery delivers every seq exactly once"
        );
    }
}

/// The tentpole acceptance matrix: a dead-from-start crash of one extract
/// host under RR, WRR, and DD completes with `lost == 0`, bit-identical
/// pixels, and exactly invariant stream totals — on both substrates.
#[test]
fn lossless_dead_start_crash_bit_identical_all_policies_both_substrates() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = spec(&hosts, policy);
        let plan = || FaultPlan::new().crash_host(hosts[2], SimTime::ZERO);
        let opts = || lossless_options(&cfg, FaultOptions::new(plan()).liveness_timeout(ms(2)));

        let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free sim run");
        let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts())
            .expect("lossless sim run completes");
        assert_lossless(
            &format!("sim/{}", policy.label()),
            &clean,
            &faulted,
            true,
            false,
        );

        let clean_nat = dcapp::run_pipeline_exec(&topo, &cfg, &spec, NativeExecutor::new())
            .expect("fault-free native run");
        let faulted_nat =
            dcapp::run_pipeline_faulted_exec(&topo, &cfg, &spec, opts(), NativeExecutor::new())
                .expect("lossless native run completes");
        assert_lossless(
            &format!("native/{}", policy.label()),
            &clean_nat,
            &faulted_nat,
            true,
            false,
        );
    }
}

/// Same matrix entry for the tile-hash policy: a dead-from-start crash of
/// one tile-owning merge set re-routes every fragment to the survivor
/// (linear-probe fall-through), which flushes all tiles — `lost == 0`,
/// identical pixels, exact totals, both substrates.
#[test]
fn lossless_dead_start_tile_hash_merge_crash_both_substrates() {
    let (topo, hosts) = cluster(5);
    let cfg = tiled_fault_cfg(&hosts);
    let spec = tiled_spec(&hosts);
    let plan = || FaultPlan::new().crash_host(hosts[3], SimTime::ZERO);
    let opts = || lossless_options(&cfg, FaultOptions::new(plan()).liveness_timeout(ms(2)));

    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free sim run");
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts())
        .expect("lossless tiled sim run completes");
    assert_lossless("sim/tile-hash", &clean, &faulted, true, true);

    let clean_nat = dcapp::run_pipeline_exec(&topo, &cfg, &spec, NativeExecutor::new())
        .expect("fault-free native run");
    let faulted_nat =
        dcapp::run_pipeline_faulted_exec(&topo, &cfg, &spec, opts(), NativeExecutor::new())
            .expect("lossless tiled native run completes");
    assert_lossless("native/tile-hash", &clean_nat, &faulted_nat, true, true);
}

/// Mid-run crashes per policy (simulator, where the crash instant is
/// deterministic): the dead copy has consumed-but-unsettled buffers, so
/// totals shift, but the image stays bit-identical and nothing is lost.
#[test]
fn lossless_mid_run_crash_renders_identical_image_per_policy() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(7), vec![hosts[0]], 96);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = spec(&hosts, policy);
        let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
        let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.25);
        let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
        let opts = lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(2)));
        let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts)
            .expect("lossless mid-run crash completes");
        assert_lossless(
            &format!("sim-midrun/{}", policy.label()),
            &clean,
            &faulted,
            false,
            false,
        );
    }
}

/// Mid-run death of a tile-owning merge copy: the survivor rebuilds the
/// dead set's partially composited tiles from redelivered retained
/// fragments, so the assembled image is still bit-identical.
#[test]
fn lossless_mid_run_tile_merge_crash_rebuilds_dead_tiles() {
    let (topo, hosts) = cluster(5);
    let cfg = tiled_fault_cfg(&hosts);
    let spec = tiled_spec(&hosts);
    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.12);
    let plan = FaultPlan::new().crash_host(hosts[3], crash_at);
    let opts = lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(10)));
    let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts)
        .expect("lossless tiled mid-run crash completes");
    assert_lossless("sim-midrun/tile-hash", &clean, &faulted, false, false);
}

/// Randomized acceptance: seeded datasets, any writer policy, either
/// extract host, any crash instant in the first 60% of the run — every
/// combination recovers to `lost == 0` and the exact fault-free image.
/// The `fault-heavy` feature dials the case count up for soak runs.
mod recovery_props {
    use super::*;
    use proptest::prelude::*;

    fn cases() -> u32 {
        if cfg!(feature = "fault-heavy") {
            32
        } else {
            8
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(cases()))]
        #[test]
        fn seeded_crash_plans_recover_lossless(
            policy_idx in 0usize..3,
            victim in 1usize..=2,
            frac in 0.0f64..0.6,
            seed in 1u64..200,
        ) {
            let (topo, hosts) = cluster(5);
            let cfg = test_cfg(test_dataset(seed), vec![hosts[0]], 64);
            let policy = [
                WritePolicy::RoundRobin,
                WritePolicy::WeightedRoundRobin,
                WritePolicy::demand_driven(),
            ][policy_idx];
            let spec = spec(&hosts, policy);
            let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
            let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(frac);
            let plan = FaultPlan::new().crash_host(hosts[victim], crash_at);
            let opts =
                lossless_options(&cfg, FaultOptions::new(plan).liveness_timeout(ms(2)));
            let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, opts)
                .expect("lossless run completes");
            let f = &faulted.report.faults;
            prop_assert_eq!(f.buffers_lost, 0, "lossless loses nothing: {}", f);
            prop_assert_eq!(f.bytes_lost, 0, "{}", f);
            prop_assert!(!f.degraded, "{}", f);
            prop_assert_eq!(
                faulted.image.diff_pixels(&clean.image),
                0,
                "recovered image must match fault-free pixels"
            );
            prop_assert_eq!(recovery_digest(&faulted), recovery_digest(&clean));
        }
    }
}

/// Lossless is an *upgrade*, not a behavior change: an empty fault plan
/// under `Recovery::Lossless` still renders the reference image and
/// reports a quiet fault ledger (retention stamps and settles, but
/// nothing is replayed, redelivered, or suppressed).
#[test]
fn lossless_empty_plan_is_quiet_and_correct() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let spec = spec(&hosts, WritePolicy::demand_driven());
    let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("fault-free run");
    for exec in ["sim", "native"] {
        let opts = lossless_options(&cfg, FaultOptions::new(FaultPlan::new()));
        let r = match exec {
            "sim" => dcapp::run_pipeline_faulted_exec(&topo, &cfg, &spec, opts, SimExecutor::new()),
            _ => dcapp::run_pipeline_faulted_exec(&topo, &cfg, &spec, opts, NativeExecutor::new()),
        }
        .expect("lossless no-fault run");
        let f = &r.report.faults;
        assert_eq!(r.image.diff_pixels(&clean.image), 0, "{exec}");
        assert_eq!(f.buffers_replayed, 0, "{exec}: {f}");
        assert_eq!(f.buffers_redelivered, 0, "{exec}: {f}");
        assert_eq!(f.duplicates_suppressed, 0, "{exec}: {f}");
        assert_eq!(f.retention_evicted, 0, "{exec}: {f}");
        assert_eq!(f.buffers_lost, 0, "{exec}: {f}");
        assert!(!f.degraded, "{exec}: {f}");
    }
}
