//! Out-of-core acceptance suite: a seeded 1/16-of-a-timestep memory
//! budget — tight enough to force real spill traffic through the
//! temp-file ring — must change **when** payloads sit in memory, never
//! **what** the pipeline computes:
//!
//! - bit-identical pixels and per-stream delivery totals on the
//!   virtual-time simulator under RR, WRR, DD, and the tile-hash merge
//!   grouping;
//! - bit-identical pixels on the wall-clock `NativeExecutor` and the
//!   cooperative `TaskedExecutor`;
//! - bit-identical pixels with a seeded mid-run host crash recovered by
//!   `Recovery::Lossless` while the run is actively spilling;
//! - and the shared chunk cache must at least halve the disk-model read
//!   events of a warm re-read.

use std::sync::Arc;

use datacutter::{FaultOptions, NativeExecutor, Placement, TaskedExecutor, WritePolicy};
use dcapp::{
    clone_config, lossless_options, run_pipeline, run_pipeline_exec, run_pipeline_faulted,
    Algorithm, Grouping, PipelineSpec, SharedConfig,
};
use hetsim::{FaultPlan, HostId, SimDuration, SimTime, Topology};
use integration_tests::{cluster, image_digest, stream_totals_digest, test_cfg, test_dataset};

/// `cfg` with an in-flight budget of `1/denom` of one timestep's bytes.
fn budgeted(cfg: &SharedConfig, denom: u64) -> SharedConfig {
    let mut c = clone_config(cfg);
    c.memory_budget_bytes = c.dataset.timestep_bytes() / denom.max(1);
    c.validate().expect("budgeted config validates");
    Arc::new(c)
}

/// The recovery-suite `R–E–Ra–M` shape: data on host 0, extract
/// replicated on hosts 1–2, raster on 3, merge on 4. Chunk payloads
/// queue on the cross-host R→E streams — exactly what a shrinking
/// budget squeezes into the spill ring.
fn four_stage(hosts: &[HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

/// Tile-owned compositing (the `TileHash`-routed merge group) on hosts
/// 2–3, raster on host 1.
fn tiled(hosts: &[HostId]) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: Placement::on_host(hosts[1], 1),
            merge: Placement::one_per_host(&[hosts[2], hosts[3]]),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[4],
    }
}

fn assert_spilled(label: &str, r: &dcapp::PipelineResult) {
    let ooc = r.report.ooc;
    assert!(ooc.spills > 0, "{label}: a 1/16 budget must force spills");
    assert_eq!(
        ooc.spills, ooc.faults,
        "{label}: every spilled buffer re-faults exactly once"
    );
    assert_eq!(ooc.spill_bytes, ooc.fault_bytes, "{label}");
    assert_eq!(
        ooc.resident_bytes(),
        0,
        "{label}: the ledger drains when the run completes \
         (granted {} released {})",
        ooc.granted_bytes,
        ooc.released_bytes
    );
}

/// Simulator identity matrix: RR, WRR, DD, and the tile-hash merge
/// grouping, each unbudgeted vs 1/16-budgeted. Pixels must be
/// bit-identical everywhere; per-stream delivery totals additionally
/// pin under the deterministic policies (RR/WRR). Demand-driven routing
/// reacts to virtual-clock timing, which spill/fault disk time shifts,
/// so DD legitimately redistributes deliveries — but never bits.
#[test]
fn budget_1_16_is_bit_identical_on_sim_all_policies() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let specs: Vec<(&str, bool, PipelineSpec)> = vec![
        ("rr", true, four_stage(&hosts, WritePolicy::RoundRobin)),
        (
            "wrr",
            true,
            four_stage(&hosts, WritePolicy::WeightedRoundRobin),
        ),
        (
            "dd",
            false,
            four_stage(&hosts, WritePolicy::demand_driven()),
        ),
        ("tile-hash", false, tiled(&hosts)),
    ];
    for (label, exact_totals, spec) in &specs {
        let free = run_pipeline(&topo, &cfg, spec).expect("unbudgeted sim run");
        assert_eq!(
            free.report.ooc.spills, 0,
            "{label}: unbudgeted never spills"
        );
        let tight_cfg = budgeted(&cfg, 16);
        let tight = run_pipeline(&topo, &tight_cfg, spec).expect("budgeted sim run");
        assert_spilled(&format!("sim/{label}"), &tight);
        assert_eq!(
            tight.image.diff_pixels(&free.image),
            0,
            "{label}: a memory budget may cost time, never bits"
        );
        if *exact_totals {
            assert_eq!(
                stream_totals_digest(&tight),
                stream_totals_digest(&free),
                "{label}: spilling must not change what any stream delivered"
            );
        }
    }
}

/// Wall-clock identity: the budgeted run on the thread-per-copy and the
/// cooperative executors renders the same pixels as the simulator's
/// unbudgeted reference, with real spill traffic on both.
#[test]
fn budget_1_16_is_bit_identical_on_native_and_tasked() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    for (label, spec) in [
        ("dd", four_stage(&hosts, WritePolicy::demand_driven())),
        ("tile-hash", tiled(&hosts)),
    ] {
        let free = run_pipeline(&topo, &cfg, &spec).expect("unbudgeted sim run");
        let want = image_digest(&free.image);
        let tight_cfg = budgeted(&cfg, 16);
        let native = run_pipeline_exec(&topo, &tight_cfg, &spec, NativeExecutor::new())
            .expect("budgeted native run");
        assert_spilled(&format!("native/{label}"), &native);
        assert_eq!(
            image_digest(&native.image),
            want,
            "native/{label}: budgeted wall-clock pixels diverged"
        );
        let tasked = run_pipeline_exec(&topo, &tight_cfg, &spec, TaskedExecutor::with_workers(2))
            .expect("budgeted tasked run");
        assert_spilled(&format!("tasked/{label}"), &tasked);
        assert_eq!(
            image_digest(&tasked.image),
            want,
            "tasked/{label}: budgeted cooperative pixels diverged"
        );
    }
}

/// Crash-under-spill: a seeded mid-run host crash recovered losslessly
/// while the budget is actively spilling. The retention/replay machinery
/// and the spill ring share the delivery path; neither may cost a pixel
/// or a byte of loss.
#[test]
fn budget_1_16_survives_seeded_mid_run_crash_losslessly() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight_cfg = budgeted(&cfg, 16);
    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
        let spec = four_stage(&hosts, policy);
        let clean = run_pipeline(&topo, &tight_cfg, &spec).expect("budgeted fault-free run");
        assert_spilled(&format!("clean/{}", policy.label()), &clean);
        let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.25);
        let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
        let opts = lossless_options(
            &tight_cfg,
            FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(2)),
        );
        let faulted = run_pipeline_faulted(&topo, &tight_cfg, &spec, opts)
            .expect("budgeted lossless crash run completes");
        let f = &faulted.report.faults;
        assert!(f.copies_killed >= 1, "{}: victim must die", policy.label());
        assert_eq!(
            f.buffers_lost,
            0,
            "{}: lossless loses nothing",
            policy.label()
        );
        assert_eq!(f.bytes_lost, 0, "{}", policy.label());
        assert!(
            faulted.report.ooc.spills > 0,
            "{}: the crash run must still be spilling",
            policy.label()
        );
        assert_eq!(
            faulted.image.diff_pixels(&clean.image),
            0,
            "{}: recovered budgeted image must be bit-identical",
            policy.label()
        );
    }
}

/// Disk-model read events summed over every disk in the cluster.
fn disk_reads(topo: &Topology) -> u64 {
    topo.hosts()
        .iter()
        .flat_map(|h| &h.disks)
        .map(|d| d.reads())
        .sum()
}

/// The warm-cache acceptance bar: a second pass over the same selection
/// through the shared chunk cache must issue at most half the cold
/// pass's disk-model read events (it actually issues zero — every chunk
/// fits — but the bar is the contract).
#[test]
fn warm_cache_at_least_halves_disk_read_events() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let mut c = clone_config(&cfg);
    c.cache_capacity = c.dataset.timestep_bytes();
    let c: SharedConfig = Arc::new(c);
    let spec = four_stage(&hosts, WritePolicy::demand_driven());

    let before = disk_reads(&topo);
    let cold = run_pipeline(&topo, &c, &spec).expect("cold run");
    let cold_reads = disk_reads(&topo) - before;

    let before = disk_reads(&topo);
    let warm = run_pipeline(&topo, &c, &spec).expect("warm run");
    let warm_reads = disk_reads(&topo) - before;

    assert_eq!(warm.image.diff_pixels(&cold.image), 0);
    assert!(cold_reads > 0, "cold run must read from the disk model");
    assert!(
        warm_reads * 2 <= cold_reads,
        "warm cache must at least halve disk read events (cold {cold_reads}, warm {warm_reads})"
    );
    let stats = c.chunk_cache().expect("cache wired").stats();
    assert!(stats.hits > 0, "warm pass must actually hit");
    assert!(stats.resident_bytes <= stats.capacity_bytes);
}
