//! Massive fan-out: the acceptance matrix for the cooperative task
//! substrate. A graph placing thousands of transparent raster copies —
//! 4096 in release builds, scaled down in debug so tier-1 stays fast —
//! completes on the [`datacutter::TaskedExecutor`] and renders digests
//! bit-identical to the simulator and the thread-per-copy native
//! executor, under RR, WRR, DD, and the structural tile-hash policy.
//!
//! The z-buffer algorithm is used throughout because its data plane is
//! *shape-deterministic*: every raster copy ships its whole owned buffer
//! in fixed-size bands at end-of-work regardless of how many batches it
//! happened to win, so the per-stream delivery totals (buffers and
//! bytes) are invariant across substrates and schedules, not just the
//! pixels. (Active-pixel flush boundaries depend on which copy won which
//! batch, so only pixels are comparable there — see `native_executor`.)

use datacutter::{Placement, SimExecutor, TaskedExecutor, WritePolicy};
use dcapp::{
    reference_image, run_pipeline_exec, Algorithm, Grouping, PipelineResult, PipelineSpec,
};
use integration_tests::{cluster, image_digest, stream_totals_digest, test_cfg, test_dataset};

/// Transparent copies of the raster stage per host: 4 hosts × 1024 =
/// 4096 copies in release; debug builds scale to 4 × 64 = 256 so the
/// default `cargo test` tier stays inside its budget. The release CI job
/// (`tasked-executor`) runs the full 4096.
fn per_host() -> u32 {
    if cfg!(debug_assertions) {
        64
    } else {
        1024
    }
}

fn fan_placement(hosts: &[hetsim::HostId]) -> Placement {
    Placement {
        per_host: hosts.iter().map(|&h| (h, per_host())).collect(),
    }
}

fn fan_spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: fan_placement(hosts),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[0],
    }
}

/// Tile-owned compositing with the fan-out on the raster stage and two
/// merge copy sets; the raster→merge stream is structurally tile-hash.
fn tile_spec(hosts: &[hetsim::HostId]) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: fan_placement(hosts),
            merge: Placement::one_per_host(&[hosts[1], hosts[2]]),
        },
        algorithm: Algorithm::ZBuffer,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    }
}

/// Run `spec` on all three substrates and assert the digest contract:
/// pixels match the sequential reference everywhere, and both the image
/// digest and the per-stream delivery-totals digest are identical across
/// sim, native threads, and the task pool.
fn assert_substrate_identity(
    label: &str,
    topo: &hetsim::Topology,
    cfg: &dcapp::SharedConfig,
    spec: &PipelineSpec,
    reference: &isosurf::Image,
) {
    let sim = run_pipeline_exec(topo, cfg, spec, SimExecutor::new())
        .unwrap_or_else(|e| panic!("{label}: sim run failed: {e}"));
    let nat = run_pipeline_exec(topo, cfg, spec, datacutter::NativeExecutor::new())
        .unwrap_or_else(|e| panic!("{label}: native run failed: {e}"));
    let tasked = run_pipeline_exec(topo, cfg, spec, TaskedExecutor::new())
        .unwrap_or_else(|e| panic!("{label}: tasked run failed: {e}"));

    assert_eq!(
        sim.image.diff_pixels(reference),
        0,
        "{label}: sim diverged from reference"
    );
    let digests = |r: &PipelineResult| (image_digest(&r.image), stream_totals_digest(r));
    let (si, st) = digests(&sim);
    let (ni, nt) = digests(&nat);
    let (ti, tt) = digests(&tasked);
    assert_eq!(si, ni, "{label}: native image digest diverged from sim");
    assert_eq!(si, ti, "{label}: tasked image digest diverged from sim");
    assert_eq!(st, nt, "{label}: native stream totals diverged from sim");
    assert_eq!(st, tt, "{label}: tasked stream totals diverged from sim");
    // Wall-clock substrates report no virtual engine events.
    assert_eq!(nat.report.events, 0, "{label}");
    assert_eq!(tasked.report.events, 0, "{label}");
}

/// RR, WRR, and DD over the full fan-out: thousands of raster copies on
/// every substrate, digest-identical.
#[test]
fn fanout_digest_identity_rr_wrr_dd() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 64);
    let reference = reference_image(&cfg);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = fan_spec(&hosts, policy);
        let label = format!("fanout/{}x{}/{}", hosts.len(), per_host(), policy.label());
        assert_substrate_identity(&label, &topo, &cfg, &spec, &reference);
    }
}

/// The tile-hash structural policy over the same fan-out: every raster
/// copy cuts its bands at tile boundaries and routes fragments by tile
/// ownership; the composited image and delivery totals stay invariant.
#[test]
fn fanout_digest_identity_tile_hash() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 64);
    let reference = reference_image(&cfg);
    let spec = tile_spec(&hosts);
    let label = format!("fanout/{}x{}/tile-hash", hosts.len(), per_host());
    assert_substrate_identity(&label, &topo, &cfg, &spec, &reference);
}

/// The `max_task_copies` knob actually sees the fan-out: the full graph
/// is rejected by a cap one short of its copy count and admitted by a
/// generous one.
#[test]
fn fanout_respects_task_cap() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 64);
    let spec = fan_spec(&hosts, WritePolicy::RoundRobin);
    // RE copies (one per storage host) + raster fan-out + merge.
    let copies = hosts.len() + hosts.len() * per_host() as usize + 1;
    let short = TaskedExecutor::new().max_tasks(copies - 1);
    match run_pipeline_exec(&topo, &cfg, &spec, short) {
        Err(datacutter::RunError::Unsupported { what }) => {
            assert!(what.contains("max_task_copies"), "got: {what}");
        }
        Err(other) => panic!("expected structured cap rejection, got {other:?}"),
        Ok(_) => panic!("expected structured cap rejection, run was admitted"),
    }
    let roomy = TaskedExecutor::new().max_tasks(copies + 64);
    let r = run_pipeline_exec(&topo, &cfg, &spec, roomy).expect("admitted run completes");
    assert_eq!(r.image.diff_pixels(&reference_image(&cfg)), 0);
}
