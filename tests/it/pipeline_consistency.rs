//! The paper's central consistency requirement: "the final output is
//! consistent regardless of how many copies of various filters are
//! instantiated at other pipeline stages." Every grouping, policy,
//! algorithm, and copy count must produce the exact reference image.

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use integration_tests::{cluster, test_cfg, test_dataset};

fn all_groupings(hosts: &[hetsim::HostId]) -> Vec<Grouping> {
    vec![
        Grouping::RERaM,
        Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        Grouping::REraSplit {
            era: Placement::one_per_host(hosts),
        },
    ]
}

#[test]
fn every_grouping_policy_algorithm_matches_reference() {
    let (topo, hosts) = cluster(3);
    let cfg = test_cfg(test_dataset(1), hosts.clone(), 96);
    let reference = dcapp::reference_image(&cfg);
    for grouping in all_groupings(&hosts) {
        for policy in [
            WritePolicy::RoundRobin,
            WritePolicy::WeightedRoundRobin,
            WritePolicy::demand_driven(),
        ] {
            for algorithm in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
                let spec = PipelineSpec {
                    grouping: grouping.clone(),
                    algorithm,
                    policy,
                    merge_host: hosts[0],
                };
                let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
                assert_eq!(
                    r.image.diff_pixels(&reference),
                    0,
                    "{} {} {}",
                    spec.grouping.label(),
                    policy.label(),
                    algorithm.label()
                );
            }
        }
    }
}

#[test]
fn copy_count_does_not_change_output() {
    let (topo, hosts) = cluster(2);
    let cfg = test_cfg(test_dataset(2), hosts.clone(), 96);
    let reference = dcapp::reference_image(&cfg);
    for copies in 1..=4u32 {
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement {
                    per_host: hosts.iter().map(|&h| (h, copies)).collect(),
                },
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[1],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
        assert_eq!(r.image.diff_pixels(&reference), 0, "copies = {copies}");
    }
}

#[test]
fn buffer_sizing_does_not_change_output() {
    let (topo, hosts) = cluster(2);
    let base = test_cfg(test_dataset(3), hosts.clone(), 96);
    let reference = dcapp::reference_image(&base);
    for (tri_batch, wpa) in [(16usize, 32usize), (64, 64), (4096, 8192)] {
        let mut c = dcapp::clone_config(&base);
        c.tri_batch = tri_batch;
        c.wpa_capacity = wpa;
        let cfg = std::sync::Arc::new(c);
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[0],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
        assert_eq!(
            r.image.diff_pixels(&reference),
            0,
            "tri_batch={tri_batch} wpa={wpa}"
        );
    }
}

#[test]
fn band_sizing_does_not_change_output() {
    let (topo, hosts) = cluster(2);
    let base = test_cfg(test_dataset(4), hosts.clone(), 96);
    let reference = dcapp::reference_image(&base);
    for band_bytes in [1024u64, 32 * 1024, 1 << 22] {
        let mut c = dcapp::clone_config(&base);
        c.zb_band_bytes = band_bytes;
        let cfg = std::sync::Arc::new(c);
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            algorithm: Algorithm::ZBuffer,
            policy: WritePolicy::RoundRobin,
            merge_host: hosts[0],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
        assert_eq!(
            r.image.diff_pixels(&reference),
            0,
            "band_bytes={band_bytes}"
        );
    }
}

#[test]
fn species_and_timesteps_render_consistently() {
    let (topo, hosts) = cluster(2);
    for species in 0..volume::SPECIES_COUNT {
        let base = test_cfg(test_dataset(5), hosts.clone(), 64);
        let mut c = dcapp::clone_config(&base);
        c.species = species;
        c.timestep = (species * 2) % volume::TIMESTEPS;
        c.material = isosurf::species_material(species);
        let cfg = std::sync::Arc::new(c);
        let spec = PipelineSpec {
            grouping: Grouping::RERaM,
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::RoundRobin,
            merge_host: hosts[0],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run");
        assert_eq!(
            r.image.diff_pixels(&dcapp::reference_image(&cfg)),
            0,
            "species {species}"
        );
    }
}
