//! The wall-clock [`datacutter::NativeExecutor`] against the virtual-time
//! simulator: the same application graph, run on real OS threads, must
//! produce bit-identical rendered images under every writer policy. The
//! demand-driven window protocol is substrate-independent (credit
//! accounting is pure message counting), so even DD runs converge to the
//! same pixels — only timing and metrics semantics differ.

use std::sync::Arc;

use datacutter::{
    DataBuffer, FaultOptions, Filter, FilterCtx, FilterError, GraphBuilder, NativeExecutor,
    Placement, Run, RunError, SimExecutor, WritePolicy,
};
use dcapp::{reference_image, run_pipeline_exec, Algorithm, Grouping, PipelineSpec};
use hetsim::{FaultPlan, SimDuration, SimTime};
use integration_tests::{cluster, test_cfg, test_dataset};
use parking_lot::Mutex;

fn spec(hosts: &[hetsim::HostId], policy: WritePolicy, alg: Algorithm) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        algorithm: alg,
        policy,
        merge_host: hosts[0],
    }
}

/// The tentpole equivalence property: for each writer policy and both
/// rendering algorithms, the isosurface pipeline renders the exact same
/// image on the simulator and on native threads, and both match the
/// sequential reference.
#[test]
fn sim_and_native_render_identical_images_all_policies() {
    let (topo, hosts) = cluster(3);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let reference = reference_image(&cfg);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let s = spec(&hosts, policy, alg);
            let sim = run_pipeline_exec(&topo, &cfg, &s, SimExecutor::new()).unwrap();
            let nat = run_pipeline_exec(&topo, &cfg, &s, NativeExecutor::new()).unwrap();
            assert_eq!(
                sim.image.diff_pixels(&reference),
                0,
                "sim image diverged from reference ({} {alg:?})",
                policy.label()
            );
            assert_eq!(
                nat.image.diff_pixels(&reference),
                0,
                "native image diverged from reference ({} {alg:?})",
                policy.label()
            );
            assert_eq!(
                nat.image.diff_pixels(&sim.image),
                0,
                "native vs sim pixels differ ({} {alg:?})",
                policy.label()
            );
            // Native runs report wall-clock elapsed and no virtual events.
            assert_eq!(nat.report.events, 0);
            assert!(sim.report.events > 0);
        }
    }
}

/// Native stress: 8+ transparent raster copies hammering real bounded
/// channels and the DD condvar path concurrently, with delivery
/// completeness checked against the reference image.
#[test]
fn native_stress_many_copies() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(13), hosts.clone(), 96);
    let reference = reference_image(&cfg);
    // 4 hosts x 2 copies = 8 raster copies.
    let s = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement {
                per_host: hosts.iter().map(|&h| (h, 2)).collect(),
            },
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };
    for round in 0..3 {
        let r = run_pipeline_exec(&topo, &cfg, &s, NativeExecutor::new()).unwrap();
        assert_eq!(
            r.image.diff_pixels(&reference),
            0,
            "stress round {round} diverged"
        );
    }
}

/// Multi-UOW cycles (global barrier between units of work) on native
/// threads: every cycle's data stays within its cycle.
#[test]
fn native_multi_uow_barrier_cycles() {
    let (topo, hosts) = cluster(2);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    struct UowSrc;
    impl Filter for UowSrc {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..8u32 {
                ctx.write(0, DataBuffer::new(ctx.uow() * 100 + i, 64));
            }
            Ok(())
        }
    }
    struct Gather {
        out: Arc<Mutex<Vec<u32>>>,
    }
    impl Filter for Gather {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                self.out.lock().push(b.downcast::<u32>());
            }
            Ok(())
        }
    }
    let mut g = GraphBuilder::new();
    let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| UowSrc);
    let out2 = out.clone();
    let k = g.add_filter("snk", Placement::on_host(hosts[1], 2), move |_| Gather {
        out: out2.clone(),
    });
    g.connect(s, k, WritePolicy::demand_driven());
    let report = Run::new(g.build())
        .uows(3)
        .executor(NativeExecutor::new())
        .go(&topo)
        .unwrap();
    let mut v = out.lock().clone();
    v.sort_unstable();
    let mut want: Vec<u32> = (0..3u32)
        .flat_map(|u| (0..8u32).map(move |i| u * 100 + i))
        .collect();
    want.sort_unstable();
    assert_eq!(v, want);
    // Two inter-UOW barrier boundaries on the wall clock.
    assert_eq!(report.uow_boundaries.len(), 2);
    assert!(report.uow_boundaries[0] <= report.uow_boundaries[1]);
}

/// A failing filter on the native executor surfaces the same structured
/// error a simulated run would.
#[test]
fn native_filter_error_is_structured() {
    let (topo, hosts) = cluster(1);
    struct Bad;
    impl Filter for Bad {
        fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
            Err(FilterError("native boom".into()))
        }
    }
    let mut g = GraphBuilder::new();
    g.add_filter("bad", Placement::on_host(hosts[0], 1), |_| Bad);
    match Run::new(g.build())
        .executor(NativeExecutor::new())
        .go(&topo)
    {
        Err(RunError::Filter {
            filter, message, ..
        }) => {
            assert_eq!(filter, "bad");
            assert!(message.contains("native boom"));
        }
        other => panic!("expected structured filter error, got {other:?}"),
    }
}

/// NIC-degradation plans are accepted on the native executor (emulated as
/// sender-side stalls sized from the topology's path cost — see
/// `it/faults.rs` for a scenario with actual traffic), while setup hooks,
/// which need the simulation object itself, are still rejected up front
/// with a structured error rather than silently ignored.
#[test]
fn native_accepts_degrades_rejects_setup() {
    let (topo, hosts) = cluster(2);
    let mk = || {
        let mut g = GraphBuilder::new();
        struct Quiet;
        impl Filter for Quiet {
            fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
                Ok(())
            }
        }
        g.add_filter("quiet", Placement::on_host(hosts[0], 1), |_| Quiet);
        g.build()
    };
    let plan = FaultPlan::new().degrade_nic(
        hosts[1],
        SimTime::ZERO + SimDuration::from_millis(1),
        SimDuration::from_millis(1),
        0.5,
    );
    let report = Run::new(mk())
        .executor(NativeExecutor::new())
        .faults(FaultOptions::new(plan))
        .go(&topo)
        .expect("degrade plans run natively via sender-side stall emulation");
    // The quiet filter sends nothing cross-host, so nothing is delayed —
    // the point is that the plan is accepted and the run completes.
    assert_eq!(report.faults.messages_delayed, 0);
    match Run::new(mk())
        .executor(NativeExecutor::new())
        .setup(|_sim| {})
        .go(&topo)
    {
        Err(RunError::Unsupported { what }) => assert!(what.contains("setup")),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
