//! Pinned bit-identity of the simulated data plane on the fig5
//! heterogeneous configuration (half Rogue under background load, half
//! Blue dedicated): rendered pixels and the full metrics surface
//! (virtual times, event counts, per-copy byte/buffer meters, per-stream
//! copy-set counters, fault tallies) are hashed and compared against
//! digests captured **before** the slab event queue / direct-handoff
//! engine rewrite. Any divergence means a fast-path change altered
//! observable behavior — the one thing the data-plane optimizations are
//! not allowed to do.
//!
//! To recapture after an intentional behavior change:
//! `cargo test -q -p integration-tests --test dataplane_identity -- --ignored --nocapture`

use datacutter::{FaultOptions, WritePolicy};
use dcapp::{
    reference_image, run_pipeline, run_pipeline_faulted, Algorithm, Grouping, PipelineResult,
    PipelineSpec,
};
use hetsim::presets::rogue_blue_mix;
use hetsim::{FaultPlan, HostId, SimDuration, SimTime, Topology};
use integration_tests::{image_digest, metrics_digest, test_cfg, test_dataset};

/// The fig5 heterogeneous setting, scaled for tests: 2 loaded Rogue + 2
/// dedicated Blue hosts, raster everywhere, merge on Blue.
fn fig5_setting() -> (Topology, Vec<HostId>, Vec<HostId>) {
    let (topo, rogues, blues) = rogue_blue_mix(2);
    for &h in &rogues {
        topo.host(h).cpu.set_bg_jobs(4);
    }
    (topo, rogues, blues)
}

fn fig5_spec(hosts: &[HostId], policy: WritePolicy, merge: HostId) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: datacutter::Placement::one_per_host(hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy,
        merge_host: merge,
    }
}

fn run_policy(policy: WritePolicy) -> PipelineResult {
    let (topo, rogues, blues) = fig5_setting();
    let mut hosts = rogues.clone();
    hosts.extend(&blues);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = fig5_spec(&hosts, policy, blues[0]);
    run_pipeline(&topo, &cfg, &s).expect("fig5 run failed")
}

fn run_faulted() -> PipelineResult {
    let (topo, rogues, blues) = fig5_setting();
    let mut hosts = rogues.clone();
    hosts.extend(&blues);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    let s = fig5_spec(&hosts, WritePolicy::demand_driven(), blues[0]);
    let plan = FaultPlan::new().crash_host(rogues[1], SimTime::ZERO + SimDuration::from_millis(40));
    let opts = FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(10));
    run_pipeline_faulted(&topo, &cfg, &s, opts).expect("faulted fig5 run failed")
}

/// `(label, image digest, metrics digest)` captured on the pre-fast-path
/// tree (commit 660d12e). The engine/delivery optimizations must
/// reproduce these bit-for-bit.
const PINNED: &[(&str, u64, u64)] = &[
    ("rr", 0xa7ef3c36edc7d9b7, 0xfcff32924e0355fb),
    ("wrr", 0xa7ef3c36edc7d9b7, 0xfcff32924e0355fb),
    ("dd", 0xa7ef3c36edc7d9b7, 0x5896bb8b82819e0c),
    ("dd_fault", 0xaca36968a69f3fc3, 0x64897d458ae7a6b7),
];

fn pinned(label: &str) -> (u64, u64) {
    let (_, i, m) = PINNED
        .iter()
        .find(|(l, _, _)| *l == label)
        .expect("unknown pin label");
    (*i, *m)
}

fn check(label: &str, r: &PipelineResult) {
    let (want_img, want_met) = pinned(label);
    assert_eq!(
        image_digest(&r.image),
        want_img,
        "{label}: pixels diverged from the pinned pre-fast-path run"
    );
    assert_eq!(
        metrics_digest(r),
        want_met,
        "{label}: metrics diverged from the pinned pre-fast-path run"
    );
}

#[test]
fn round_robin_matches_pinned_digests() {
    let r = run_policy(WritePolicy::RoundRobin);
    check("rr", &r);
}

#[test]
fn weighted_round_robin_matches_pinned_digests() {
    let r = run_policy(WritePolicy::WeightedRoundRobin);
    check("wrr", &r);
}

#[test]
fn demand_driven_matches_pinned_digests() {
    // DD additionally matches the sequential reference (sanity that the
    // pinned digest pins a *correct* image, not a stable wrong one).
    let r = run_policy(WritePolicy::demand_driven());
    let (topo, rogues, blues) = fig5_setting();
    let _ = topo;
    let mut hosts = rogues;
    hosts.extend(&blues);
    let cfg = test_cfg(test_dataset(7), hosts, 96);
    assert_eq!(r.image.diff_pixels(&reference_image(&cfg)), 0);
    check("dd", &r);
}

#[test]
fn demand_driven_fault_run_matches_pinned_digests() {
    let r = run_faulted();
    assert!(
        r.report.faults.copies_killed > 0,
        "the fault plan must actually kill copies"
    );
    check("dd_fault", &r);
}

/// Directed check for the parking seam: the thread-parking
/// implementation behind the wall-clock executors (condvar-backed
/// `ParkSite::Thread`) must leave the rendered pixels byte-identical to
/// the digests pinned before the Park/Unpark abstraction existed.
/// Background-load setup is simulator-only (it shapes the virtual clock,
/// never the pixels), so the wall-clock runs compare against the pinned
/// *image* digests; the metrics digests — including the virtual
/// timeline — are covered by the sim tests above, which exercise the
/// same refactored channel/barrier/credit code paths.
#[test]
fn thread_parking_native_runs_match_pinned_image_digests() {
    let (topo, rogues, blues) = fig5_setting();
    let mut hosts = rogues.clone();
    hosts.extend(&blues);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    for (label, policy) in [
        ("rr", WritePolicy::RoundRobin),
        ("wrr", WritePolicy::WeightedRoundRobin),
        ("dd", WritePolicy::demand_driven()),
    ] {
        let s = fig5_spec(&hosts, policy, blues[0]);
        let r = dcapp::run_pipeline_exec(&topo, &cfg, &s, datacutter::NativeExecutor::new())
            .expect("fig5 native run failed");
        let (want_img, _) = pinned(label);
        assert_eq!(
            image_digest(&r.image),
            want_img,
            "{label}: thread-parking native pixels diverged from the pinned digest"
        );
    }
}

/// The same pin for the waker-parking implementation (`ParkSite::Tasked`
/// under a two-worker admission pool): oversubscribed cooperative
/// scheduling must not perturb a single pixel.
#[test]
fn waker_parking_tasked_runs_match_pinned_image_digests() {
    let (topo, rogues, blues) = fig5_setting();
    let mut hosts = rogues.clone();
    hosts.extend(&blues);
    let cfg = test_cfg(test_dataset(7), hosts.clone(), 96);
    for (label, policy) in [
        ("rr", WritePolicy::RoundRobin),
        ("wrr", WritePolicy::WeightedRoundRobin),
        ("dd", WritePolicy::demand_driven()),
    ] {
        let s = fig5_spec(&hosts, policy, blues[0]);
        let r =
            dcapp::run_pipeline_exec(&topo, &cfg, &s, datacutter::TaskedExecutor::with_workers(2))
                .expect("fig5 tasked run failed");
        let (want_img, _) = pinned(label);
        assert_eq!(
            image_digest(&r.image),
            want_img,
            "{label}: waker-parking tasked pixels diverged from the pinned digest"
        );
    }
}

/// Recapture helper: prints the digest table to paste into [`PINNED`].
#[test]
#[ignore = "manual recapture helper"]
fn print_digests() {
    let rows: Vec<(&str, PipelineResult)> = vec![
        ("rr", run_policy(WritePolicy::RoundRobin)),
        ("wrr", run_policy(WritePolicy::WeightedRoundRobin)),
        ("dd", run_policy(WritePolicy::demand_driven())),
        ("dd_fault", run_faulted()),
    ];
    for (label, r) in &rows {
        println!(
            "    (\"{label}\", {:#018x}, {:#018x}),",
            image_digest(&r.image),
            metrics_digest(r)
        );
    }
}
