//! The [`datacutter::Run`] builder: option composition the former
//! `run_app_*` free functions could not express (trace + faults + setup in
//! one run), the promoted tuning knobs, and equivalence of the deprecated
//! compatibility wrappers.

use std::sync::Arc;

use datacutter::{
    DataBuffer, FaultOptions, Filter, FilterCtx, FilterError, GraphBuilder, Placement, Run,
    WritePolicy, DEFAULT_COURIER_CAPACITY,
};
use hetsim::{spawn_load_generator, FaultPlan, LoadProfile, SimDuration, SimTime, Topology, Trace};
use integration_tests::cluster;
use parking_lot::Mutex;

struct Src {
    n: u32,
}
impl Filter for Src {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            ctx.compute(SimDuration::from_millis(2));
            ctx.write(0, DataBuffer::new(i, 1024));
        }
        Ok(())
    }
}

struct Work;
impl Filter for Work {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            let v = b.downcast::<u32>();
            ctx.compute(SimDuration::from_millis(6));
            ctx.write(0, DataBuffer::new(v, 1024));
        }
        Ok(())
    }
}

struct Snk {
    out: Arc<Mutex<Vec<u32>>>,
}
impl Filter for Snk {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            self.out.lock().push(b.downcast::<u32>());
        }
        Ok(())
    }
}

fn workload(
    topo: &Topology,
    hosts: &[hetsim::HostId],
    n: u32,
) -> (datacutter::AppGraph, Arc<Mutex<Vec<u32>>>) {
    let _ = topo;
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let s = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Src { n });
    let w = g.add_filter(
        "work",
        Placement::one_per_host(&[hosts[1], hosts[2]]),
        |_| Work,
    );
    let out2 = out.clone();
    let k = g.add_filter("snk", Placement::on_host(hosts[0], 1), move |_| Snk {
        out: out2.clone(),
    });
    g.connect(s, w, WritePolicy::demand_driven());
    g.connect(w, k, WritePolicy::RoundRobin);
    (g.build(), out)
}

/// Regression for the entry-point drift the former free functions forced:
/// one run combining a trace, an injected host crash, AND a custom setup
/// hook (a mid-run CPU storm) — a combination `run_app_traced` /
/// `run_app_faulted` / `run_app_with` could only offer one at a time.
#[test]
fn trace_faults_and_setup_combine_in_one_run() {
    let (topo, hosts) = cluster(3);
    let (graph, out) = workload(&topo, &hosts, 40);
    let trace = Trace::new();
    let crash_at = SimTime::ZERO + SimDuration::from_millis(40);
    let plan = FaultPlan::new().crash_host(hosts[2], crash_at);
    let storm_cpu = topo.host(hosts[1]).cpu.clone();
    let report = Run::new(graph)
        .trace(trace.clone())
        .faults(FaultOptions::new(plan))
        .setup(move |sim| {
            let profile = LoadProfile {
                steps: vec![
                    (SimDuration::from_millis(20), 0),
                    (SimDuration::from_millis(100), 8),
                ],
            };
            spawn_load_generator(sim, "storm", storm_cpu, profile);
        })
        .go(&topo)
        .unwrap();
    // The crash happened and was recovered (DD replay loses nothing).
    let f = &report.faults;
    assert!(!f.injected.is_empty());
    assert!(f.copies_killed >= 1, "{f:?}");
    assert_eq!(f.buffers_lost, 0, "{f:?}");
    // Every item was still delivered exactly once.
    let mut v = out.lock().clone();
    v.sort_unstable();
    assert_eq!(v, (0..40).collect::<Vec<u32>>());
    // And the trace saw the copies working.
    let busy = trace.busy_by_label();
    let labels: Vec<&str> = busy.iter().map(|(l, _)| l.as_str()).collect();
    assert!(labels.contains(&"compute"), "{labels:?}");
    assert!(labels.contains(&"read-wait"), "{labels:?}");
}

/// The courier queue bound (formerly a silent `1 << 16`) is behaviourally
/// inert: DD windows cap outstanding acks far below the default bound, so
/// tightening or widening it leaves the run bit-identical.
#[test]
fn courier_capacity_default_is_behaviour_neutral() {
    let run = |cap: usize| {
        let (topo, hosts) = cluster(3);
        let (graph, _out) = workload(&topo, &hosts, 30);
        Run::new(graph).courier_capacity(cap).go(&topo).unwrap()
    };
    let tight = run(DEFAULT_COURIER_CAPACITY);
    let wide = run(1 << 16);
    assert_eq!(tight.elapsed, wide.elapsed);
    assert_eq!(tight.events, wide.events);
}

/// A larger outbox deepens the compute/transfer overlap; the run must
/// still deliver everything and never run slower.
#[test]
fn outbox_capacity_is_tunable() {
    let run = |cap: usize| {
        let (topo, hosts) = cluster(3);
        let (graph, out) = workload(&topo, &hosts, 30);
        let report = Run::new(graph).outbox_capacity(cap).go(&topo).unwrap();
        let delivered = out.lock().len();
        (report, delivered)
    };
    let (small, n_small) = run(1);
    let (big, n_big) = run(8);
    assert_eq!(n_small, 30);
    assert_eq!(n_big, 30);
    assert!(big.elapsed <= small.elapsed);
}

/// The deprecated free functions are thin wrappers over the builder:
/// virtual-time determinism makes the equivalence exact.
#[test]
#[allow(deprecated)]
fn deprecated_wrappers_match_builder() {
    let run_builder = || {
        let (topo, hosts) = cluster(3);
        let (graph, _) = workload(&topo, &hosts, 25);
        Run::new(graph).uows(2).go(&topo).unwrap()
    };
    let run_wrapper = || {
        let (topo, hosts) = cluster(3);
        let (graph, _) = workload(&topo, &hosts, 25);
        datacutter::run_app_uows(&topo, graph, 2).unwrap()
    };
    let a = run_builder();
    let b = run_wrapper();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.events, b.events);
    assert_eq!(a.uow_boundaries, b.uow_boundaries);
}
