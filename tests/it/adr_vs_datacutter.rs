//! ADR baseline vs the component framework: identical output, and the
//! relative performance behaviours Figures 4–5 rest on.

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use integration_tests::{cluster, test_cfg, test_dataset};

fn dc_spec(hosts: &[hetsim::HostId], alg: Algorithm) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        algorithm: alg,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    }
}

#[test]
fn adr_and_datacutter_render_identical_images() {
    for nodes in [1usize, 2, 3, 4] {
        let (topo, hosts) = cluster(nodes);
        let cfg = test_cfg(test_dataset(20), hosts.clone(), 96);
        let a = adr::run_adr(&topo, &cfg).unwrap();
        let d = dcapp::run_pipeline(&topo, &cfg, &dc_spec(&hosts, Algorithm::ActivePixel)).unwrap();
        assert_eq!(a.image.diff_pixels(&d.image), 0, "{nodes} nodes");
    }
}

#[test]
fn adr_tree_merge_handles_odd_node_counts() {
    for nodes in [3usize, 5, 6, 7] {
        let (topo, hosts) = cluster(nodes);
        let cfg = test_cfg(test_dataset(21), hosts.clone(), 64);
        let a = adr::run_adr(&topo, &cfg).unwrap();
        assert_eq!(
            a.image.diff_pixels(&dcapp::reference_image(&cfg)),
            0,
            "{nodes} nodes"
        );
        let total: u64 = a.nodes.iter().map(|n| n.chunks).sum();
        assert_eq!(total, 36);
    }
}

#[test]
fn datacutter_degrades_less_than_adr_under_load() {
    // The Figure 5 core claim, as an invariant at test scale.
    let run = |bg: u32| {
        let (topo, hosts) = cluster(4);
        for &h in &hosts[..2] {
            topo.host(h).cpu.set_bg_jobs(bg);
        }
        let cfg = test_cfg(test_dataset(22), hosts.clone(), 256);
        let a = adr::run_adr(&topo, &cfg).unwrap().elapsed.as_secs_f64();
        let d = dcapp::run_pipeline(&topo, &cfg, &dc_spec(&hosts, Algorithm::ActivePixel))
            .unwrap()
            .elapsed
            .as_secs_f64();
        (a, d)
    };
    let (a0, d0) = run(0);
    let (a8, d8) = run(8);
    let adr_blowup = a8 / a0;
    let dc_blowup = d8 / d0;
    assert!(
        adr_blowup > dc_blowup,
        "ADR should degrade more: ADR {adr_blowup:.2}x vs DC {dc_blowup:.2}x"
    );
}

#[test]
fn zbuffer_pipeline_stalls_more_than_active_pixel() {
    // The synchronization point of the z-buffer algorithm shows up as a
    // longer runtime when merge bandwidth matters (several nodes, large
    // image).
    let (topo, hosts) = cluster(6);
    let cfg = test_cfg(test_dataset(23), hosts.clone(), 512);
    let zb = dcapp::run_pipeline(&topo, &cfg, &dc_spec(&hosts, Algorithm::ZBuffer)).unwrap();
    let ap = dcapp::run_pipeline(&topo, &cfg, &dc_spec(&hosts, Algorithm::ActivePixel)).unwrap();
    assert!(
        ap.elapsed < zb.elapsed,
        "AP ({}) should beat ZB ({}) at 6 nodes / 512²",
        ap.elapsed,
        zb.elapsed
    );
    // And it moves less data into the merge filter.
    let zb_bytes = zb.report.stream(zb.to_merge).total_bytes();
    let ap_bytes = ap.report.stream(ap.to_merge).total_bytes();
    assert!(
        ap_bytes < zb_bytes,
        "AP merge bytes {ap_bytes} vs ZB {zb_bytes}"
    );
}

#[test]
fn adr_overlap_beats_serial_read_single_node() {
    // ADR's asynchronous I/O hides disk time behind compute; the fused
    // RERa-M single node pays them serially. Same node count, same work.
    let (topo, hosts) = cluster(1);
    let cfg = test_cfg(test_dataset(24), hosts.clone(), 256);
    let a = adr::run_adr(&topo, &cfg).unwrap();
    let spec = PipelineSpec {
        grouping: Grouping::RERaM,
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::RoundRobin,
        merge_host: hosts[0],
    };
    let d = dcapp::run_pipeline(&topo, &cfg, &spec).unwrap();
    assert!(
        a.elapsed <= d.elapsed,
        "ADR ({}) should not lose to serial RERa-M ({}) on one node",
        a.elapsed,
        d.elapsed
    );
}
