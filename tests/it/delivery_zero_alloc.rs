//! Proof that the *simulated delivery path* reaches a zero-allocation
//! steady state: once the run's `BufferSlab`, channel queues, and engine
//! event slab are warm, each additional buffer carried producer → outbox →
//! sender → stream queue → consumer performs no heap allocation at all.
//!
//! Methodology: two runs of an identical two-filter pipeline that differ
//! **only** in how many buffers the producer emits (200 vs 2000). Every
//! structural allocation — topology, threads, channels, warm-up of the
//! recycling pools — is the same in both, so the difference in global
//! allocation counts divided by the 1800 extra buffers is the steady-state
//! allocations-per-delivered-buffer. The test asserts it rounds to zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datacutter::{Filter, FilterCtx, FilterError, GraphBuilder, Placement, Run, WritePolicy};
use hetsim::{ClusterSpec, HostId, HostSpec, SimDuration, TopologyBuilder};
use parking_lot::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn topology_n(n: usize) -> (hetsim::Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 100.0e6,
        nic_latency: SimDuration::from_micros(50),
    });
    let hosts = (0..n)
        .map(|i| {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1,
                    speed: 1.0,
                    mem_mb: 256,
                    disks: 1,
                    disk_bandwidth_bps: 50.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            )
        })
        .collect();
    (b.build(), hosts)
}

fn topology() -> (hetsim::Topology, Vec<HostId>) {
    topology_n(2)
}

struct Src {
    n: u32,
}
impl Filter for Src {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            let b = ctx.buffer_slab().make(i as u64, 128);
            ctx.write(0, b);
        }
        Ok(())
    }
}

struct Sink {
    sum: Arc<Mutex<u64>>,
}
impl Filter for Sink {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let mut local = 0u64;
        while let Some(b) = ctx.read(0) {
            local = local.wrapping_add(ctx.buffer_slab().recycle::<u64>(b));
        }
        *self.sum.lock() = local;
        Ok(())
    }
}

/// Run the two-filter pipeline delivering `n` buffers; returns the global
/// allocation count consumed by the whole run and the payload checksum
/// (proof the buffers actually flowed).
fn run_once(policy: WritePolicy, n: u32) -> (u64, u64) {
    let (topo, hosts) = topology();
    let sum: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let sum2 = sum.clone();
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| Src { n });
    let sink = g.add_filter("sink", Placement::on_host(hosts[1], 1), move |_| Sink {
        sum: sum2.clone(),
    });
    g.connect(src, sink, policy);
    let before = ALLOCS.load(Ordering::Relaxed);
    Run::new(g.build()).go(&topo).expect("pipeline run failed");
    let after = ALLOCS.load(Ordering::Relaxed);
    let got = *sum.lock();
    (after - before, got)
}

fn expected_sum(n: u32) -> u64 {
    (0..n as u64).sum()
}

fn assert_zero_marginal_allocs(policy: WritePolicy) {
    const SMALL: u32 = 200;
    const LARGE: u32 = 2000;
    // Throwaway run to warm lazy statics, thread-spawn machinery, and the
    // allocator itself, so the two measured runs are structurally identical.
    let _ = run_once(policy, SMALL);

    let (small_allocs, small_sum) = run_once(policy, SMALL);
    let (large_allocs, large_sum) = run_once(policy, LARGE);
    assert_eq!(small_sum, expected_sum(SMALL));
    assert_eq!(large_sum, expected_sum(LARGE));

    let extra_buffers = (LARGE - SMALL) as i64;
    let delta = large_allocs as i64 - small_allocs as i64;
    // Zero steady-state allocations per delivered buffer: the 1800 extra
    // buffers may not add more than a sliver of amortized container growth
    // (well under 2% of one allocation per buffer, and far from 1:1).
    assert!(
        delta <= extra_buffers / 64,
        "{}: {} extra allocations for {} extra delivered buffers \
         ({} vs {} total) — delivery path is allocating per buffer",
        policy.label(),
        delta,
        extra_buffers,
        large_allocs,
        small_allocs,
    );
}

#[test]
fn round_robin_delivery_steady_state_is_allocation_free() {
    assert_zero_marginal_allocs(WritePolicy::RoundRobin);
}

#[test]
fn demand_driven_delivery_steady_state_is_allocation_free() {
    assert_zero_marginal_allocs(WritePolicy::demand_driven());
}

// ---- lossless retention ----------------------------------------------------

/// Source emitting *replicable* buffers, as the application filters do —
/// the shape retention can stamp and retain.
struct ReplicableSrc {
    n: u32,
}
impl Filter for ReplicableSrc {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            let b = ctx.buffer_slab().make_replicable(i as u64, 128);
            ctx.write(0, b);
        }
        Ok(())
    }
}

/// [`run_once`] with `Recovery::Lossless` and a bounded retention ring:
/// every buffer is stamped with a provenance, a replica is cloned into
/// the ring, the consumer claims the sequence number and journals it,
/// and ring overflow evicts the oldest replica back into the slab pool.
fn run_once_lossless(policy: WritePolicy, n: u32) -> (u64, u64) {
    use datacutter::FaultOptions;
    use hetsim::FaultPlan;
    let (topo, hosts) = topology();
    let sum: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let sum2 = sum.clone();
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| {
        ReplicableSrc { n }
    });
    let sink = g.add_filter("sink", Placement::on_host(hosts[1], 1), move |_| Sink {
        sum: sum2.clone(),
    });
    g.connect(src, sink, policy);
    let before = ALLOCS.load(Ordering::Relaxed);
    Run::new(g.build())
        .faults(
            FaultOptions::new(FaultPlan::new())
                .lossless()
                .retention_depth(64),
        )
        .go(&topo)
        .expect("lossless pipeline run failed");
    let after = ALLOCS.load(Ordering::Relaxed);
    let got = *sum.lock();
    (after - before, got)
}

/// Retention must not break the steady state: replica boxes cycle
/// between the bounded ring and the slab pool (overflow evicts back to
/// the pool, the next stamp takes from it), so the marginal cost per
/// delivered buffer stays zero allocations even with recovery armed.
/// Dedup sets and journals grow amortized — a handful of doublings over
/// 1800 extra buffers, well inside the same sliver budget.
#[test]
fn lossless_retention_steady_state_is_allocation_free() {
    const SMALL: u32 = 200;
    const LARGE: u32 = 2000;
    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
        let _ = run_once_lossless(policy, SMALL);

        let (small_allocs, small_sum) = run_once_lossless(policy, SMALL);
        let (large_allocs, large_sum) = run_once_lossless(policy, LARGE);
        assert_eq!(small_sum, expected_sum(SMALL));
        assert_eq!(large_sum, expected_sum(LARGE));

        let extra_buffers = (LARGE - SMALL) as i64;
        let delta = large_allocs as i64 - small_allocs as i64;
        assert!(
            delta <= extra_buffers / 64,
            "{} + lossless retention: {} extra allocations for {} extra \
             delivered buffers ({} vs {} total) — the retention path is \
             allocating per buffer",
            policy.label(),
            delta,
            extra_buffers,
            large_allocs,
            small_allocs,
        );
    }
}

// ---- tile-hash routing -----------------------------------------------------

/// Producer that targets buffers by tile id, the way the tiled raster
/// filter ships split fragments: `write_tile` resolves the owning copy
/// set and takes the same slab-recycled targeted-write path.
struct TileSrc {
    n: u32,
}
impl Filter for TileSrc {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            let b = ctx.buffer_slab().make(i as u64, 128);
            // A rolling tile id exercises both owner sets.
            ctx.write_tile(0, (i % 5) as u64, b);
        }
        Ok(())
    }
}

/// Multi-set sink: copies accumulate into one shared counter (order
/// doesn't matter for a wrapping sum).
struct TileSink {
    sum: Arc<AtomicU64>,
}
impl Filter for TileSink {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            let v = ctx.buffer_slab().recycle::<u64>(b);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Tile-hash variant of [`run_once`]: one producer, **two** consumer copy
/// sets so the modulo routing actually fans out.
fn run_once_tiled(n: u32) -> (u64, u64) {
    let (topo, hosts) = topology_n(3);
    let sum: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let sum2 = sum.clone();
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| TileSrc {
        n,
    });
    let sink = g.add_filter("sink", Placement::one_per_host(&hosts[1..]), move |_| {
        TileSink { sum: sum2.clone() }
    });
    g.connect(src, sink, WritePolicy::TileHash);
    let before = ALLOCS.load(Ordering::Relaxed);
    Run::new(g.build())
        .go(&topo)
        .expect("tiled pipeline run failed");
    let after = ALLOCS.load(Ordering::Relaxed);
    let got = sum.load(Ordering::Relaxed);
    (after - before, got)
}

/// The tile-hash write path (`write_tile` → targeted write) must hit the
/// same zero-allocation steady state as the untargeted policies — this is
/// what lets the tiled raster filter split every WPA batch without
/// allocating per fragment.
#[test]
fn tile_hash_delivery_steady_state_is_allocation_free() {
    const SMALL: u32 = 200;
    const LARGE: u32 = 2000;
    let _ = run_once_tiled(SMALL);

    let (small_allocs, small_sum) = run_once_tiled(SMALL);
    let (large_allocs, large_sum) = run_once_tiled(LARGE);
    assert_eq!(small_sum, expected_sum(SMALL));
    assert_eq!(large_sum, expected_sum(LARGE));

    let extra_buffers = (LARGE - SMALL) as i64;
    let delta = large_allocs as i64 - small_allocs as i64;
    assert!(
        delta <= extra_buffers / 64,
        "tile-hash: {delta} extra allocations for {extra_buffers} extra delivered \
         buffers ({large_allocs} vs {small_allocs} total) — the targeted \
         delivery path is allocating per buffer",
    );
}

// ---- warm chunk cache ------------------------------------------------------

use volume::{CacheKey, ChunkCache, ChunkId, Dims, RectGrid};

fn cache_key(c: u32) -> CacheKey {
    CacheKey {
        species: 0,
        timestep: 0,
        chunk: ChunkId(c),
    }
}

/// A warm cache with `n` resident grids, each filled with its own index
/// so delivered payloads are checksummable.
fn warm_cache(n: u32) -> Arc<ChunkCache> {
    let cache = ChunkCache::new(1 << 24);
    for c in 0..n {
        cache.insert(
            cache_key(c),
            Arc::new(RectGrid::filled(Dims::new(8, 8, 8), c as f32)),
        );
    }
    cache
}

/// A cache hit is an `Arc` clone: strictly zero heap allocations, not
/// just amortized-zero. This is the direct proof behind the cache module
/// docs' claim.
#[test]
fn warm_cache_hits_are_strictly_allocation_free() {
    let cache = warm_cache(8);
    // Warm the lock and the counter cachelines.
    for c in 0..8 {
        assert!(cache.get(cache_key(c)).is_some());
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut touched = 0u64;
    for i in 0..10_000u32 {
        let g = cache.get(cache_key(i % 8)).expect("warm entry");
        touched = touched.wrapping_add(g.data[0] as u64);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "10,000 cache hits allocated — an Arc clone must not touch the heap"
    );
    assert_eq!(touched, 10_000 / 8 * (0..8).sum::<u64>());
}

/// Source that serves every buffer from a warm [`ChunkCache`]: the
/// payload is the hit's `Arc` clone, shipped through the recycling slab
/// exactly the way the budgeted reader stage ships resident chunks.
struct CachedSrc {
    n: u32,
    cache: Arc<ChunkCache>,
}
impl Filter for CachedSrc {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            let g = self.cache.get(cache_key(i % 8));
            debug_assert!(g.is_some(), "warm entry");
            // `Option` wrapper gives the recycled box its hollow state
            // (`recycle` needs `Default`); same size as the bare `Arc`.
            let b = ctx.buffer_slab().make(g, 128);
            ctx.write(0, b);
        }
        Ok(())
    }
}

/// Consumer folding the cached grids' fill values (proof the shared data
/// actually arrived) and recycling the boxes back to the slab.
struct CachedSink {
    sum: Arc<Mutex<u64>>,
}
impl Filter for CachedSink {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let mut local = 0u64;
        while let Some(b) = ctx.read(0) {
            let g: Option<Arc<RectGrid>> = ctx.buffer_slab().recycle(b);
            local = local.wrapping_add(g.expect("payload present").data[0] as u64);
        }
        *self.sum.lock() = local;
        Ok(())
    }
}

fn run_once_cached(policy: WritePolicy, n: u32) -> (u64, u64) {
    let (topo, hosts) = topology();
    // Built and warmed before the measured window, like the run-wide
    // cache a prior query already populated.
    let cache = warm_cache(8);
    let sum: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let sum2 = sum.clone();
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(hosts[0], 1), move |_| CachedSrc {
        n,
        cache: cache.clone(),
    });
    let sink = g.add_filter("sink", Placement::on_host(hosts[1], 1), move |_| {
        CachedSink { sum: sum2.clone() }
    });
    g.connect(src, sink, policy);
    let before = ALLOCS.load(Ordering::Relaxed);
    Run::new(g.build())
        .go(&topo)
        .expect("cached pipeline run failed");
    let after = ALLOCS.load(Ordering::Relaxed);
    let got = *sum.lock();
    (after - before, got)
}

fn expected_cached_sum(n: u32) -> u64 {
    (0..n as u64).map(|i| i % 8).sum()
}

/// The full cache-hit delivery path — lookup, `Arc`-clone payload, slab
/// box, channel, recycle — reaches the same zero-allocation steady state
/// as the plain delivery path: a warm out-of-core reader adds no
/// per-chunk heap traffic on top of it.
#[test]
fn warm_cache_delivery_steady_state_is_allocation_free() {
    const SMALL: u32 = 200;
    const LARGE: u32 = 2000;
    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
        let _ = run_once_cached(policy, SMALL);

        let (small_allocs, small_sum) = run_once_cached(policy, SMALL);
        let (large_allocs, large_sum) = run_once_cached(policy, LARGE);
        assert_eq!(small_sum, expected_cached_sum(SMALL));
        assert_eq!(large_sum, expected_cached_sum(LARGE));

        let extra_buffers = (LARGE - SMALL) as i64;
        let delta = large_allocs as i64 - small_allocs as i64;
        assert!(
            delta <= extra_buffers / 64,
            "{} + warm cache: {} extra allocations for {} extra delivered \
             buffers ({} vs {} total) — the cache-hit delivery path is \
             allocating per buffer",
            policy.label(),
            delta,
            extra_buffers,
            large_allocs,
            small_allocs,
        );
    }
}
