//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use isosurf::{vec3, ZBuffer};
use volume::{hilbert_coords, hilbert_index, ChunkId, ChunkLayout, Dims, RectGrid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hilbert encode/decode is a bijection at arbitrary orders.
    #[test]
    fn hilbert_roundtrip(bits in 1u32..=10, seed in any::<u64>()) {
        let side = 1u32 << bits;
        let mut s = seed;
        for _ in 0..16 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (s >> 10) as u32 % side;
            let y = (s >> 30) as u32 % side;
            let z = (s >> 50) as u32 % side;
            let idx = hilbert_index([x, y, z], bits);
            prop_assert_eq!(hilbert_coords(idx, bits), [x, y, z]);
        }
    }

    /// Chunk layouts tile the cell grid exactly, for arbitrary shapes.
    #[test]
    fn chunks_tile_exactly(
        nx in 3u32..20, ny in 3u32..20, nz in 3u32..20,
        cx in 1u32..4, cy in 1u32..4, cz in 1u32..4,
    ) {
        prop_assume!(nx > cx && ny > cy && nz > cz);
        let layout = ChunkLayout::new(Dims::new(nx, ny, nz), (cx, cy, cz));
        let mut covered = 0u64;
        for info in layout.all() {
            covered += info.cell_extent.0 as u64
                * info.cell_extent.1 as u64
                * info.cell_extent.2 as u64;
        }
        prop_assert_eq!(covered, layout.grid.cells());
    }

    /// Z-buffer merging is commutative: fold order never matters.
    #[test]
    fn zbuffer_merge_commutes(plots in prop::collection::vec(
        (0u32..8, 0u32..8, 0.0f32..100.0, any::<[u8; 3]>()), 1..40))
    {
        let mut a = ZBuffer::new(8, 8);
        let mut b = ZBuffer::new(8, 8);
        for (i, &(x, y, d, rgb)) in plots.iter().enumerate() {
            if i % 2 == 0 { a.plot(x, y, d, rgb); } else { b.plot(x, y, d, rgb); }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.depth, ba.depth);
    }

    /// The two hidden-surface algorithms render random fields identically.
    #[test]
    fn active_pixel_equals_zbuffer_on_random_fields(seed in any::<u64>(), iso in 0.2f32..0.8) {
        let ds = volume::Dataset::generate(Dims::new(13, 13, 13), (2, 2, 2), 4, seed);
        let field = ds.field(seed as u32 % 4, (seed >> 8) as u32 % 10);
        let cam = isosurf::Camera::framing(field.dims, 64, 64);
        let m = isosurf::Material::default();
        let zi = isosurf::render_zbuffer(&field, &cam, iso, &m);
        for cap in [5usize, 333] {
            let ai = isosurf::render_active_pixel(&field, &cam, iso, &m, cap);
            prop_assert_eq!(zi.diff_pixels(&ai), 0);
        }
    }

    /// Extraction from chunks (with shared boundary planes) produces the
    /// same number of triangles as whole-grid extraction, at any isovalue.
    #[test]
    fn chunked_extraction_matches_whole(seed in any::<u64>(), iso in 0.2f32..0.8) {
        let ds = volume::Dataset::generate(Dims::new(13, 13, 13), (2, 2, 2), 4, seed);
        let field = ds.field(0, 0);
        let mut whole = Vec::new();
        isosurf::extract(&field, (0, 0, 0), iso, &mut whole);
        let layout = ds.layout();
        let mut chunked = Vec::new();
        for i in 0..layout.count() {
            let info = layout.info(ChunkId(i));
            let sub = layout.extract(&field, ChunkId(i));
            isosurf::extract(&sub, info.cell_origin, iso, &mut chunked);
        }
        prop_assert_eq!(whole.len(), chunked.len());
    }

    /// Triangle normals are unit length and perpendicular to the face.
    #[test]
    fn extracted_normals_are_unit_and_orthogonal(seed in any::<u64>()) {
        let g = RectGrid::from_fn(Dims::new(9, 9, 9), |x, y, z| {
            let s = seed as f32 % 97.0;
            ((x as f32 * 0.7 + s).sin() + (y as f32 * 0.9).cos() + (z as f32 * 0.5 + s).sin()) / 3.0
        });
        let mut tris = Vec::new();
        isosurf::extract(&g, (0, 0, 0), 0.1, &mut tris);
        for t in &tris {
            let n = t.normal;
            prop_assert!((n.length() - 1.0).abs() < 1e-3);
            let e1 = t.v[1] - t.v[0];
            let e2 = t.v[2] - t.v[0];
            let geo = e1.cross(e2).normalized();
            prop_assert!((geo.dot(n).abs() - 1.0).abs() < 1e-2);
        }
    }

    /// Encode/decode of chunk payloads round-trips arbitrary grids.
    #[test]
    fn chunk_codec_roundtrip(nx in 2u32..6, ny in 2u32..6, nz in 2u32..6, seed in any::<u32>()) {
        let g = RectGrid::from_fn(Dims::new(nx, ny, nz), |x, y, z| {
            (x ^ y ^ z ^ seed) as f32 * 0.125
        });
        let bytes = volume::encode_chunk(&g);
        prop_assert_eq!(volume::decode_chunk(&bytes), Some(g));
    }
}

#[test]
fn fill_triangle_never_plots_outside_viewport() {
    // Deterministic sweep over awkward screen-space triangles.
    use isosurf::camera::ScreenVertex;
    let cases = [
        [(-10.0, -10.0), (100.0, 5.0), (5.0, 100.0)],
        [(31.5, 31.5), (32.5, 31.5), (32.0, 32.5)],
        [(0.0, 0.0), (64.0, 0.0), (0.0, 64.0)],
        [(-5.0, 70.0), (70.0, -5.0), (70.0, 70.0)],
    ];
    for verts in cases {
        let sv = |p: (f32, f32)| ScreenVertex {
            x: p.0,
            y: p.1,
            depth: 1.0,
        };
        isosurf::fill_triangle(
            sv(verts[0]),
            sv(verts[1]),
            sv(verts[2]),
            64,
            64,
            |x, y, _| {
                assert!(x < 64 && y < 64, "pixel ({x},{y}) outside 64x64");
            },
        );
    }
}

#[test]
fn degenerate_normals_never_escape() {
    // A constant field with a plane exactly at iso must not emit NaN
    // normals (or anything at all with strict > comparison).
    let g = RectGrid::filled(Dims::new(5, 5, 5), 0.5);
    let mut tris = Vec::new();
    isosurf::extract(&g, (0, 0, 0), 0.5, &mut tris);
    for t in &tris {
        assert!(t.normal.length().is_finite());
    }
    let _ = vec3(0.0, 0.0, 0.0);
}
