//! The parallel render kernels must be *bit-identical* to their serial
//! counterparts on arbitrary inputs and thread counts — not merely
//! equivalent up to reordering. The decompositions (z-slabs spliced in
//! slab order, disjoint row bands, index-ordered tree reduction) are
//! designed for this; these properties pin it down, including on forced
//! depth ties where a sloppy decomposition would diverge.

use proptest::prelude::*;

use isosurf::{
    extract_serial, extract_with, merge_batch_serial, merge_batch_with, merge_many_serial,
    merge_many_with, ExtractScratch, ThreadPool, WinningPixel, ZBuffer,
};
use volume::{Dims, RectGrid};

/// Splitmix-style scalar mix for deterministic test data.
fn mix(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 16
}

/// A random grid whose values are quantized so the isosurface has plenty
/// of exactly-equal corner values (degenerate marching-tet cases).
fn random_grid(nx: u32, ny: u32, nz: u32, seed: u64) -> RectGrid {
    let mut s = seed | 1;
    RectGrid::from_fn(Dims::new(nx, ny, nz), |_, _, _| {
        (mix(&mut s) % 11) as f32 / 10.0
    })
}

/// A z-buffer with random plots; depths quantized to force cross-buffer
/// ties.
fn random_zbuffer(w: u32, h: u32, seed: u64) -> ZBuffer {
    let mut zb = ZBuffer::new(w, h);
    let mut s = seed | 1;
    for _ in 0..(w as u64 * h as u64 * 2) {
        let r = mix(&mut s);
        let x = (r % w as u64) as u32;
        let y = ((r >> 8) % h as u64) as u32;
        let d = ((r >> 20) % 16) as f32;
        zb.plot(x, y, d, [r as u8, (r >> 8) as u8, (r >> 16) as u8]);
    }
    zb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slab-parallel extraction splices to exactly the serial triangle
    /// stream, for any grid shape, isovalue, and thread count.
    #[test]
    fn parallel_extract_matches_serial(
        nx in 2u32..12, ny in 2u32..12, nz in 2u32..16,
        seed in any::<u64>(), iso in 0.05f32..0.95, threads in 2usize..5,
    ) {
        let grid = random_grid(nx, ny, nz, seed);
        let origin = ((seed % 7) as u32, ((seed >> 8) % 7) as u32, ((seed >> 16) % 7) as u32);

        let mut serial = Vec::new();
        let stats_s = extract_serial(&grid, origin, iso, &mut serial);

        let pool = ThreadPool::new(threads);
        let mut scratch = ExtractScratch::default();
        let mut par = Vec::new();
        let stats_p = extract_with(&pool, &mut scratch, &grid, origin, iso, &mut par);

        prop_assert_eq!(stats_s, stats_p);
        prop_assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(par.iter()) {
            for k in 0..3 {
                prop_assert_eq!(a.v[k].x.to_bits(), b.v[k].x.to_bits());
                prop_assert_eq!(a.v[k].y.to_bits(), b.v[k].y.to_bits());
                prop_assert_eq!(a.v[k].z.to_bits(), b.v[k].z.to_bits());
            }
        }
    }

    /// Band-parallel pairwise merge equals the serial merge bit-for-bit,
    /// ties included (equal depths keep the destination pixel).
    #[test]
    fn parallel_merge_matches_serial(
        w in 1u32..64, h in 1u32..64, seed in any::<u64>(), threads in 2usize..5,
    ) {
        let a = random_zbuffer(w, h, seed);
        let b = random_zbuffer(w, h, seed.wrapping_add(0x9e3779b97f4a7c15));

        let mut serial = a.clone();
        serial.merge_serial(&b);

        let pool = ThreadPool::new(threads);
        let mut par = a.clone();
        par.merge_with(&pool, &b);

        prop_assert_eq!(serial, par);
    }

    /// The tree reduction over N buffers equals the serial left fold,
    /// ties included (lowest buffer index wins in both).
    #[test]
    fn merge_many_matches_serial_fold(
        n in 1usize..9, w in 1u32..32, h in 1u32..32,
        seed in any::<u64>(), threads in 2usize..5,
    ) {
        let bufs: Vec<ZBuffer> =
            (0..n).map(|i| random_zbuffer(w, h, seed.wrapping_add(i as u64))).collect();

        let mut serial = bufs.clone();
        merge_many_serial(&mut serial);

        let pool = ThreadPool::new(threads);
        let mut par = bufs.clone();
        merge_many_with(&pool, &mut par);

        prop_assert_eq!(&serial[0], &par[0]);
    }

    /// Band-parallel WPA batch merging preserves the serial per-pixel
    /// candidate order (strict less-than: first of equal depths wins).
    #[test]
    fn parallel_merge_batch_matches_serial(
        w in 1u32..48, h in 2u32..48, len in 0usize..4000,
        seed in any::<u64>(), threads in 2usize..5,
    ) {
        let mut s = seed | 1;
        let batch: Vec<WinningPixel> = (0..len)
            .map(|_| {
                let r = mix(&mut s);
                WinningPixel {
                    x: (r % w as u64) as u16,
                    y: ((r >> 8) % h as u64) as u16,
                    depth: ((r >> 20) % 8) as f32,
                    rgb: [r as u8, (r >> 8) as u8, (r >> 16) as u8],
                }
            })
            .collect();

        let mut serial = ZBuffer::new(w, h);
        merge_batch_serial(&mut serial, &batch);

        let pool = ThreadPool::new(threads);
        let mut par = ZBuffer::new(w, h);
        merge_batch_with(&pool, &mut par, &batch);

        prop_assert_eq!(serial, par);
    }
}
