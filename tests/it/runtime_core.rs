//! Core runtime behaviour through the public API: delivery, policies,
//! lifecycle, fan-in/out, tracing, routing, and multi-UOW cycles. These
//! were the unit tests of the pre-refactor monolithic runtime module,
//! transplanted onto the [`datacutter::Run`] builder.

use std::sync::Arc;

use datacutter::{
    DataBuffer, Filter, FilterCtx, FilterError, FilterId, GraphBuilder, Placement, Run, RunError,
    RunReport, StreamId, WritePolicy,
};
use hetsim::{ClusterSpec, HostId, HostSpec, SimDuration, Topology, TopologyBuilder};
use parking_lot::Mutex;

fn flat_topology(n: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 100.0e6,
        nic_latency: SimDuration::from_micros(50),
    });
    for i in 0..n {
        b.add_host(
            c,
            HostSpec {
                name: format!("h{i}"),
                cores: 1,
                speed: 1.0,
                mem_mb: 512,
                disks: 1,
                disk_bandwidth_bps: 50.0e6,
                disk_seek: SimDuration::from_millis(5),
            },
        );
    }
    b.build()
}

struct Source {
    n: u32,
}
impl Filter for Source {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.n {
            ctx.compute(SimDuration::from_millis(1));
            ctx.write(0, DataBuffer::new(i, 1024));
        }
        Ok(())
    }
}

struct Doubler {
    work: SimDuration,
}
impl Filter for Doubler {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            let v = b.downcast::<u32>();
            ctx.compute(self.work);
            ctx.write(0, DataBuffer::new(v * 2, 1024));
        }
        Ok(())
    }
}

struct Collect {
    out: Arc<Mutex<Vec<u32>>>,
}
impl Filter for Collect {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            self.out.lock().push(b.downcast::<u32>());
        }
        Ok(())
    }
}

fn pipeline(
    topo: &Topology,
    policy: WritePolicy,
    n_items: u32,
    worker_hosts: &[HostId],
    worker_work_ms: u64,
) -> (RunReport, Vec<u32>) {
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), move |_| Source {
        n: n_items,
    });
    let work = SimDuration::from_millis(worker_work_ms);
    let dbl = g.add_filter("dbl", Placement::one_per_host(worker_hosts), move |_| {
        Doubler { work }
    });
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, dbl, policy);
    g.connect(dbl, snk, WritePolicy::RoundRobin);
    let report = Run::new(g.build()).go(topo).unwrap();
    let v = out.lock().clone();
    (report, v)
}

#[test]
fn linear_pipeline_delivers_everything() {
    let topo = flat_topology(3);
    let (report, mut got) = pipeline(
        &topo,
        WritePolicy::RoundRobin,
        20,
        &[HostId(1), HostId(2)],
        2,
    );
    got.sort_unstable();
    let want: Vec<u32> = (0..20).map(|i| i * 2).collect();
    assert_eq!(got, want);
    assert!(report.elapsed > SimDuration::ZERO);
    // Stream 0: 20 buffers, 10 per copy set under RR.
    let s = report.stream(StreamId(0));
    assert_eq!(s.total_buffers(), 20);
    for (_, c) in &s.copysets {
        assert_eq!(c.buffers_received, 10);
    }
}

#[test]
fn wrr_respects_copy_weights() {
    let topo = flat_topology(3);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source {
        n: 30,
    });
    // Host1 gets 2 copies, host2 gets 1.
    let dbl = g.add_filter(
        "dbl",
        Placement {
            per_host: vec![(HostId(1), 2), (HostId(2), 1)],
        },
        |_| Doubler {
            work: SimDuration::from_millis(1),
        },
    );
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, dbl, WritePolicy::WeightedRoundRobin);
    g.connect(dbl, snk, WritePolicy::RoundRobin);
    let report = Run::new(g.build()).go(&topo).unwrap();
    let s = report.stream(StreamId(0));
    assert_eq!(s.copysets[0].1.buffers_received, 20);
    assert_eq!(s.copysets[1].1.buffers_received, 10);
    assert_eq!(out.lock().len(), 30);
}

#[test]
fn dd_shifts_load_away_from_slow_host() {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 100.0e6,
        nic_latency: SimDuration::from_micros(50),
    });
    // Host 0: source+sink. Host 1: fast worker. Host 2: slow worker.
    for (i, speed) in [(0, 1.0f64), (1, 1.0), (2, 0.2)] {
        b.add_host(
            c,
            HostSpec {
                name: format!("h{i}"),
                cores: 1,
                speed,
                mem_mb: 512,
                disks: 1,
                disk_bandwidth_bps: 50.0e6,
                disk_seek: SimDuration::from_millis(5),
            },
        );
    }
    let topo = b.build();
    let (report, got) = pipeline(
        &topo,
        WritePolicy::demand_driven(),
        40,
        &[HostId(1), HostId(2)],
        4,
    );
    assert_eq!(got.len(), 40);
    let s = report.stream(StreamId(0));
    let fast = s.copysets[0].1.buffers_received;
    let slow = s.copysets[1].1.buffers_received;
    assert_eq!(fast + slow, 40);
    assert!(
        fast > slow * 2,
        "DD should favour the fast host: fast={fast} slow={slow}"
    );
}

#[test]
fn rr_vs_dd_completion_time_under_imbalance() {
    let mk = || {
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster(ClusterSpec {
            name: "c".into(),
            nic_bandwidth_bps: 100.0e6,
            nic_latency: SimDuration::from_micros(50),
        });
        for (i, speed) in [(0, 1.0f64), (1, 1.0), (2, 0.25)] {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1,
                    speed,
                    mem_mb: 512,
                    disks: 1,
                    disk_bandwidth_bps: 50.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            );
        }
        b.build()
    };
    let topo = mk();
    let (rr, _) = pipeline(
        &topo,
        WritePolicy::RoundRobin,
        40,
        &[HostId(1), HostId(2)],
        4,
    );
    let topo = mk();
    let (dd, _) = pipeline(
        &topo,
        WritePolicy::demand_driven(),
        40,
        &[HostId(1), HostId(2)],
        4,
    );
    assert!(
        dd.elapsed < rr.elapsed,
        "DD ({}) should beat RR ({}) under heterogeneity",
        dd.elapsed,
        rr.elapsed
    );
}

#[test]
fn copy_metrics_account_for_work() {
    let topo = flat_topology(3);
    let (report, _) = pipeline(
        &topo,
        WritePolicy::RoundRobin,
        10,
        &[HostId(1), HostId(2)],
        3,
    );
    let dbl = FilterId(1);
    // 10 buffers x 3 ms of work across copies.
    assert_eq!(report.filter_work(dbl).as_nanos(), 30_000_000);
    let copies = report.copies_of(dbl);
    assert_eq!(copies.len(), 2);
    let total_in: u64 = copies.iter().map(|c| c.counters.buffers_in).sum();
    assert_eq!(total_in, 10);
}

#[test]
fn multiple_copies_share_one_copyset_queue() {
    let topo = flat_topology(2);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source {
        n: 24,
    });
    // 3 copies on one host: one copy set with demand-based sharing.
    let dbl = g.add_filter("dbl", Placement::on_host(HostId(1), 3), |_| Doubler {
        work: SimDuration::from_millis(2),
    });
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, dbl, WritePolicy::RoundRobin);
    g.connect(dbl, snk, WritePolicy::RoundRobin);
    let report = Run::new(g.build()).go(&topo).unwrap();
    assert_eq!(out.lock().len(), 24);
    // All three copies did some of the work.
    for c in report.copies_of(FilterId(1)) {
        assert!(c.counters.buffers_in > 0, "idle copy {:?}", c.copy_index);
    }
    let _ = dbl;
    let _ = src;
    let _ = snk;
}

#[test]
fn source_only_graph_runs() {
    let topo = flat_topology(1);
    let mut g = GraphBuilder::new();
    struct Quiet;
    impl Filter for Quiet {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            ctx.compute(SimDuration::from_millis(5));
            Ok(())
        }
    }
    g.add_filter("quiet", Placement::on_host(HostId(0), 1), |_| Quiet);
    let report = Run::new(g.build()).go(&topo).unwrap();
    assert_eq!(report.elapsed.as_nanos(), 5_000_000);
}

#[test]
fn filter_error_aborts_run() {
    let topo = flat_topology(1);
    let mut g = GraphBuilder::new();
    struct Bad;
    impl Filter for Bad {
        fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
            Err(FilterError("broken".into()))
        }
    }
    g.add_filter("bad", Placement::on_host(HostId(0), 1), |_| Bad);
    match Run::new(g.build()).go(&topo) {
        Err(RunError::Filter {
            filter,
            copy,
            host,
            uow,
            message,
        }) => {
            assert_eq!(filter, "bad");
            assert_eq!(copy, 0);
            assert_eq!(host, HostId(0));
            assert_eq!(uow, 0);
            assert!(message.contains("broken"));
        }
        other => panic!("expected structured filter error, got {other:?}"),
    }
}

#[test]
fn init_and_finalize_are_called() {
    let topo = flat_topology(1);
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    struct Lifecycle {
        log: Arc<Mutex<Vec<&'static str>>>,
    }
    impl Filter for Lifecycle {
        fn init(&mut self, _ctx: &mut FilterCtx) {
            self.log.lock().push("init");
        }
        fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
            self.log.lock().push("process");
            Ok(())
        }
        fn finalize(&mut self, _ctx: &mut FilterCtx) {
            self.log.lock().push("finalize");
        }
    }
    let mut g = GraphBuilder::new();
    let log2 = log.clone();
    g.add_filter("lc", Placement::on_host(HostId(0), 1), move |_| Lifecycle {
        log: log2.clone(),
    });
    Run::new(g.build()).go(&topo).unwrap();
    assert_eq!(*log.lock(), vec!["init", "process", "finalize"]);
}

#[test]
fn fan_out_filter_feeds_two_streams() {
    // One producer with two output ports feeding different consumers.
    let topo = flat_topology(3);
    struct Splitter;
    impl Filter for Splitter {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            assert_eq!(ctx.output_count(), 2);
            for i in 0..10u32 {
                ctx.write((i % 2) as usize, DataBuffer::new(i, 64));
            }
            Ok(())
        }
    }
    let evens: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let odds: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let s = g.add_filter("split", Placement::on_host(HostId(0), 1), |_| Splitter);
    let e2 = evens.clone();
    let ce = g.add_filter("evens", Placement::on_host(HostId(1), 1), move |_| {
        Collect { out: e2.clone() }
    });
    let o2 = odds.clone();
    let co = g.add_filter("odds", Placement::on_host(HostId(2), 1), move |_| Collect {
        out: o2.clone(),
    });
    g.connect(s, ce, WritePolicy::RoundRobin); // port 0
    g.connect(s, co, WritePolicy::RoundRobin); // port 1
    Run::new(g.build()).go(&topo).unwrap();
    assert_eq!(*evens.lock(), vec![0, 2, 4, 6, 8]);
    assert_eq!(*odds.lock(), vec![1, 3, 5, 7, 9]);
}

#[test]
fn fan_in_filter_reads_two_ports() {
    // Two producers into one consumer through separate input ports,
    // each with independent end-of-work.
    let topo = flat_topology(3);
    struct Fixed(u32, u32); // base, count
    impl Filter for Fixed {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..self.1 {
                ctx.write(0, DataBuffer::new(self.0 + i, 64));
            }
            Ok(())
        }
    }
    struct Zip {
        out: Arc<Mutex<(Vec<u32>, Vec<u32>)>>,
    }
    impl Filter for Zip {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            assert_eq!(ctx.input_count(), 2);
            while let Some(b) = ctx.read(0) {
                self.out.lock().0.push(b.downcast::<u32>());
            }
            while let Some(b) = ctx.read(1) {
                self.out.lock().1.push(b.downcast::<u32>());
            }
            Ok(())
        }
    }
    let out: Arc<Mutex<(Vec<u32>, Vec<u32>)>> = Arc::default();
    let mut g = GraphBuilder::new();
    let a = g.add_filter("a", Placement::on_host(HostId(0), 1), |_| Fixed(100, 4));
    let b = g.add_filter("b", Placement::on_host(HostId(1), 1), |_| Fixed(200, 3));
    let o2 = out.clone();
    let z = g.add_filter("zip", Placement::on_host(HostId(2), 1), move |_| Zip {
        out: o2.clone(),
    });
    g.connect(a, z, WritePolicy::RoundRobin); // zip port 0
    g.connect(b, z, WritePolicy::RoundRobin); // zip port 1
    Run::new(g.build()).go(&topo).unwrap();
    let v = out.lock().clone();
    assert_eq!(v.0, vec![100, 101, 102, 103]);
    assert_eq!(v.1, vec![200, 201, 202]);
}

#[test]
fn traced_run_records_compute_and_wait_spans() {
    let topo = flat_topology(2);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source { n: 5 });
    let dbl = g.add_filter("dbl", Placement::on_host(HostId(1), 1), |_| Doubler {
        work: SimDuration::from_millis(2),
    });
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, dbl, WritePolicy::RoundRobin);
    g.connect(dbl, snk, WritePolicy::RoundRobin);
    let trace = hetsim::Trace::new();
    Run::new(g.build()).trace(trace.clone()).go(&topo).unwrap();
    let busy = trace.busy_by_label();
    let labels: Vec<&str> = busy.iter().map(|(l, _)| l.as_str()).collect();
    assert!(labels.contains(&"compute"), "{labels:?}");
    assert!(labels.contains(&"read-wait"), "{labels:?}");
    // Doubler computed 5 x 2ms; source 5 x 1ms.
    let compute = busy.iter().find(|(l, _)| l == "compute").unwrap().1;
    assert!(compute.as_nanos() >= 15_000_000, "compute total {compute}");
    // Spans carry the copy identity.
    assert!(trace
        .timeline()
        .iter()
        .any(|s| s.detail.starts_with("dbl#0")));
}

#[test]
fn write_to_targets_specific_copysets() {
    let topo = flat_topology(3);
    let out: Arc<Mutex<Vec<(hetsim::HostId, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    struct Router;
    impl Filter for Router {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            assert_eq!(ctx.consumer_copysets(0), 2);
            for i in 0..10u32 {
                // Evens to set 0, odds to set 1.
                ctx.write_to(0, (i % 2) as usize, DataBuffer::new(i, 64));
            }
            Ok(())
        }
    }
    struct Tagger {
        out: Arc<Mutex<Vec<(hetsim::HostId, u32)>>>,
    }
    impl Filter for Tagger {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                let host = ctx.host();
                self.out.lock().push((host, b.downcast::<u32>()));
            }
            Ok(())
        }
    }
    let mut g = GraphBuilder::new();
    let r = g.add_filter("router", Placement::on_host(HostId(0), 1), |_| Router);
    let out2 = out.clone();
    let t = g.add_filter(
        "tagger",
        Placement::one_per_host(&[HostId(1), HostId(2)]),
        move |info| {
            // Copy-set identity is exposed to the factory.
            assert_eq!(info.total_copysets, 2);
            Tagger { out: out2.clone() }
        },
    );
    g.connect(r, t, WritePolicy::RoundRobin);
    Run::new(g.build()).go(&topo).unwrap();
    let v = out.lock().clone();
    assert_eq!(v.len(), 10);
    for (host, val) in v {
        let expected = if val % 2 == 0 { HostId(1) } else { HostId(2) };
        assert_eq!(host, expected, "value {val} routed to wrong set");
    }
}

#[test]
fn multi_uow_lifecycle_runs_per_cycle() {
    let topo = flat_topology(2);
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    struct Cycler {
        log: Arc<Mutex<Vec<String>>>,
    }
    impl Filter for Cycler {
        fn init(&mut self, ctx: &mut FilterCtx) {
            self.log.lock().push(format!("init{}", ctx.uow()));
        }
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..3u32 {
                ctx.write(0, DataBuffer::new(ctx.uow() * 100 + i, 64));
            }
            Ok(())
        }
        fn finalize(&mut self, ctx: &mut FilterCtx) {
            self.log.lock().push(format!("fini{}", ctx.uow()));
        }
    }
    type UowLog = Arc<Mutex<Vec<(u32, Vec<u32>)>>>;
    let got: UowLog = Arc::new(Mutex::new(Vec::new()));
    struct PerUow {
        got: UowLog,
        current: Vec<u32>,
    }
    impl Filter for PerUow {
        fn init(&mut self, _ctx: &mut FilterCtx) {
            self.current.clear();
        }
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                self.current.push(b.downcast::<u32>());
            }
            Ok(())
        }
        fn finalize(&mut self, ctx: &mut FilterCtx) {
            self.got.lock().push((ctx.uow(), self.current.clone()));
        }
    }
    let mut g = GraphBuilder::new();
    let log2 = log.clone();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), move |_| Cycler {
        log: log2.clone(),
    });
    let got2 = got.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(1), 1), move |_| PerUow {
        got: got2.clone(),
        current: Vec::new(),
    });
    g.connect(src, snk, WritePolicy::RoundRobin);
    let report = Run::new(g.build()).uows(3).go(&topo).unwrap();

    // Lifecycle ran once per UOW on the source.
    let l = log.lock().clone();
    assert_eq!(
        l,
        vec!["init0", "fini0", "init1", "fini1", "init2", "fini2"]
    );
    // Each UOW's data stayed within its cycle.
    let v = got.lock().clone();
    assert_eq!(v.len(), 3);
    for (uow, items) in &v {
        let want: Vec<u32> = (0..3).map(|i| uow * 100 + i).collect();
        assert_eq!(items, &want, "uow {uow}");
    }
    // Two barrier boundaries, increasing, within the run.
    assert_eq!(report.uow_boundaries.len(), 2);
    assert!(report.uow_boundaries[0] < report.uow_boundaries[1]);
    assert_eq!(report.uow_elapsed().len(), 3);
    assert!(report.uow_elapsed().iter().all(|d| !d.is_zero()));
}

#[test]
fn multi_uow_with_transparent_copies_is_complete() {
    // Copies + DD policy across 3 cycles: every item of every cycle is
    // delivered exactly once.
    let topo = flat_topology(3);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    struct UowSource;
    impl Filter for UowSource {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..12u32 {
                ctx.compute(SimDuration::from_millis(1));
                ctx.write(0, DataBuffer::new(ctx.uow() * 1000 + i, 256));
            }
            Ok(())
        }
    }
    let mut g = GraphBuilder::new();
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| UowSource);
    let dbl = g.add_filter(
        "dbl",
        Placement {
            per_host: vec![(HostId(1), 2), (HostId(2), 1)],
        },
        |_| Doubler {
            work: SimDuration::from_millis(2),
        },
    );
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, dbl, WritePolicy::demand_driven());
    g.connect(dbl, snk, WritePolicy::RoundRobin);
    Run::new(g.build()).uows(3).go(&topo).unwrap();
    let mut v = out.lock().clone();
    v.sort_unstable();
    let mut want: Vec<u32> = (0..3u32)
        .flat_map(|u| (0..12u32).map(move |i| (u * 1000 + i) * 2))
        .collect();
    want.sort_unstable();
    assert_eq!(v, want);
    let _ = (src, dbl, snk);
}

#[test]
fn read_wait_is_recorded_for_starved_consumer() {
    let topo = flat_topology(2);
    let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = GraphBuilder::new();
    struct SlowSource;
    impl Filter for SlowSource {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..5u32 {
                ctx.compute(SimDuration::from_millis(20));
                ctx.write(0, DataBuffer::new(i, 100));
            }
            Ok(())
        }
    }
    let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| SlowSource);
    let out2 = out.clone();
    let snk = g.add_filter("snk", Placement::on_host(HostId(1), 1), move |_| Collect {
        out: out2.clone(),
    });
    g.connect(src, snk, WritePolicy::RoundRobin);
    let report = Run::new(g.build()).go(&topo).unwrap();
    let snk_copy = &report.copies_of(snk)[0];
    assert!(
        snk_copy.counters.read_wait.as_nanos() > 50_000_000,
        "sink should wait ~100ms, got {}",
        snk_copy.counters.read_wait
    );
    let _ = src;
}
