//! End-to-end behaviour of the writer policies on the full application.

// Deliberately exercises the deprecated `run_app` compatibility wrapper.
#![allow(deprecated)]

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use integration_tests::{cluster, test_cfg, test_dataset};

fn spec(hosts: &[hetsim::HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy,
        merge_host: hosts[0],
    }
}

#[test]
fn rr_spreads_buffers_evenly() {
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(10), hosts.clone(), 96);
    let r = dcapp::run_pipeline(&topo, &cfg, &spec(&hosts, WritePolicy::RoundRobin)).unwrap();
    let s = r.report.stream(r.to_raster.unwrap());
    let counts: Vec<u64> = s.copysets.iter().map(|(_, c)| c.buffers_received).collect();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max - min <= 4, "RR counts should be near-equal: {counts:?}");
}

#[test]
fn wrr_weights_proportionally_to_copies() {
    let (topo, hosts) = cluster(2);
    let cfg = {
        // Small triangle batches so the stream carries enough buffers for
        // the 3:1 ratio to be measurable.
        let base = test_cfg(test_dataset(11), hosts.clone(), 96);
        let mut c = dcapp::clone_config(&base);
        c.tri_batch = 32;
        std::sync::Arc::new(c)
    };
    let s = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement {
                per_host: vec![(hosts[0], 1), (hosts[1], 3)],
            },
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::WeightedRoundRobin,
        merge_host: hosts[0],
    };
    let r = dcapp::run_pipeline(&topo, &cfg, &s).unwrap();
    let st = r.report.stream(r.to_raster.unwrap());
    let c0 = st.copysets[0].1.buffers_received as f64;
    let c1 = st.copysets[1].1.buffers_received as f64;
    let ratio = c1 / c0;
    assert!(
        (2.0..4.5).contains(&ratio),
        "expected ~3x weighting, got {ratio:.2} ({c0} vs {c1})"
    );
}

#[test]
fn dd_starves_a_crippled_host() {
    let (topo, hosts) = cluster(4);
    // Host 3 is buried under background jobs.
    topo.host(hosts[3]).cpu.set_bg_jobs(32);
    let cfg = test_cfg(test_dataset(12), hosts.clone(), 192);
    let r = dcapp::run_pipeline(&topo, &cfg, &spec(&hosts, WritePolicy::demand_driven())).unwrap();
    let s = r.report.stream(r.to_raster.unwrap());
    let counts: Vec<u64> = s.copysets.iter().map(|(_, c)| c.buffers_received).collect();
    let healthy_avg = counts[..3].iter().sum::<u64>() as f64 / 3.0;
    assert!(
        (counts[3] as f64) < healthy_avg,
        "loaded host should receive fewer buffers: {counts:?}"
    );
}

#[test]
fn dd_beats_rr_under_heterogeneous_load() {
    let elapsed = |policy| {
        let (topo, hosts) = cluster(4);
        for &h in &hosts[..2] {
            topo.host(h).cpu.set_bg_jobs(8);
        }
        let cfg = test_cfg(test_dataset(13), hosts.clone(), 192);
        dcapp::run_pipeline(&topo, &cfg, &spec(&hosts, policy))
            .unwrap()
            .elapsed
    };
    let rr = elapsed(WritePolicy::RoundRobin);
    let dd = elapsed(WritePolicy::demand_driven());
    assert!(
        dd.as_secs_f64() < rr.as_secs_f64(),
        "DD ({dd}) should beat RR ({rr}) with half the cluster loaded"
    );
}

#[test]
fn policies_agree_when_cluster_is_uniform_and_unloaded() {
    // Sanity: on a homogeneous idle cluster the three policies should be
    // within a modest factor of each other.
    let (topo, hosts) = cluster(4);
    let cfg = test_cfg(test_dataset(14), hosts.clone(), 96);
    let mut times = Vec::new();
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        times.push(
            dcapp::run_pipeline(&topo, &cfg, &spec(&hosts, policy))
                .unwrap()
                .elapsed
                .as_secs_f64(),
        );
    }
    let max = times.iter().cloned().fold(0.0, f64::max);
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.5,
        "policies diverge on a uniform cluster: {times:?}"
    );
}

#[test]
fn dd_ack_traffic_is_visible_in_nic_counters() {
    // Producer pinned on host 0, consumers only on host 1: the data path
    // is identical under both policies, so any extra bytes arriving at
    // host 0 are demand-driven acknowledgments.
    use datacutter::{DataBuffer, Filter, FilterCtx, FilterError, GraphBuilder};
    struct Src;
    impl Filter for Src {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..50u32 {
                ctx.write(0, DataBuffer::new(i, 4096));
            }
            Ok(())
        }
    }
    struct Snk;
    impl Filter for Snk {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                let _ = b.downcast::<u32>();
                ctx.compute(hetsim::SimDuration::from_millis(1));
            }
            Ok(())
        }
    }
    let run = |policy: WritePolicy| {
        let (topo, hosts) = cluster(2);
        let mut g = GraphBuilder::new();
        let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| Src);
        let k = g.add_filter("snk", Placement::on_host(hosts[1], 2), |_| Snk);
        g.connect(s, k, policy);
        datacutter::run_app(&topo, g.build()).unwrap();
        topo.nic_bytes(hosts[0]).1 // bytes RECEIVED by the producer host
    };
    let rr_rx = run(WritePolicy::RoundRobin);
    let dd_rx = run(WritePolicy::demand_driven());
    assert_eq!(rr_rx, 0, "nothing flows back under RR");
    assert_eq!(
        dd_rx,
        50 * datacutter::ACK_WIRE_BYTES,
        "one ack per buffer flows back under DD"
    );
}
