//! Bit-for-bit reproducibility: the whole point of emulating the cluster
//! is that every run of the same configuration produces the same virtual
//! timeline, the same metrics, and the same image.

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use integration_tests::{cluster, test_cfg, test_dataset};

fn run_once(policy: WritePolicy, bg: u32) -> (u64, u64, Vec<u64>, isosurf::Image) {
    let (topo, hosts) = cluster(3);
    for &h in &hosts[..1] {
        topo.host(h).cpu.set_bg_jobs(bg);
    }
    let cfg = test_cfg(test_dataset(30), hosts.clone(), 128);
    let spec = PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(&hosts),
        },
        algorithm: Algorithm::ActivePixel,
        policy,
        merge_host: hosts[0],
    };
    let r = dcapp::run_pipeline(&topo, &cfg, &spec).unwrap();
    let copyset_counts = r
        .report
        .stream(r.to_raster.unwrap())
        .copysets
        .iter()
        .map(|(_, c)| c.buffers_received)
        .collect();
    (
        r.elapsed.as_nanos(),
        r.report.events,
        copyset_counts,
        r.image,
    )
}

#[test]
fn identical_runs_produce_identical_timelines() {
    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
        for bg in [0u32, 4] {
            let a = run_once(policy, bg);
            let b = run_once(policy, bg);
            assert_eq!(
                a.0,
                b.0,
                "elapsed nanos differ ({} bg={bg})",
                policy.label()
            );
            assert_eq!(a.1, b.1, "event counts differ");
            assert_eq!(a.2, b.2, "buffer distributions differ");
            assert_eq!(a.3.diff_pixels(&b.3), 0, "images differ");
        }
    }
}

#[test]
fn adr_runs_are_deterministic() {
    let run = || {
        let (topo, hosts) = cluster(4);
        let cfg = test_cfg(test_dataset(31), hosts, 128);
        let r = adr::run_adr(&topo, &cfg).unwrap();
        (
            r.elapsed.as_nanos(),
            r.nodes.iter().map(|n| n.triangles).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_the_timeline() {
    // Not a tautology: confirms the dataset seed actually propagates.
    let elapsed = |seed: u64| {
        let (topo, hosts) = cluster(2);
        let cfg = test_cfg(test_dataset(seed), hosts.clone(), 128);
        let spec = PipelineSpec {
            grouping: Grouping::RERaM,
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::RoundRobin,
            merge_host: hosts[0],
        };
        dcapp::run_pipeline(&topo, &cfg, &spec)
            .unwrap()
            .elapsed
            .as_nanos()
    };
    assert_ne!(elapsed(100), elapsed(101));
}
