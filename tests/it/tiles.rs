//! Property tests for the tile-compositing geometry and the producer-side
//! splitter: every pixel belongs to exactly one tile, splitting is
//! deterministic (so tile-hash routing is a pure function of content),
//! and re-merging split fragments reproduces the unsplit composite
//! bit-for-bit.

use dcapp::tiles::{n_tiles, tile_of_row, tile_range, tile_rows};
use dcapp::{RaOut, TileSplitter};
use isosurf::{merge_batch, merge_batch_offset, merge_rows, WinningPixel, ZBuffer};
use proptest::prelude::*;

#[cfg(feature = "fault-heavy")]
const CASES: u32 = 2048;
#[cfg(not(feature = "fault-heavy"))]
const CASES: u32 = 256;

/// A pseudo-random winning-pixel batch over a `width`×`height` screen.
/// Depths are quantized so collisions and exact ties occur; all values
/// are exactly representable, so a different merge order could only
/// differ through the depth-test tie-break (which the properties below
/// pin).
fn wpa_batch(width: u32, height: u32, n: usize, seed: u64) -> Vec<WinningPixel> {
    let mut s = seed | 1;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    (0..n)
        .map(|_| WinningPixel {
            x: (next() % width as u64) as u16,
            y: (next() % height as u64) as u16,
            depth: (next() % 8) as f32 * 0.25 - 1.0,
            rgb: [next() as u8, next() as u8, next() as u8],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Tile geometry: for any image height and tile-size knob, the tile
    /// ranges partition `[0, height)` — every row falls in exactly one
    /// tile, and that tile is the one `tile_of_row` names.
    #[test]
    fn every_row_lands_in_exactly_one_tile(
        height in 1u32..2000,
        tile_size in 0u32..300,
    ) {
        let tr = tile_rows(tile_size, height);
        let n = n_tiles(height, tr);
        let mut covered = 0u32;
        for t in 0..n {
            let (lo, hi) = tile_range(t, tr, height);
            prop_assert!(lo < hi, "tile {t} of {n} is empty (tr={tr})");
            prop_assert_eq!(lo, covered, "tile {} leaves a gap", t);
            covered = hi;
        }
        prop_assert_eq!(covered, height, "tiles don't cover the image");
        // Spot-check the row->tile map against the ranges.
        for y in [0, height / 3, height / 2, height - 1] {
            let t = tile_of_row(y, tr);
            let (lo, hi) = tile_range(t, tr, height);
            prop_assert!(lo <= y && y < hi, "row {y} outside its tile {t}");
        }
    }

    /// Splitting is deterministic and single-tile: two independent
    /// splitters fed the same batch emit the identical fragment sequence,
    /// and every fragment's pixels lie inside the tile it was emitted
    /// for. Tile-hash routing is `owner = tile % n_sets` on top of this,
    /// so content-identical batches always reach the same merge copies.
    #[test]
    fn wpa_splitting_is_deterministic_and_tile_pure(
        seed in any::<u64>(),
        height in 1u32..128,
        tile_size in 1u32..40,
        n in 1usize..200,
    ) {
        let tr = tile_rows(tile_size, height);
        let batch = wpa_batch(64, height, n, seed);
        let run = || {
            let mut s = TileSplitter::new(tr, n_tiles(height, tr));
            let mut got: Vec<(u32, Vec<WinningPixel>)> = Vec::new();
            s.split(RaOut::Wpa(batch.clone().into()), |t, r| {
                if let RaOut::Wpa(v) = r {
                    got.push((t, v.to_vec()));
                }
            });
            got
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "splitting must be a pure function of content");
        for (tile, frag) in &a {
            for wp in frag {
                prop_assert_eq!(
                    tile_of_row(wp.y as u32, tr),
                    *tile,
                    "pixel y={} leaked out of tile {}", wp.y, tile
                );
            }
        }
    }

    /// Round trip: compositing the split fragments into per-tile buffers
    /// and stitching them back row-by-row yields exactly the composite of
    /// the original batch into a full-height buffer.
    #[test]
    fn split_fragments_remerge_to_original_composite(
        seed in any::<u64>(),
        height in 1u32..96,
        tile_size in 1u32..40,
        n in 0usize..400,
    ) {
        const W: u32 = 24;
        let tr = tile_rows(tile_size, height);
        let nt = n_tiles(height, tr);
        let batch = wpa_batch(W, height, n, seed);

        let mut whole = ZBuffer::new(W, height);
        merge_batch(&mut whole, &batch);

        let mut tiles: Vec<Option<ZBuffer>> = (0..nt).map(|_| None).collect();
        let mut s = TileSplitter::new(tr, nt);
        s.split(RaOut::Wpa(batch.into()), |t, r| {
            if let RaOut::Wpa(v) = r {
                let (lo, hi) = tile_range(t, tr, height);
                let zb = tiles[t as usize].get_or_insert_with(|| ZBuffer::new(W, hi - lo));
                merge_batch_offset(zb, lo, &v);
            }
        });

        let mut stitched = ZBuffer::new(W, height);
        for (t, slot) in tiles.into_iter().enumerate() {
            if let Some(zb) = slot {
                let (lo, _) = tile_range(t as u32, tr, height);
                merge_rows(&mut stitched, lo, &zb.depth, &zb.color);
            }
        }
        prop_assert_eq!(&stitched.depth, &whole.depth, "depths diverged");
        prop_assert_eq!(&stitched.color, &whole.color, "colors diverged");
    }
}
