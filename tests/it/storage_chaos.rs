//! Storage-chaos acceptance suite: seeded disk faults injected into the
//! spill ring must be *healed, degraded through, or loss-accounted* —
//! never an abort, never silent corruption.
//!
//! - Transient read/write error windows (rate < 1) are retried under the
//!   seeded backoff ladder until they heal: the run finishes bit-identical
//!   to the fault-free budgeted run with zero loss, on the simulator
//!   across RR, WRR, DD and the tile-hash merge grouping, and on the
//!   wall-clock `NativeExecutor` / cooperative `TaskedExecutor`.
//! - A persistent write-error window (rate 1.0, outliving the retry
//!   budget and the one ring re-creation) *denies* spills: payloads stay
//!   resident over budget, the denial is tallied, and the output is
//!   still bit-identical — degraded in memory headroom, not in bits.
//! - Corrupted fault-ins (seeded bit flips caught by the frame checksum)
//!   and reads that stay unreadable past the retry budget fall back to
//!   loss-accounted recovery: the run completes degraded with
//!   `consumed + lost == produced` exact and every detection tallied.
//! - A degraded-disk window (virtual-time throughput derating) costs
//!   elapsed time, never bits.

use std::sync::Arc;

use datacutter::{FaultOptions, NativeExecutor, Placement, TaskedExecutor, WritePolicy};
use dcapp::{
    clone_config, run_pipeline, run_pipeline_faulted, run_pipeline_faulted_exec, Algorithm,
    Grouping, PipelineResult, PipelineSpec, SharedConfig,
};
use hetsim::{DiskFaultKind, FaultPlan, HostId, SimDuration, SimTime};
use integration_tests::{cluster, image_digest, test_cfg, test_dataset};

/// One window covering any run on either time axis (virtual seconds on
/// the simulator, wall-clock seconds on the native executors).
fn whole_run() -> SimDuration {
    SimDuration::from_secs(3600)
}

/// `cfg` with an in-flight budget of `1/denom` of one timestep's bytes —
/// tight enough to force real spill traffic (see `outofcore.rs`).
fn budgeted(cfg: &SharedConfig, denom: u64) -> SharedConfig {
    let mut c = clone_config(cfg);
    c.memory_budget_bytes = c.dataset.timestep_bytes() / denom.max(1);
    c.validate().expect("budgeted config validates");
    Arc::new(c)
}

/// The out-of-core suite's `R–E–Ra–M` shape: data on host 0, extract on
/// hosts 1–2, raster on 3, merge on 4; the cross-host R→E stream is what
/// the budget squeezes into the spill ring.
fn four_stage(hosts: &[HostId], policy: WritePolicy) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[hosts[1], hosts[2]]),
            raster: Placement::on_host(hosts[3], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy,
        merge_host: hosts[4],
    }
}

/// Tile-owned compositing: raster on host 1, tile-hash merge on 2–3.
fn tiled(hosts: &[HostId]) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::TileComposite {
            raster: Placement::on_host(hosts[1], 1),
            merge: Placement::one_per_host(&[hosts[2], hosts[3]]),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[4],
    }
}

/// Seeded transient error windows on every host: each spill write and
/// fault-in read fails with probability `rate`, re-rolled per retry
/// attempt, for the whole run.
fn transient_plan(hosts: &[HostId], seed: u64, rate: f64) -> FaultPlan {
    let mut plan = FaultPlan::new().storage_seed(seed);
    for &h in hosts {
        plan = plan
            .disk_error(h, SimTime::ZERO, whole_run(), rate, DiskFaultKind::Write)
            .disk_error(h, SimTime::ZERO, whole_run(), rate, DiskFaultKind::Read);
    }
    plan
}

/// Every-attempt-fails windows for one `kind` on every host — persists
/// through the retry budget and the post-re-creation rung.
fn persistent_plan(hosts: &[HostId], seed: u64, kind: DiskFaultKind) -> FaultPlan {
    let mut plan = FaultPlan::new().storage_seed(seed);
    for &h in hosts {
        plan = plan.disk_error(h, SimTime::ZERO, whole_run(), 1.0, kind);
    }
    plan
}

/// Flip one seeded bit in every fault-in read on every host.
fn corruption_plan(hosts: &[HostId], seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new().storage_seed(seed);
    for &h in hosts {
        plan = plan.corrupt_read(h, SimTime::ZERO, whole_run(), 1.0);
    }
    plan
}

/// Global buffer conservation: everything any filter wrote into a stream
/// was either dequeued by a consumer copy set or tallied as lost —
/// nothing double-counted, nothing silently vanished.
fn assert_conservation(label: &str, r: &PipelineResult) {
    let produced: u64 = r
        .report
        .streams
        .iter()
        .map(|s| {
            let producer = s.stream_name.split("->").next().unwrap_or("");
            r.report
                .copies
                .iter()
                .filter(|c| c.filter_name == producer)
                .map(|c| c.counters.buffers_out)
                .sum::<u64>()
        })
        .sum();
    let consumed: u64 = r.report.streams.iter().map(|s| s.total_buffers()).sum();
    let lost = r.report.faults.buffers_lost;
    assert_eq!(
        consumed + lost,
        produced,
        "{label}: consumed {consumed} + lost {lost} != produced {produced}"
    );
}

/// Transient error windows on the simulator, across every write policy
/// and the tile-hash merge grouping: the retry ladder heals each fault,
/// so the chaos run loses nothing and renders the exact budgeted
/// fault-free image.
#[test]
fn transient_disk_errors_heal_to_bit_identical_on_sim() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    let specs: Vec<(&str, PipelineSpec)> = vec![
        ("rr", four_stage(&hosts, WritePolicy::RoundRobin)),
        ("wrr", four_stage(&hosts, WritePolicy::WeightedRoundRobin)),
        ("dd", four_stage(&hosts, WritePolicy::demand_driven())),
        ("tile-hash", tiled(&hosts)),
    ];
    for (label, spec) in &specs {
        let clean = run_pipeline(&topo, &tight, spec).expect("budgeted fault-free run");
        assert!(clean.report.ooc.spills > 0, "{label}: budget must spill");
        let plan = transient_plan(&hosts, 0xC4A05, 0.25);
        let chaos = run_pipeline_faulted(&topo, &tight, spec, FaultOptions::new(plan))
            .expect("transient chaos run completes");
        let f = &chaos.report.faults;
        assert!(
            f.disk_errors_injected > 0,
            "{label}: the plan must actually fire: {f:?}"
        );
        assert!(f.storage_retries > 0, "{label}: retries heal: {f:?}");
        assert_eq!(f.corruptions_detected, 0, "{label}: {f:?}");
        assert_eq!(f.buffers_lost, 0, "{label}: transient faults lose nothing");
        assert!(!f.degraded, "{label}: healed is not degraded: {f:?}");
        assert_eq!(
            chaos.image.diff_pixels(&clean.image),
            0,
            "{label}: retried spill traffic may cost time, never bits"
        );
        assert_conservation(&format!("sim/{label}"), &chaos);
    }
}

/// The same transient windows on the wall-clock thread-per-copy and
/// cooperative executors: the storage verdicts replay from the same
/// seeded oracle, and the rendered pixels must match the simulator's
/// budgeted fault-free reference.
#[test]
fn transient_disk_errors_heal_on_native_and_tasked() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    for (label, spec) in [
        ("dd", four_stage(&hosts, WritePolicy::demand_driven())),
        ("tile-hash", tiled(&hosts)),
    ] {
        let clean = run_pipeline(&topo, &tight, &spec).expect("budgeted sim reference");
        let want = image_digest(&clean.image);
        let plan = transient_plan(&hosts, 0x17A5, 0.2);
        let native = run_pipeline_faulted_exec(
            &topo,
            &tight,
            &spec,
            FaultOptions::new(plan.clone()),
            NativeExecutor::new(),
        )
        .expect("native chaos run completes");
        let f = &native.report.faults;
        assert!(f.disk_errors_injected > 0, "native/{label}: {f:?}");
        assert_eq!(f.buffers_lost, 0, "native/{label}: {f:?}");
        assert_eq!(
            image_digest(&native.image),
            want,
            "native/{label}: chaos pixels diverged"
        );
        assert_conservation(&format!("native/{label}"), &native);
        let tasked = run_pipeline_faulted_exec(
            &topo,
            &tight,
            &spec,
            FaultOptions::new(plan),
            TaskedExecutor::with_workers(2),
        )
        .expect("tasked chaos run completes");
        let f = &tasked.report.faults;
        assert!(f.disk_errors_injected > 0, "tasked/{label}: {f:?}");
        assert_eq!(f.buffers_lost, 0, "tasked/{label}: {f:?}");
        assert_eq!(
            image_digest(&tasked.image),
            want,
            "tasked/{label}: chaos pixels diverged"
        );
        assert_conservation(&format!("tasked/{label}"), &tasked);
    }
}

/// A write-error window that outlives the retry budget *and* the one
/// ring re-creation: every spill is denied, the payloads ride resident
/// over budget, and the run finishes complete (not degraded — nothing
/// was lost) with the exact fault-free image.
#[test]
fn persistent_write_errors_deny_spills_never_bits() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    for (label, spec) in [
        ("dd", four_stage(&hosts, WritePolicy::demand_driven())),
        ("tile-hash", tiled(&hosts)),
    ] {
        let clean = run_pipeline(&topo, &tight, &spec).expect("budgeted fault-free run");
        assert!(clean.report.ooc.spills > 0, "{label}: budget must spill");
        let plan = persistent_plan(&hosts, 0xDEAD, DiskFaultKind::Write);
        let denied = run_pipeline_faulted(&topo, &tight, &spec, FaultOptions::new(plan))
            .expect("write-denied run completes");
        let f = &denied.report.faults;
        assert!(f.spills_denied > 0, "{label}: denials tallied: {f:?}");
        assert_eq!(
            denied.report.ooc.spills, 0,
            "{label}: a dead spill path writes nothing"
        );
        assert_eq!(f.buffers_lost, 0, "{label}: denial is not loss: {f:?}");
        assert!(!f.degraded, "{label}: nothing lost: {f:?}");
        assert_eq!(
            denied.report.ooc.resident_bytes(),
            0,
            "{label}: over-budget charges still drain on consumption"
        );
        assert_eq!(
            denied.image.diff_pixels(&clean.image),
            0,
            "{label}: graceful degradation costs headroom, never bits"
        );
        assert_conservation(&format!("denied/{label}"), &denied);
    }
}

/// Every fault-in read comes back with one seeded bit flipped: the frame
/// checksum catches each one, the buffer falls back to loss-accounted
/// recovery, and the run completes degraded with exact conservation —
/// never an abort, never an undetected wrong pixel source.
#[test]
fn corrupt_reads_are_detected_and_loss_accounted() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    for (label, spec) in [
        ("dd", four_stage(&hosts, WritePolicy::demand_driven())),
        ("tile-hash", tiled(&hosts)),
    ] {
        let clean = run_pipeline(&topo, &tight, &spec).expect("budgeted fault-free run");
        assert!(clean.report.ooc.spills > 0, "{label}: budget must spill");
        let plan = corruption_plan(&hosts, 0xB17);
        let hurt = run_pipeline_faulted(&topo, &tight, &spec, FaultOptions::new(plan))
            .expect("corrupted run completes degraded, never aborts");
        let f = &hurt.report.faults;
        assert!(
            f.corruptions_detected > 0,
            "{label}: checksums must catch the flips: {f:?}"
        );
        assert_eq!(
            f.corruptions_detected, f.buffers_lost,
            "{label}: every detection is accounted as exactly one loss"
        );
        assert!(f.bytes_lost > 0, "{label}: {f:?}");
        assert!(f.degraded, "{label}: losses mark the run degraded: {f:?}");
        assert_conservation(&format!("corrupt/{label}"), &hurt);
    }
}

/// Reads that fail on every retry attempt (no corruption — the disk just
/// will not return the frame) exhaust the budget and fall back to the
/// same loss-accounted recovery, with the ring slot reclaimed.
#[test]
fn unreadable_spills_fall_back_to_loss_accounting() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    let spec = four_stage(&hosts, WritePolicy::demand_driven());
    let plan = persistent_plan(&hosts, 0x0BAD, DiskFaultKind::Read);
    let hurt = run_pipeline_faulted(&topo, &tight, &spec, FaultOptions::new(plan))
        .expect("unreadable-spill run completes degraded, never aborts");
    let f = &hurt.report.faults;
    assert!(f.disk_errors_injected > 0, "{f:?}");
    assert!(
        f.storage_retries > 0,
        "the ladder must burn its retry budget first: {f:?}"
    );
    assert!(f.buffers_lost > 0, "exhausted reads are lost: {f:?}");
    assert_eq!(f.corruptions_detected, 0, "no flips were injected: {f:?}");
    assert!(f.degraded, "{f:?}");
    assert_conservation("unreadable/dd", &hurt);
}

/// A degraded-disk window (quarter throughput on every host for the
/// whole run) is a pure virtual-time effect: the budgeted run takes
/// longer and renders the exact same pixels.
#[test]
fn degraded_disk_costs_time_never_bits() {
    let (topo, hosts) = cluster(5);
    let cfg = test_cfg(test_dataset(11), vec![hosts[0]], 96);
    let tight = budgeted(&cfg, 16);
    let spec = four_stage(&hosts, WritePolicy::RoundRobin);
    let clean = run_pipeline(&topo, &tight, &spec).expect("budgeted fault-free run");
    assert!(clean.report.ooc.spills > 0, "budget must spill");
    let mut plan = FaultPlan::new();
    for &h in &hosts {
        plan = plan.degrade_disk(h, SimTime::ZERO, whole_run(), 0.25);
    }
    let slow = run_pipeline_faulted(&topo, &tight, &spec, FaultOptions::new(plan))
        .expect("degraded-disk run completes");
    let f = &slow.report.faults;
    assert_eq!(f.buffers_lost, 0, "{f:?}");
    assert_eq!(f.disk_errors_injected, 0, "{f:?}");
    assert!(
        slow.elapsed > clean.elapsed,
        "a quarter-speed spill disk must cost virtual time \
         (clean {:?}, degraded {:?})",
        clean.elapsed,
        slow.elapsed
    );
    assert_eq!(
        slow.image.diff_pixels(&clean.image),
        0,
        "disk derating may cost time, never bits"
    );
}
