//! Offline shim for `serde_derive`: the `Serialize`/`Deserialize` derives
//! expand to nothing. The workspace annotates types for future wire
//! formats but never serializes today, so empty expansions are sound.
//! See `shims/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
