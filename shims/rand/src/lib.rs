//! Offline shim for `rand`: a deterministic `SmallRng` (splitmix64) with
//! the `Rng::gen_range` / `SeedableRng::seed_from_u64` subset the
//! workspace uses. Output differs from the real rand crate, but every
//! consumer only relies on *determinism per seed*, which holds.
//! See `shims/README.md`.

#![warn(missing_docs)]

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, blanket-implemented for all [`RngCore`] types.
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($t:ty, $bits:expr) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                range.start + unit * (range.end - range.start)
            }
        }
    };
}
impl_sample_float!(f32, 24);
impl_sample_float!(f64, 53);

macro_rules! impl_sample_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    };
}
impl_sample_int!(u8);
impl_sample_int!(u16);
impl_sample_int!(u32);
impl_sample_int!(u64);
impl_sample_int!(usize);

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(0.15f32..0.85);
            assert!((0.15..0.85).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = r.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
