//! Offline shim for `parking_lot`: `Mutex`/`MutexGuard`/`Condvar` backed
//! by `std::sync`, with parking_lot's no-poison `lock()` and
//! `Condvar::wait(&mut guard)` signatures. See `shims/README.md` for why
//! this exists.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// through `std`'s consume-and-return wait and
/// [`MutexGuard::unlocked`] can temporarily release the lock; the slot
/// is only empty during those calls. The back-reference to the owning
/// mutex is what lets `unlocked` (and `mutex`) reacquire it, matching
/// lock_api's guard layout.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike std, a panic in
    /// another holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            mutex: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: self,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                mutex: self,
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// The mutex this guard locks (associated function, parking_lot
    /// style, so it cannot collide with a `Deref`ed method).
    pub fn mutex(s: &Self) -> &'a Mutex<T> {
        s.mutex
    }

    /// Temporarily unlock the mutex, run `f`, and relock before
    /// returning (parking_lot's `MutexGuard::unlocked`). The data must
    /// not be accessed from inside `f`; if `f` panics the lock is left
    /// released and the guard inert (dropping it is a no-op).
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        drop(s.inner.take());
        let r = f();
        s.inner = Some(s.mutex.inner.lock().unwrap_or_else(|e| e.into_inner()));
        r
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed condition-variable wait ([`Condvar::wait_for`]).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`], parking_lot-style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// As [`Condvar::wait`], but give up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] telling whether the wait timed out (the lock
    /// is reacquired before returning either way).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        *g = 1;
        let m2 = m.clone();
        MutexGuard::unlocked(&mut g, move || {
            // The lock is genuinely free here: another owner can take it.
            *m2.lock() += 10;
        });
        assert_eq!(*g, 11, "reacquired and sees the concurrent update");
        assert!(std::ptr::eq(MutexGuard::mutex(&g), &*m));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        assert!(t.join().unwrap());
    }
}
