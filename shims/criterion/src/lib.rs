//! Offline shim for `criterion`: a minimal benchmark harness exposing the
//! `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_function` / `Bencher::iter` surface. Timing is wall-clock with a
//! calibration pass, a warm-up pass, and a median over fixed-size samples.
//! Results are printed to stdout and retained on the [`Criterion`] value so
//! harness binaries can export them (e.g. to JSON). See `shims/README.md`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Inhibit constant-folding of benchmark inputs/outputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All results measured so far (for JSON export by harness binaries).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        // Calibrate: how long does one iteration take?
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let mut per_iter;
        loop {
            f(&mut b);
            per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            if b.elapsed >= Duration::from_millis(1) || b.iters >= 1 << 20 {
                break;
            }
            b.iters *= 8;
        }
        // Warm up.
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            f(&mut b);
        }
        // Measure: sample_size samples of ~(measurement / sample_size) each.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median_ns = samples[samples.len() / 2];
        println!(
            "{:<44} time: {:>12}/iter{}",
            id,
            fmt_ns(median_ns),
            fmt_thrpt(throughput, median_ns)
        );
        self.results.push(BenchResult {
            id,
            median_ns,
            throughput,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_thrpt(t: Option<Throughput>, median_ns: f64) -> String {
    match t {
        None => String::new(),
        Some(Throughput::Elements(n)) => {
            format!("   thrpt: {:.2} Melem/s", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "   thrpt: {:.2} MiB/s",
                n as f64 / median_ns * 1e9 / (1 << 20) as f64
            )
        }
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measure one benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.c.run_one(id, self.throughput, &mut f);
        self
    }

    /// Close the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing it.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut c = $config;
            $($target(&mut c);)*
            c
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $(let _ = $group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
        assert_eq!(c.results()[0].id, "g/sum");
    }
}
