//! Offline shim for `bytes`: `Bytes`/`BytesMut` backed by a plain
//! `Vec<u8>`. No refcounted slicing — the workspace only builds buffers
//! and reads them whole. See `shims/README.md`.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        let f = b.freeze();
        assert_eq!(&f[..], &[1, 2, 3]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.to_vec(), vec![1, 2, 3]);
    }
}
