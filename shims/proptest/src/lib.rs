//! Offline shim for `proptest`: a deterministic mini property-testing
//! harness exposing the subset of the proptest macro surface this
//! workspace uses — the `proptest!` item macro, range / tuple / `any` /
//! `prop::collection::vec` strategies, and the `prop_assert*` family.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! reports its case index and message, and cases are derived
//! deterministically from the test's module path and name, so failures
//! reproduce exactly on re-run. See `shims/README.md`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Sentinel error message used by `prop_assume!` to signal "skip this
/// case" rather than "fail the test".
pub const ASSUME_REJECT: &str = "__proptest_shim_assume_reject__";

/// Per-test configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case entropy source (splitmix64 seeded from the test
/// identity and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 1 | 1),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Implemented for ranges, tuples, [`Any`], and
/// collection strategies.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($t:ty, $bits:expr) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    };
}
impl_range_strategy_float!(f32, 24);
impl_range_strategy_float!(f64, 53);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy drawing unconstrained values of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Mirror of the `proptest::prop` module path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with random length and elements.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// A `Vec` strategy: `len` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!`-using test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// The top-level item macro: wraps `fn name(arg in strategy, ...) { .. }`
/// test definitions into plain `#[test]` functions running N deterministic
/// cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__name, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                match __run() {
                    Ok(()) => {}
                    Err(__msg) if __msg == $crate::ASSUME_REJECT => {}
                    Err(__msg) => panic!(
                        "property failed at case {}/{}: {}",
                        __case, __cfg.cases, __msg
                    ),
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// `assert!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::ASSUME_REJECT.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u32..20, y in 1u32..=4, f in 0.25f32..0.75) {
            prop_assert!((3..20).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0u32..8, any::<[u8; 3]>()), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (x, _rgb) in &v {
                prop_assert!(*x < 8);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_propagate() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "boom");
            }
        }
        always_fails();
    }
}
