//! Offline shim for `serde`: marker traits plus no-op derive macros.
//! `use serde::{Serialize, Deserialize}` imports both the trait and the
//! derive of each name (they live in different namespaces), exactly like
//! the real crate. Nothing in the workspace serializes today; the derives
//! exist so type annotations keep compiling. See `shims/README.md`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
