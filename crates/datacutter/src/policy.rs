//! Writer policies: how a producer copy picks which consumer copy set
//! receives each stream buffer (Section 2 of the paper).
//!
//! * **Round Robin (RR)** — cycle over consumer hosts, one buffer each.
//!   Zero overhead, load-oblivious.
//! * **Weighted Round Robin (WRR)** — cycle with each host appearing once
//!   per transparent copy it runs, so buffer counts are proportional to
//!   copy counts. Zero overhead, capacity-aware but load-oblivious.
//! * **Demand Driven (DD)** — a sliding-window credit scheme: consumers
//!   acknowledge each buffer as they start processing it; the producer
//!   sends to the copy set with the fewest unacknowledged buffers (ties
//!   prefer co-located copy sets) and blocks when every copy set is at its
//!   window limit. Adapts to load at the cost of ack traffic.
//! * **Tile Hash (TH)** — content-addressed: the producer stamps each
//!   buffer with a tile index ([`crate::FilterCtx::write_tile`]) and the
//!   buffer goes to the copy set owning that tile (`tile mod sets`). Every
//!   fragment of a tile lands on the same consumer, so a group of merge
//!   copies can composite disjoint image regions in parallel. Zero
//!   overhead, no acks; under a fault plan a dead owner's tiles fall
//!   through deterministically to the next live set.

use std::sync::{Arc, Weak};

use hetsim::{HostId, ProcessId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::fault::FaultCtl;
use crate::runtime::native::{CancelScope, CancelWake};
use crate::runtime::park::{ParkSite, Parking};
use crate::runtime::ExecEnv;

/// Policy selector carried in stream specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Round robin over consumer copy sets.
    RoundRobin,
    /// Round robin weighted by copies per host.
    WeightedRoundRobin,
    /// Demand-driven sliding window with this many in-flight
    /// (unacknowledged) buffers allowed per consumer *copy*.
    DemandDriven {
        /// Window per consumer copy; a copy set's window is
        /// `window_per_copy × copies`.
        window_per_copy: u32,
    },
    /// Tile-hash routing: buffers written with
    /// [`crate::FilterCtx::write_tile`] go to the copy set owning the
    /// stamped tile (`tile mod sets`). Plain `write`s on a tile-hash
    /// stream fall back to round robin.
    TileHash,
}

impl WritePolicy {
    /// The demand-driven policy with the default window (2 buffers per
    /// consumer copy: one in processing, one queued).
    pub fn demand_driven() -> WritePolicy {
        WritePolicy::DemandDriven { window_per_copy: 2 }
    }

    /// Short display label used by the experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            WritePolicy::RoundRobin => "RR",
            WritePolicy::WeightedRoundRobin => "WRR",
            WritePolicy::DemandDriven { .. } => "DD",
            WritePolicy::TileHash => "TH",
        }
    }
}

/// Static description of one consumer copy set (all copies of the consumer
/// filter on one host).
#[derive(Debug, Clone, Copy)]
pub struct CopySetInfo {
    /// Host the copy set runs on.
    pub host: HostId,
    /// Number of transparent copies in the set.
    pub copies: u32,
    /// The consumer filter the set belongs to.
    pub filter: crate::graph::FilterId,
    /// Global (per-filter) index of the set's first copy; copies
    /// `first_copy .. first_copy + copies` make up the set. Together with
    /// `filter` this lets liveness queries consult the per-copy death
    /// registry, not just the host's scheduled crash.
    pub first_copy: usize,
}

/// Per-producer-copy policy state.
pub struct WriterState {
    inner: WriterInner,
}

enum WriterInner {
    /// RR / WRR: a precomputed cyclic schedule of copy-set indices.
    Cyclic {
        /// Copy-set index per slot, repeated cyclically.
        schedule: Vec<usize>,
        /// Next slot.
        pos: usize,
        /// Copy-set descriptions (for liveness checks under a fault plan).
        sets: Vec<CopySetInfo>,
        /// Fault control block, when a plan is active.
        faults: Option<Arc<FaultCtl>>,
    },
    /// DD: shared credit state (also referenced by ack couriers).
    Demand(Arc<DemandState>),
}

impl WriterState {
    /// Build the state for `policy` over `sets`, for a producer running on
    /// `producer_host`.
    pub fn new(policy: WritePolicy, sets: &[CopySetInfo], producer_host: HostId) -> Self {
        Self::for_run(policy, sets, producer_host, None, None)
    }

    /// As [`WriterState::new`], threading the runtime's fault control block
    /// (so writers evict detectably-dead consumer hosts) and the native
    /// executor's cancellation scope (so demand-driven producers blocked
    /// on window credit unblock when a failed run tears down).
    pub(crate) fn for_run(
        policy: WritePolicy,
        sets: &[CopySetInfo],
        producer_host: HostId,
        faults: Option<Arc<FaultCtl>>,
        cancel: Option<Arc<CancelScope>>,
    ) -> Self {
        let inner = match policy {
            // Tile-hash keeps the cyclic machinery for the rare untargeted
            // `write` (round-robin fallback); `select_tile` does the
            // content-addressed routing off the same set table.
            WritePolicy::RoundRobin | WritePolicy::TileHash => WriterInner::Cyclic {
                schedule: (0..sets.len()).collect(),
                pos: 0,
                sets: sets.to_vec(),
                faults,
            },
            WritePolicy::WeightedRoundRobin => {
                // Interleave hosts proportionally to copy counts rather than
                // bursting: emit one round per "virtual slot".
                let max_copies = sets.iter().map(|s| s.copies).max().unwrap_or(1);
                let mut schedule = Vec::new();
                for round in 0..max_copies {
                    for (i, s) in sets.iter().enumerate() {
                        if round < s.copies {
                            schedule.push(i);
                        }
                    }
                }
                WriterInner::Cyclic {
                    schedule,
                    pos: 0,
                    sets: sets.to_vec(),
                    faults,
                }
            }
            WritePolicy::DemandDriven { window_per_copy } => {
                let state = Arc::new(DemandState::new(
                    sets,
                    producer_host,
                    window_per_copy,
                    faults,
                    cancel.clone(),
                ));
                if let Some(scope) = &cancel {
                    scope.register(Arc::downgrade(&state) as Weak<dyn CancelWake>);
                }
                WriterInner::Demand(state)
            }
        };
        WriterState { inner }
    }

    /// Pick the copy set for the next buffer, blocking (DD only) until a
    /// window slot is free. Under an active fault plan, consumer copy sets
    /// whose hosts are detectably dead are skipped, rebalancing their
    /// share onto the survivors.
    pub fn select(&mut self, env: &ExecEnv) -> usize {
        match &mut self.inner {
            WriterInner::Cyclic {
                schedule,
                pos,
                sets,
                faults,
            } => {
                let n = schedule.len();
                if let Some(ctl) = faults.as_ref().filter(|c| c.crashes_possible()) {
                    let now = env.now();
                    for _ in 0..n {
                        let idx = schedule[*pos];
                        *pos = (*pos + 1) % n;
                        if !ctl.set_detectably_dead(&sets[idx], now) {
                            return idx;
                        }
                    }
                    // Every consumer set is detectably dead: fall through to
                    // the scheduled pick; the dead set's reaper tallies the
                    // buffer as lost (degraded mode).
                }
                let idx = schedule[*pos];
                *pos = (*pos + 1) % n;
                idx
            }
            WriterInner::Demand(state) => state.acquire_slot(env),
        }
    }

    /// Pick the copy set owning `tile`: `tile mod sets`, the tile-hash
    /// routing rule. Deterministic and stateless, so every producer copy
    /// agrees on the owner without coordination and every fragment of a
    /// tile lands on the same consumer. Under an active fault plan a
    /// detectably-dead owner's tiles fall through to the next live set in
    /// index order (`(owner + k) mod sets`) — still deterministic, so
    /// rerouted fragments of one tile stay together. When every set is
    /// dead the nominal owner is returned and its reaper tallies the
    /// buffer as lost (degraded mode).
    pub fn select_tile(&self, env: &ExecEnv, tile: u64) -> usize {
        let (n, liveness) = match &self.inner {
            WriterInner::Cyclic { sets, faults, .. } => (
                sets.len(),
                faults
                    .as_ref()
                    .filter(|c| c.crashes_possible())
                    .map(|ctl| (ctl.clone(), sets)),
            ),
            WriterInner::Demand(state) => (state.inner.lock().sets.len(), None),
        };
        let owner = (tile % n.max(1) as u64) as usize;
        if let Some((ctl, sets)) = liveness {
            let now = env.now();
            for k in 0..n {
                let idx = (owner + k) % n;
                if !ctl.set_detectably_dead(&sets[idx], now) {
                    return idx;
                }
            }
        }
        owner
    }

    /// DD shared state, if this writer is demand-driven.
    pub fn demand_state(&self) -> Option<Arc<DemandState>> {
        match &self.inner {
            WriterInner::Demand(s) => Some(s.clone()),
            _ => None,
        }
    }
}

/// Shared demand-driven credit state for one producer copy.
pub struct DemandState {
    inner: Mutex<DemandInner>,
    /// Native producers blocked on window credit wait here (the sim path
    /// uses the engine's wake list in `DemandInner::waiters` instead).
    /// A [`ParkSite`] rather than a bare condvar so the same code blocks
    /// correctly on both wall-clock substrates — thread-parked under the
    /// native executor, waker-parked (slot-releasing) under the tasked
    /// one. The site kind follows the run's cancel scope.
    credit: ParkSite,
    producer_host: HostId,
    faults: Option<Arc<FaultCtl>>,
    /// Cancellation scope of a native run, so blocked producers unblock
    /// during teardown.
    cancel: Option<Arc<CancelScope>>,
}

impl CancelWake for DemandState {
    fn wake_all(&self) {
        self.credit.notify_all();
    }
}

struct DemandInner {
    sets: Vec<CopySetInfo>,
    unacked: Vec<u32>,
    window: Vec<u32>,
    waiters: Vec<ProcessId>,
    /// Native producers currently parked on the credit condvar; acks skip
    /// the `notify_all` syscall entirely when this is zero (the common
    /// case: windows rarely fill).
    native_waiting: usize,
    /// Cumulative buffers sent per copy set (metrics).
    sent: Vec<u64>,
    /// Rotating scan start so ties among remote copy sets spread evenly
    /// instead of biasing toward low indices.
    cursor: usize,
    /// Reused per-set liveness mask so fault-plan runs don't allocate one
    /// `Vec<bool>` per `acquire_slot` call.
    dead_scratch: Vec<bool>,
}

impl DemandState {
    fn new(
        sets: &[CopySetInfo],
        producer_host: HostId,
        window_per_copy: u32,
        faults: Option<Arc<FaultCtl>>,
        cancel: Option<Arc<CancelScope>>,
    ) -> Self {
        DemandState {
            inner: Mutex::new(DemandInner {
                sets: sets.to_vec(),
                unacked: vec![0; sets.len()],
                window: sets
                    .iter()
                    .map(|s| window_per_copy.max(1) * s.copies.max(1))
                    .collect(),
                waiters: Vec::new(),
                native_waiting: 0,
                sent: vec![0; sets.len()],
                cursor: 0,
                dead_scratch: Vec::with_capacity(sets.len()),
            }),
            credit: cancel
                .as_ref()
                .map(|c| c.parking())
                .unwrap_or(Parking::Thread)
                .site(),
            producer_host,
            faults,
            cancel,
        }
    }

    /// Host of the producer copy owning this state (acks are addressed to
    /// it so the reverse network path is charged).
    pub fn producer_host(&self) -> HostId {
        self.producer_host
    }

    /// Block until some copy set has window room, then take a slot on the
    /// least-loaded one. Ties prefer a co-located copy set; among equally
    /// loaded remote sets a rotating cursor spreads the choice evenly.
    ///
    /// Under a fault plan: detectably-dead consumer sets are skipped (their
    /// window share rebalances onto survivors); if *every* set is dead the
    /// buffer is routed anyway, ignoring window limits — the dead set's
    /// reaper acknowledges salvaged buffers (and its `reroute` wakes
    /// blocked producers), so this cannot deadlock.
    ///
    /// Blocking is substrate-specific: sim producers park on the engine's
    /// wake list (`env.block()`), native producers wait on the condvar
    /// *while holding the credit lock*, so an ack can never slip between
    /// the failed scan and the wait (no lost wakeups).
    fn acquire_slot(&self, env: &ExecEnv) -> usize {
        loop {
            let mut st = self.inner.lock();
            let n = st.sets.len();
            let mut use_dead = false;
            if let Some(ctl) = self.faults.as_ref().filter(|c| c.crashes_possible()) {
                let now = env.now();
                // Split borrow: refill the reused mask in place instead of
                // collecting a fresh Vec<bool> per call.
                let DemandInner {
                    sets, dead_scratch, ..
                } = &mut *st;
                dead_scratch.clear();
                dead_scratch.extend(sets.iter().map(|s| ctl.set_detectably_dead(s, now)));
                if dead_scratch.iter().all(|&d| d) {
                    // Degraded: no surviving consumer set. Route to the
                    // least-unacked set regardless of its window.
                    let i = (0..n).min_by_key(|&i| st.unacked[i]).unwrap_or(0);
                    st.unacked[i] += 1;
                    st.sent[i] += 1;
                    st.cursor = (i + 1) % n;
                    return i;
                }
                use_dead = true;
            }
            let start = st.cursor;
            let mut best: Option<usize> = None;
            for k in 0..n {
                let i = (start + k) % n;
                if (use_dead && st.dead_scratch[i]) || st.unacked[i] >= st.window[i] {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        // Fewest unacked wins; on ties a co-located set
                        // beats a remote one (scan order settles
                        // remote-vs-remote ties).
                        let better = st.unacked[i] < st.unacked[b]
                            || (st.unacked[i] == st.unacked[b]
                                && st.sets[i].host == self.producer_host
                                && st.sets[b].host != self.producer_host);
                        Some(if better { i } else { b })
                    }
                };
            }
            if let Some(i) = best {
                st.unacked[i] += 1;
                st.sent[i] += 1;
                st.cursor = (i + 1) % n;
                return i;
            }
            match env {
                ExecEnv::Sim(sim_env) => {
                    st.waiters.push(sim_env.pid());
                    drop(st);
                    match self.faults.as_ref().filter(|c| c.crashes_possible()) {
                        // Timed block so we re-probe liveness: an ack may
                        // never come from a consumer set that died with our
                        // credit outstanding.
                        Some(ctl) => {
                            sim_env.block_until(sim_env.now() + ctl.timeout);
                        }
                        None => sim_env.block(),
                    }
                }
                ExecEnv::Native(_) => {
                    if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                        // Teardown: hand out a slot so the producer can keep
                        // unwinding (its sends discard under a cancelled
                        // scope anyway).
                        let i = (0..n).min_by_key(|&i| st.unacked[i]).unwrap_or(0);
                        st.unacked[i] += 1;
                        st.sent[i] += 1;
                        st.cursor = (i + 1) % n;
                        return i;
                    }
                    st.native_waiting += 1;
                    match self.faults.as_ref().filter(|c| c.crashes_possible()) {
                        // Timed wait for the same reason as the sim path
                        // above: the ack releasing our credit may never
                        // arrive from a consumer set that died (or is
                        // declared dead by the supervisor) while holding it.
                        Some(ctl) => {
                            let _timed_out = self.credit.wait_for(
                                &mut st,
                                std::time::Duration::from_nanos(ctl.timeout.as_nanos()),
                            );
                        }
                        None => self.credit.wait(&mut st),
                    }
                    st.native_waiting -= 1;
                }
            }
        }
    }

    /// Move one outstanding (unacknowledged) buffer from dead copy set
    /// `from` to the least-loaded set among `alive`, ignoring window
    /// limits, and wake blocked producers. Returns the chosen set, or
    /// `None` (releasing the credit) when no survivor exists. Used by the
    /// runtime's reaper when replaying buffers salvaged from a dead set's
    /// queue.
    pub(crate) fn reroute(&self, env: &ExecEnv, from: usize, alive: &[usize]) -> Option<usize> {
        let (pick, waiters, native_waiting) = {
            let mut st = self.inner.lock();
            st.unacked[from] = st.unacked[from].saturating_sub(1);
            let pick = alive.iter().copied().min_by_key(|&i| st.unacked[i]);
            if let Some(i) = pick {
                st.unacked[i] += 1;
                st.sent[i] += 1;
            }
            (pick, std::mem::take(&mut st.waiters), st.native_waiting)
        };
        self.wake(env, waiters, native_waiting);
        pick
    }

    /// Record an acknowledgment from copy set `idx`, releasing one window
    /// slot and waking any blocked producer.
    pub fn ack(&self, env: &ExecEnv, idx: usize) {
        let (waiters, native_waiting) = {
            let mut st = self.inner.lock();
            st.unacked[idx] = st.unacked[idx].saturating_sub(1);
            (std::mem::take(&mut st.waiters), st.native_waiting)
        };
        self.wake(env, waiters, native_waiting);
    }

    /// Wake producers blocked on window credit: sim processes by pid, native
    /// threads via the condvar (the waiter re-checks under the lock, so
    /// notifying after releasing it is safe). The waiter list's capacity is
    /// donated back to the shared state so steady-state acks never allocate.
    fn wake(&self, env: &ExecEnv, mut waiters: Vec<ProcessId>, native_waiting: usize) {
        match env {
            ExecEnv::Sim(e) => {
                for pid in waiters.drain(..) {
                    e.wake(pid);
                }
                if waiters.capacity() > 0 {
                    let mut st = self.inner.lock();
                    if st.waiters.capacity() < waiters.capacity() {
                        let prev = std::mem::replace(&mut st.waiters, waiters);
                        st.waiters.extend(prev);
                    }
                }
            }
            ExecEnv::Native(_) => {
                if native_waiting > 0 {
                    self.credit.notify_all();
                }
            }
        }
    }

    /// Buffers sent per copy set so far.
    pub fn sent_counts(&self) -> Vec<u64> {
        self.inner.lock().sent.clone()
    }

    /// Currently unacknowledged buffers per copy set.
    pub fn unacked_counts(&self) -> Vec<u32> {
        self.inner.lock().unacked.clone()
    }
}

/// Handle shipped inside a buffer so the consumer can acknowledge it back
/// to the producing copy (DD only).
#[derive(Clone)]
pub struct AckHandle {
    /// The producer copy's credit state.
    pub state: Arc<DemandState>,
    /// Which copy set received the buffer.
    pub copyset_idx: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::Simulation;

    fn set(host: HostId, copies: u32, first_copy: usize) -> CopySetInfo {
        CopySetInfo {
            host,
            copies,
            filter: crate::graph::FilterId(0),
            first_copy,
        }
    }

    fn sets3() -> Vec<CopySetInfo> {
        vec![
            set(HostId(0), 1, 0),
            set(HostId(1), 2, 1),
            set(HostId(2), 1, 3),
        ]
    }

    #[test]
    fn rr_cycles_uniformly() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(WritePolicy::RoundRobin, &sets, HostId(0));
            let picks: Vec<usize> = (0..6).map(|_| w.select(&env)).collect();
            assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn wrr_weights_by_copies() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(WritePolicy::WeightedRoundRobin, &sets, HostId(0));
            let picks: Vec<usize> = (0..8).map(|_| w.select(&env)).collect();
            // Schedule: round 0 -> 0,1,2; round 1 -> 1 (only host1 has 2
            // copies); then repeats.
            assert_eq!(picks, vec![0, 1, 2, 1, 0, 1, 2, 1]);
            let count1 = picks.iter().filter(|&&p| p == 1).count();
            assert_eq!(count1, 4); // twice the share of the others
        });
        sim.run().unwrap();
    }

    #[test]
    fn dd_prefers_least_unacked() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(
                WritePolicy::DemandDriven { window_per_copy: 4 },
                &sets,
                HostId(9), // not co-located with any set
            );
            // First pick: all zero -> first index wins.
            assert_eq!(w.select(&env), 0);
            // Now set 0 has 1 unacked; next pick goes elsewhere.
            assert_eq!(w.select(&env), 1);
            assert_eq!(w.select(&env), 2);
            let st = w.demand_state().unwrap();
            assert_eq!(st.unacked_counts(), vec![1, 1, 1]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dd_ties_prefer_local() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(
                WritePolicy::DemandDriven { window_per_copy: 4 },
                &sets,
                HostId(1), // co-located with set index 1
            );
            assert_eq!(w.select(&env), 1);
        });
        sim.run().unwrap();
    }

    #[test]
    fn dd_blocks_at_window_until_ack() {
        let mut sim = Simulation::new();
        let sets = vec![set(HostId(0), 1, 0)];
        let state_slot: Arc<Mutex<Option<Arc<DemandState>>>> = Arc::new(Mutex::new(None));
        let slot2 = state_slot.clone();
        let progress: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let prog2 = progress.clone();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(
                WritePolicy::DemandDriven { window_per_copy: 1 },
                &sets,
                HostId(5),
            );
            *slot2.lock() = Some(w.demand_state().unwrap());
            for _ in 0..2 {
                let _ = w.select(&env);
                prog2.lock().push(env.now().as_nanos());
            }
        });
        sim.spawn("acker", move |env| {
            env.delay(hetsim::SimDuration::from_millis(50));
            let env = ExecEnv::from(env);
            let st = state_slot.lock().clone().expect("producer ran first");
            st.ack(&env, 0);
        });
        sim.run().unwrap();
        let p = progress.lock().clone();
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 50_000_000, "second send must wait for the ack");
    }

    #[test]
    fn dd_window_scales_with_copies() {
        let mut sim = Simulation::new();
        let sets = vec![set(HostId(0), 3, 0)];
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(
                WritePolicy::DemandDriven { window_per_copy: 2 },
                &sets,
                HostId(5),
            );
            // Window = 2 * 3 = 6 slots available without blocking.
            for _ in 0..6 {
                let _ = w.select(&env);
            }
            let st = w.demand_state().unwrap();
            assert_eq!(st.unacked_counts(), vec![6]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn tile_hash_routes_by_tile_modulo_sets() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let w = WriterState::new(WritePolicy::TileHash, &sets, HostId(0));
            let picks: Vec<usize> = (0..7).map(|t| w.select_tile(&env, t)).collect();
            assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
            // Same tile, same owner — always.
            for _ in 0..3 {
                assert_eq!(w.select_tile(&env, 4), 1);
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn tile_hash_is_deterministic_across_writers() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            // Two independent producers (different hosts, fresh state) must
            // agree on every owner: the routing is content-addressed.
            let a = WriterState::new(WritePolicy::TileHash, &sets, HostId(0));
            let b = WriterState::new(WritePolicy::TileHash, &sets, HostId(2));
            for t in 0..64u64 {
                assert_eq!(a.select_tile(&env, t), b.select_tile(&env, t), "tile {t}");
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn tile_hash_falls_through_dead_owner_deterministically() {
        use crate::fault::FaultCtl;
        use hetsim::{FaultPlan, SimDuration, SimTime};
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            // Host 1 (owner of tiles ≡ 1 mod 3) dies at t=0; after the
            // liveness timeout its tiles fall through to set 2.
            let plan = FaultPlan::new().crash_host(HostId(1), SimTime::ZERO);
            let opts =
                crate::fault::FaultOptions::new(plan).liveness_timeout(SimDuration::from_millis(1));
            let ctl = FaultCtl::new(&opts);
            env.delay(SimDuration::from_millis(5)); // past detection
            let env = ExecEnv::from(env);
            let w = WriterState::for_run(WritePolicy::TileHash, &sets, HostId(0), Some(ctl), None);
            assert_eq!(w.select_tile(&env, 0), 0, "live owner keeps its tiles");
            assert_eq!(
                w.select_tile(&env, 1),
                2,
                "dead owner falls to next live set"
            );
            assert_eq!(w.select_tile(&env, 4), 2, "fall-through is stable per tile");
            assert_eq!(w.select_tile(&env, 2), 2);
        });
        sim.run().unwrap();
    }

    #[test]
    fn tile_hash_plain_write_falls_back_to_round_robin() {
        let mut sim = Simulation::new();
        let sets = sets3();
        sim.spawn("p", move |env| {
            let env = ExecEnv::from(env);
            let mut w = WriterState::new(WritePolicy::TileHash, &sets, HostId(0));
            let picks: Vec<usize> = (0..6).map(|_| w.select(&env)).collect();
            assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        });
        sim.run().unwrap();
    }

    #[test]
    fn labels() {
        assert_eq!(WritePolicy::RoundRobin.label(), "RR");
        assert_eq!(WritePolicy::WeightedRoundRobin.label(), "WRR");
        assert_eq!(WritePolicy::demand_driven().label(), "DD");
        assert_eq!(WritePolicy::TileHash.label(), "TH");
    }
}
