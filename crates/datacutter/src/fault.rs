//! Failure handling for the filter runtime: structured run errors, the
//! fault-injection options accepted by `Run::faults`, and the internal
//! control block threaded through the runtime while a fault plan is
//! active.
//!
//! The recovery model (see DESIGN.md §8): hosts fail *fail-stop* and a
//! crashed filter copy is observed dead at its next stream-read (or write)
//! boundary, so every buffer it already dequeued — and therefore
//! acknowledged under the demand-driven policy — is fully processed and
//! its output flushed. Buffers still queued at (or sent to) a dead copy
//! set are salvaged by a per-set reaper process and, when they carry a DD
//! ack handle, *replayed* to a surviving copy set; ack-less buffers
//! (RR/WRR or `write_to` routing) cannot be safely re-addressed and are
//! counted as lost, completing the run in degraded mode.
//!
//! Both execution substrates consult the same [`FaultPlan`] oracle — the
//! simulator on virtual time, the native executor on wall-clock
//! nanoseconds since run start (the same `SimTime` axis) — so a plan's
//! crash/stall/drop schedule injects the *same* faults on both (DESIGN.md
//! §11). Two pieces are native-only: the [`SupervisorPolicy`] restart
//! machinery (a panicking copy is re-instantiated with seeded, jittered
//! exponential backoff up to a bounded budget) and the wall-clock
//! heartbeat scan that declares silently wedged copies dead. Deaths
//! declared at runtime — a copy whose restart budget is exhausted, or a
//! wedged copy — land in [`FaultCtl`]'s *dynamic* death registry, and the
//! oracle queries used by gates, writer policies and reapers merge the
//! static plan with that registry, so the recovery machinery built for
//! scheduled crashes handles supervised deaths identically.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use hetsim::{FaultPlan, HostId, SimDuration, SimError, SimTime};
use parking_lot::Mutex;

use crate::graph::FilterId;
use crate::policy::CopySetInfo;

/// A structured error from a pipeline run — either a failure of the
/// simulation substrate or an application-level failure surfaced by the
/// runtime (the former panic-on-error paths).
#[derive(Debug)]
pub enum RunError {
    /// The simulation itself failed (deadlock or an unexpected panic).
    Sim(SimError),
    /// A filter's `process` callback returned an error.
    Filter {
        /// Name of the failing filter.
        filter: String,
        /// Which transparent copy failed.
        copy: usize,
        /// Host the copy ran on.
        host: HostId,
        /// Unit of work being processed.
        uow: u32,
        /// The filter's error message.
        message: String,
    },
    /// A filter callback panicked and the run could not absorb it: either
    /// no supervision was configured (panics are contained but fatal to
    /// the run), or the copy's restart budget was exhausted with degraded
    /// completion disallowed. The panic never propagates out of `Run::go`
    /// as an unwind — it is always converted to this variant.
    FilterPanic {
        /// Name of the panicking filter.
        filter: String,
        /// Which transparent copy panicked.
        copy: usize,
        /// Host the copy ran on.
        host: HostId,
        /// Unit of work being processed when the panic unwound.
        uow: u32,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A consumer's acknowledgment courier queue stayed full past the
    /// configured deadline (`Run::courier_deadline`): the courier is
    /// stuck, wedged, or drowned, and blocking longer would stall the
    /// consumer indefinitely.
    CourierStall {
        /// Name of the filter whose ack could not be handed off.
        filter: String,
        /// Which transparent copy stalled.
        copy: usize,
        /// Host the copy runs on.
        host: HostId,
        /// How long the copy waited for courier-queue room.
        waited: SimDuration,
    },
    /// A runtime channel closed while a filter copy still needed it (its
    /// sender process died early) — the typed replacement for the former
    /// "outbox closed" panic.
    ChannelClosed {
        /// Name of the filter left holding the dead endpoint.
        filter: String,
        /// Which transparent copy observed the closure.
        copy: usize,
        /// Host the copy runs on.
        host: HostId,
        /// What the channel carried (e.g. "outbox").
        what: &'static str,
    },
    /// Every copy set of a stream's consumer died and the run was not
    /// allowed to continue in degraded mode
    /// ([`FaultOptions::allow_degraded`] was `false`).
    NoSurvivingConsumers {
        /// Name of the stream whose buffers could not be delivered.
        stream: String,
    },
    /// The run was configured with a feature the selected executor does
    /// not support (e.g. NIC-degradation windows on the wall-clock native
    /// executor, which has no emulated NIC to throttle).
    Unsupported {
        /// Description of the unsupported combination.
        what: String,
    },
    /// The storage plane failed beyond what the self-healing ladder could
    /// absorb — or was not allowed to absorb, because no fault machinery
    /// was active to account the loss. Carries the structured
    /// [`StorageError`](crate::storage::StorageError) that refines the
    /// old stringly spill error.
    Storage {
        /// The structured storage failure (I/O, corruption, or ring
        /// creation).
        error: crate::storage::StorageError,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Filter {
                filter,
                copy,
                host,
                uow,
                message,
            } => write!(
                f,
                "filter '{filter}' copy {copy} on host{} failed in uow {uow}: {message}",
                host.0
            ),
            RunError::FilterPanic {
                filter,
                copy,
                host,
                uow,
                message,
            } => write!(
                f,
                "filter '{filter}' copy {copy} on host{} panicked in uow {uow}: {message}",
                host.0
            ),
            RunError::CourierStall {
                filter,
                copy,
                host,
                waited,
            } => write!(
                f,
                "ack courier queue full for {:.3}s: filter '{filter}' copy {copy} on host{} \
                 cannot hand off acknowledgments",
                waited.as_secs_f64(),
                host.0
            ),
            RunError::ChannelClosed {
                filter,
                copy,
                host,
                what,
            } => write!(
                f,
                "{what} channel closed while filter '{filter}' copy {copy} on host{} still \
                 needed it",
                host.0
            ),
            RunError::NoSurvivingConsumers { stream } => {
                write!(f, "no surviving consumer copy set on stream '{stream}'")
            }
            RunError::Unsupported { what } => {
                write!(f, "unsupported run configuration: {what}")
            }
            RunError::Storage { error } => {
                write!(f, "storage plane failed: {error}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Restart policy for supervised filter copies (native fault tolerance).
///
/// A filter copy whose callback panics under supervision is re-instantiated
/// in place — from its factory, on the same thread, holding the same
/// channel endpoints — after a seeded, jittered exponential backoff, up to
/// `max_restarts` times. Exhausting the budget declares the copy dead in
/// the dynamic death registry and the run continues degraded, exactly as
/// if the fault plan had scheduled the death (replay, loss accounting, gate
/// excusal all apply).
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Restart budget per copy (0 = contain the panic but never restart).
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the backoff envelope.
    pub backoff_cap: SimDuration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Period of the supervisor's heartbeat scan.
    pub heartbeat_interval: SimDuration,
    /// Declare a copy dead when its heartbeat has been silent this long
    /// (`None` disables wedge detection; a wedged copy's thread is
    /// abandoned — detached, never joined — so the run can still finish).
    pub wedge_timeout: Option<SimDuration>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 2,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(100),
            backoff_seed: 0x5EED_CAFE,
            heartbeat_interval: SimDuration::from_millis(10),
            wedge_timeout: None,
        }
    }
}

impl SupervisorPolicy {
    /// The default policy (2 restarts, 1 ms base / 100 ms cap backoff,
    /// 10 ms heartbeat, wedge detection off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the per-copy restart budget.
    pub fn max_restarts(mut self, n: u32) -> Self {
        self.max_restarts = n;
        self
    }

    /// Override the backoff envelope (base doubling per attempt, capped).
    pub fn backoff(mut self, base: SimDuration, cap: SimDuration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Override the backoff jitter seed.
    pub fn backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Override the supervisor's heartbeat scan period.
    pub fn heartbeat_interval(mut self, interval: SimDuration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Enable wedge detection: a copy whose heartbeat is silent for
    /// `timeout` is declared dead and its thread abandoned.
    pub fn wedge_timeout(mut self, timeout: SimDuration) -> Self {
        self.wedge_timeout = Some(timeout);
        self
    }

    /// The backoff before restart attempt `attempt` (0-based) of the copy
    /// identified by `copy_key`. Delegates to [`backoff_delay`]; a pure
    /// function of the policy and its arguments, so restart schedules are
    /// deterministic per seed.
    pub fn restart_backoff(&self, copy_key: u64, attempt: u32) -> SimDuration {
        backoff_delay(
            self.backoff_base,
            self.backoff_cap,
            self.backoff_seed,
            copy_key,
            attempt,
        )
    }
}

/// Seeded, jittered exponential backoff: attempt `attempt` (0-based) waits
/// `min(base · 2^attempt, cap)` scaled by a deterministic jitter in
/// [0.5, 1.0) drawn from `(seed, copy_key, attempt)`. Pure — identical
/// inputs always produce the identical delay, so supervised restart
/// schedules replay exactly per seed.
pub fn backoff_delay(
    base: SimDuration,
    cap: SimDuration,
    seed: u64,
    copy_key: u64,
    attempt: u32,
) -> SimDuration {
    let base_ns = base.as_nanos().max(1);
    let cap_ns = cap.as_nanos().max(base_ns);
    let exp_ns = base_ns
        .checked_shl(attempt.min(63))
        .unwrap_or(u64::MAX)
        .min(cap_ns);
    let h = splitmix64(
        seed ^ splitmix64(copy_key.wrapping_add(0x9E37_79B9_7F4A_7C15))
            ^ splitmix64(attempt as u64),
    );
    // Jitter in [0.5, 1.0): decorrelates restart herds without ever
    // shrinking the envelope below half.
    let jitter = 0.5 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
    SimDuration::from_nanos((exp_ns as f64 * jitter) as u64)
}

/// splitmix64 finalizer (same construction the fault plan's seeded drops
/// use) — a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How far the runtime goes to repair fault-induced data loss.
///
/// Under `Degraded` (the PR 5 contract and the default), buffers stranded
/// at dead copy sets are replayed only when the demand-driven policy left
/// an ack handle to re-address; everything else is tallied as lost and the
/// run completes with partial output. Under `Lossless`, producers retain a
/// slab-pooled replica of every sent buffer in bounded per-stream
/// retention rings until the consuming copy set settles its unit of work;
/// dead sets get their unsettled traffic redelivered to survivors (and
/// restarted copies get their consumed-but-unflushed buffers re-injected),
/// with sequence-number deduplication making the redelivery idempotent —
/// a seeded crash then costs latency, not output. Lossless falls back to
/// the degraded accounting when recovery is impossible (retention ring
/// overflowed past `retention_depth`, a non-replicable payload, or no
/// surviving consumer set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Recovery {
    /// Loss-accounted completion: replay what the ack machinery can
    /// re-address, tally the rest as lost.
    #[default]
    Degraded,
    /// Retention + replay + idempotent redelivery: completed runs are
    /// bit-identical to the fault-free run with zero loss.
    Lossless,
}

/// Default capacity of each per-(producer copy, stream) retention ring
/// under [`Recovery::Lossless`]. Bounds retained memory; a ring that
/// overflows evicts its oldest replica (tallied), trading the lossless
/// guarantee for the bound.
pub const DEFAULT_RETENTION_DEPTH: usize = 4096;

/// Chaos configuration for wall-clock runs: the shared [`FaultPlan`]
/// (crashes, stalls, seeded drops and delays — interpreted on the native
/// transport's wall-clock axis) plus the native supervision knobs. The
/// same plan handed to a sim run injects the same faults at the same
/// times, which is what makes sim-vs-native fault reports comparable.
///
/// ```ignore
/// let chaos = NativeFaultPlan::new()
///     .crash_host(h2, SimTime::ZERO + SimDuration::from_millis(2))
///     .drop_messages(0xBEEF, 0.05)
///     .supervise(SupervisorPolicy::new().max_restarts(3));
/// let report = Run::new(graph)
///     .executor(NativeExecutor::new())
///     .faults(chaos)
///     .go(&topo)?;
/// ```
#[derive(Clone)]
pub struct NativeFaultPlan {
    /// The time-indexed fault schedule shared with the simulator.
    pub plan: FaultPlan,
    /// Supervision (restarts, heartbeats); `None` = fail-stop only.
    pub supervisor: Option<SupervisorPolicy>,
    /// Recovery contract (see [`Recovery`]); `Degraded` by default.
    pub recovery: Recovery,
    /// Retention ring capacity under [`Recovery::Lossless`].
    pub retention_depth: usize,
}

impl Default for NativeFaultPlan {
    fn default() -> Self {
        NativeFaultPlan {
            plan: FaultPlan::new(),
            supervisor: None,
            recovery: Recovery::Degraded,
            retention_depth: DEFAULT_RETENTION_DEPTH,
        }
    }
}

impl NativeFaultPlan {
    /// An empty chaos plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing shared plan.
    pub fn from_plan(plan: FaultPlan) -> Self {
        NativeFaultPlan {
            plan,
            ..Self::default()
        }
    }

    /// Schedule a fail-stop crash of every filter copy on `host` at `at`
    /// (wall-clock nanoseconds since run start on the native executor).
    /// This is the chaos layer's "forced copy-thread crash": the copies'
    /// threads unwind at their next failure boundary.
    pub fn crash_host(mut self, host: HostId, at: SimTime) -> Self {
        self.plan = self.plan.crash_host(host, at);
        self
    }

    /// Schedule a transient stall (freeze) of `host`.
    pub fn stall_host(mut self, host: HostId, at: SimTime, dur: SimDuration) -> Self {
        self.plan = self.plan.stall_host(host, at, dur);
        self
    }

    /// Drop each cross-host message with probability `rate` (seeded).
    pub fn drop_messages(mut self, seed: u64, rate: f64) -> Self {
        self.plan = self.plan.drop_messages(seed, rate);
        self
    }

    /// Delay each cross-host message by `dur` with probability `rate`
    /// (seeded).
    pub fn delay_messages(mut self, seed: u64, rate: f64, dur: SimDuration) -> Self {
        self.plan = self.plan.delay_messages(seed, rate, dur);
        self
    }

    /// Slow `host`'s disk to `factor` of its healthy throughput inside
    /// `[at, at + dur)`. A virtual-time timing effect (the wall-clock
    /// executors have no disk model to stretch); error and corruption
    /// windows below replay on every substrate.
    pub fn degrade_disk(
        mut self,
        host: HostId,
        at: SimTime,
        dur: SimDuration,
        factor: f64,
    ) -> Self {
        self.plan = self.plan.degrade_disk(host, at, dur, factor);
        self
    }

    /// Fail each disk operation of `kind` on `host` with probability
    /// `rate` inside `[at, at + dur)` (seeded, re-rolled per retry
    /// attempt — see [`hetsim::FaultPlan::disk_error`]).
    pub fn disk_error(
        mut self,
        host: HostId,
        at: SimTime,
        dur: SimDuration,
        rate: f64,
        kind: hetsim::DiskFaultKind,
    ) -> Self {
        self.plan = self.plan.disk_error(host, at, dur, rate, kind);
        self
    }

    /// Flip one seeded bit in each disk read on `host` with probability
    /// `rate` inside `[at, at + dur)` — what the checksummed spill frames
    /// are there to catch.
    pub fn corrupt_read(mut self, host: HostId, at: SimTime, dur: SimDuration, rate: f64) -> Self {
        self.plan = self.plan.corrupt_read(host, at, dur, rate);
        self
    }

    /// Seed for every storage verdict of the plan's disk events.
    pub fn storage_seed(mut self, seed: u64) -> Self {
        self.plan = self.plan.storage_seed(seed);
        self
    }

    /// Supervise filter copies: contain panics and restart crashed copies
    /// under `policy`.
    pub fn supervise(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = Some(policy);
        self
    }

    /// Demand lossless recovery (see [`Recovery::Lossless`]).
    pub fn lossless(mut self) -> Self {
        self.recovery = Recovery::Lossless;
        self
    }

    /// Override the retention ring capacity used under lossless recovery.
    pub fn retention_depth(mut self, depth: usize) -> Self {
        self.retention_depth = depth;
        self
    }

    /// Convert into the [`FaultOptions`] the [`Run`](crate::runtime::Run)
    /// builder accepts.
    pub fn options(self) -> FaultOptions {
        let mut opts = FaultOptions::new(self.plan);
        opts.supervisor = self.supervisor;
        opts.recovery = self.recovery;
        opts.retention_depth = self.retention_depth;
        opts
    }
}

impl From<NativeFaultPlan> for FaultOptions {
    fn from(p: NativeFaultPlan) -> Self {
        p.options()
    }
}

/// Fault-injection options for `Run::faults`.
#[derive(Clone)]
pub struct FaultOptions {
    /// The scheduled faults (see [`hetsim::fault::FaultPlan`]).
    pub plan: FaultPlan,
    /// Idle-timeout (on the run's time axis) after which a consumer
    /// blocked on an empty stream probes peer liveness, and after which
    /// writers treat a dead consumer host as detectably failed. Must
    /// exceed the worst-case in-flight delivery latency of the topology,
    /// or end-of-work may be concluded while a live producer's marker is
    /// still on the wire.
    pub liveness_timeout: SimDuration,
    /// When `true` (the default), a unit of work completes with partial
    /// output if buffers are lost to crashes that replay cannot repair
    /// (no ack handle, or no surviving copy set); the losses are tallied
    /// in the run report. When `false`, the first irreparable loss aborts
    /// the run with [`RunError::NoSurvivingConsumers`].
    pub allow_degraded: bool,
    /// Supervise filter copies: contain panics in filter callbacks and
    /// restart the copy under this policy instead of failing the run.
    /// `None` (the default) keeps the pure fail-stop semantics.
    pub supervisor: Option<SupervisorPolicy>,
    /// Recovery contract: `Degraded` (default, PR 5's loss-accounted
    /// completion) or `Lossless` (retention + replay + idempotent
    /// redelivery; see [`Recovery`]).
    pub recovery: Recovery,
    /// Capacity of each per-(producer copy, stream) retention ring under
    /// lossless recovery ([`DEFAULT_RETENTION_DEPTH`] by default).
    pub retention_depth: usize,
}

impl FaultOptions {
    /// Options for `plan` with the default liveness timeout (50 ms of
    /// run time), degraded mode allowed, and no supervision.
    pub fn new(plan: FaultPlan) -> Self {
        FaultOptions {
            plan,
            liveness_timeout: SimDuration::from_millis(50),
            allow_degraded: true,
            supervisor: None,
            recovery: Recovery::Degraded,
            retention_depth: DEFAULT_RETENTION_DEPTH,
        }
    }

    /// Demand lossless recovery (see [`Recovery::Lossless`]).
    pub fn lossless(mut self) -> Self {
        self.recovery = Recovery::Lossless;
        self
    }

    /// Select the recovery contract explicitly.
    pub fn recovery(mut self, recovery: Recovery) -> Self {
        self.recovery = recovery;
        self
    }

    /// Override the retention ring capacity used under lossless recovery.
    pub fn retention_depth(mut self, depth: usize) -> Self {
        self.retention_depth = depth;
        self
    }

    /// Override the liveness timeout.
    pub fn liveness_timeout(mut self, timeout: SimDuration) -> Self {
        self.liveness_timeout = timeout;
        self
    }

    /// Set whether irreparable losses complete the run in degraded mode
    /// (`true`) or abort it (`false`).
    pub fn allow_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }

    /// Supervise filter copies under `policy` (panic containment with
    /// bounded restarts).
    pub fn supervised(mut self, policy: SupervisorPolicy) -> Self {
        self.supervisor = Some(policy);
        self
    }
}

/// Shared cell carrying the first structured error of a run; the process
/// that records it then panics with [`ABORT_MSG`] to stop the run, and
/// the runtime maps the resulting `ProcessPanic` back to the cell's
/// contents.
pub(crate) type ErrorCell = Arc<Mutex<Option<RunError>>>;

/// Panic message used when a process aborts the run after recording a
/// structured error.
pub(crate) const ABORT_MSG: &str = "run aborted (structured RunError recorded)";

/// Record `err` (first writer wins) and abort the run.
pub(crate) fn abort_run(cell: &ErrorCell, err: RunError) -> ! {
    cell.lock().get_or_insert(err);
    panic!("{ABORT_MSG}");
}

/// Sentinel panic payload unwinding a filter copy killed by a host crash;
/// caught by the copy's spawn wrapper, which performs death bookkeeping
/// (tally, barrier withdrawal) instead of failing the run.
pub(crate) struct KilledMarker;

/// Unwind the calling filter copy as crashed.
pub(crate) fn raise_killed() -> ! {
    std::panic::panic_any(KilledMarker);
}

thread_local! {
    /// True while the current thread executes a filter callback whose
    /// panics the copy wrapper will contain (convert to a structured
    /// error or a supervised restart). The run's panic hook consults this
    /// to skip the "thread panicked" stderr noise for contained panics.
    static CONTAINED: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread's panics as contained; see
/// [`panics_contained`].
pub(crate) struct ContainGuard {
    prev: bool,
}

/// Enter a containment scope: until the guard drops, panics on this
/// thread are declared caught-and-converted by the copy wrapper.
pub(crate) fn contain_scope() -> ContainGuard {
    let prev = CONTAINED.with(|c| c.replace(true));
    ContainGuard { prev }
}

impl Drop for ContainGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CONTAINED.with(|c| c.set(prev));
    }
}

/// True when the current thread is inside a containment scope.
pub(crate) fn panics_contained() -> bool {
    CONTAINED.with(|c| c.get())
}

/// Extract a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Lifecycle states a supervised copy reports through [`CopyHealth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CopyState {
    /// The copy's thread is executing filter work.
    Running,
    /// The copy finished every unit of work and left cleanly.
    Done,
    /// The copy died (killed, restart budget exhausted, or wedged).
    Dead,
}

/// Shared health record of one supervised filter copy: a lifecycle state
/// plus the wall-clock timestamp (run-axis nanoseconds) of its last
/// heartbeat. The copy beats at every read/write/compute boundary; the
/// supervisor scans these records to find silently wedged copies.
pub(crate) struct CopyHealth {
    state: std::sync::atomic::AtomicU8,
    last_beat: std::sync::atomic::AtomicU64,
}

impl CopyHealth {
    pub fn new() -> Self {
        CopyHealth {
            state: std::sync::atomic::AtomicU8::new(0),
            last_beat: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Record liveness at `now`.
    pub fn beat(&self, now: SimTime) {
        self.last_beat
            .store(now.as_nanos(), std::sync::atomic::Ordering::Relaxed);
    }

    /// Time of the last heartbeat.
    pub fn last_beat(&self) -> SimTime {
        SimTime::ZERO
            + SimDuration::from_nanos(self.last_beat.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Atomically transition `from` → `to`; `false` when another party
    /// (copy thread vs. supervisor) already moved the state. The winner of
    /// this race owns the copy's liveness accounting (live-copy decrement,
    /// barrier withdrawal), so a wedge declaration and a late-finishing
    /// thread can never both account for the same copy.
    pub fn try_transition(&self, from: CopyState, to: CopyState) -> bool {
        self.state
            .compare_exchange(
                from as u8,
                to as u8,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
            .is_ok()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CopyState {
        match self.state.load(std::sync::atomic::Ordering::Acquire) {
            0 => CopyState::Running,
            1 => CopyState::Done,
            _ => CopyState::Dead,
        }
    }
}

/// One supervised restart of a panicked filter copy, recorded for the
/// [`FaultReport`](crate::metrics::FaultReport) timeline.
#[derive(Debug, Clone)]
pub struct RestartEvent {
    /// Name of the restarted filter.
    pub filter: String,
    /// Which transparent copy restarted.
    pub copy: usize,
    /// Host the copy runs on.
    pub host: HostId,
    /// Unit of work being processed when the copy panicked.
    pub uow: u32,
    /// Restart attempt number (1-based; compare against the policy's
    /// `max_restarts` budget).
    pub attempt: u32,
    /// Worker substrate the restarted incarnation runs on: `"proc"` (sim
    /// process), `"thread"` (native OS thread) or `"task"` (waker-parked
    /// task). Restarts re-instantiate the filter on the same worker —
    /// the label says what kind of worker that is, instead of the old
    /// assumption that it is always an OS thread.
    pub worker: &'static str,
    /// Backoff waited before re-instantiating the copy.
    pub backoff: SimDuration,
    /// Run-axis time at which the panic was contained.
    pub at: SimTime,
}

/// Live fault tallies, harvested into `FaultReport` after the run.
#[derive(Debug, Default)]
pub(crate) struct FaultTallies {
    pub copies_killed: u64,
    pub buffers_replayed: u64,
    pub bytes_replayed: u64,
    pub buffers_lost: u64,
    pub bytes_lost: u64,
    pub retransmits: u64,
    pub restarts: u64,
    pub copies_wedged: u64,
    pub messages_delayed: u64,
    /// Retained replicas redelivered to a surviving set or a restarted
    /// copy under lossless recovery.
    pub buffers_redelivered: u64,
    pub bytes_redelivered: u64,
    /// Redelivered buffers a consumer suppressed as already processed
    /// (sequence-number dedup).
    pub duplicates_suppressed: u64,
    /// Replicas evicted from full retention rings (bounded by
    /// `retention_depth`); each eviction may surface later as a loss.
    pub retention_evicted: u64,
    /// Per-copy restart timeline (supervised runs).
    pub restart_events: Vec<RestartEvent>,
}

/// Runtime-internal fault control block, shared by filter contexts, writer
/// policies, senders, reapers and the supervisor while a plan is active.
pub(crate) struct FaultCtl {
    pub plan: FaultPlan,
    pub timeout: SimDuration,
    pub allow_degraded: bool,
    /// Supervision policy, when the run restarts crashed copies.
    pub supervisor: Option<SupervisorPolicy>,
    /// Recovery contract the run executes under.
    pub recovery: Recovery,
    /// Retention ring capacity under lossless recovery.
    pub retention_depth: usize,
    pub tallies: Mutex<FaultTallies>,
    /// Deaths declared at runtime (restart budget exhausted, wedge
    /// detection), keyed by (filter, copy index). The plan is immutable;
    /// this registry is the mutable half the merged oracle queries below
    /// fold in.
    dynamic: Mutex<HashMap<(FilterId, usize), SimTime>>,
}

impl FaultCtl {
    pub fn new(opts: &FaultOptions) -> Arc<Self> {
        Arc::new(FaultCtl {
            plan: opts.plan.clone(),
            timeout: opts.liveness_timeout,
            allow_degraded: opts.allow_degraded,
            supervisor: opts.supervisor,
            recovery: opts.recovery,
            retention_depth: opts.retention_depth.max(1),
            tallies: Mutex::new(FaultTallies::default()),
            dynamic: Mutex::new(HashMap::new()),
        })
    }

    /// True when copies can die during this run — by scheduled crash or by
    /// supervised death declaration. Gates all liveness machinery (timed
    /// reads, writer eviction, settle checks).
    pub fn crashes_possible(&self) -> bool {
        self.plan.has_crashes() || self.supervisor.is_some()
    }

    /// True when the run retains, replays and deduplicates for lossless
    /// recovery.
    pub fn lossless(&self) -> bool {
        self.recovery == Recovery::Lossless
    }

    /// Declare `(filter, copy)` dead as of `now` (idempotent; the earliest
    /// declaration wins).
    pub fn register_copy_death(&self, filter: FilterId, copy: usize, now: SimTime) {
        let mut d = self.dynamic.lock();
        let t = d.entry((filter, copy)).or_insert(now);
        if now < *t {
            *t = now;
        }
    }

    /// The time `(filter, copy)` on `host` died (or will die): the earlier
    /// of its host's scheduled crash and any dynamic declaration.
    pub fn copy_death(&self, filter: FilterId, copy: usize, host: HostId) -> Option<SimTime> {
        let planned = self.plan.host_death(host);
        let declared = self.dynamic.lock().get(&(filter, copy)).copied();
        match (planned, declared) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True once `(filter, copy)` on `host` is dead at `now`.
    pub fn copy_dead(&self, filter: FilterId, copy: usize, host: HostId, now: SimTime) -> bool {
        if self.plan.is_dead(host, now) {
            return true;
        }
        self.dynamic
            .lock()
            .get(&(filter, copy))
            .is_some_and(|&t| now >= t)
    }

    /// The time the whole copy set died, if every copy in it has a death
    /// time: the latest of the per-copy deaths (a set is dead only when
    /// its last copy is).
    pub fn set_death(&self, set: &CopySetInfo) -> Option<SimTime> {
        let mut latest = SimTime::ZERO;
        for k in 0..set.copies as usize {
            let t = self.copy_death(set.filter, set.first_copy + k, set.host)?;
            if t > latest {
                latest = t;
            }
        }
        Some(latest)
    }

    /// True once every copy in `set` is dead at `now`.
    pub fn set_dead(&self, set: &CopySetInfo, now: SimTime) -> bool {
        self.set_death(set).is_some_and(|t| now >= t)
    }

    /// True once `set` has been dead for at least the liveness timeout —
    /// the point at which writers evict it from their schedules.
    pub fn set_detectably_dead(&self, set: &CopySetInfo, now: SimTime) -> bool {
        self.set_death(set).is_some_and(|t| now >= t + self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let a: Vec<_> = (0..8)
            .map(|k| backoff_delay(ms(1), ms(20), 42, 7, k))
            .collect();
        let b: Vec<_> = (0..8)
            .map(|k| backoff_delay(ms(1), ms(20), 42, 7, k))
            .collect();
        assert_eq!(a, b, "same inputs, same schedule");
        for (k, d) in a.iter().enumerate() {
            let envelope = ms(1).as_nanos() << k.min(63);
            let cap = ms(20).as_nanos().min(envelope);
            assert!(d.as_nanos() <= cap, "attempt {k} over envelope");
            assert!(d.as_nanos() >= cap / 2, "attempt {k} under half envelope");
        }
        // A different seed decorrelates the jitter.
        let c: Vec<_> = (0..8)
            .map(|k| backoff_delay(ms(1), ms(20), 43, 7, k))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn dynamic_deaths_merge_with_plan() {
        let opts =
            FaultOptions::new(FaultPlan::new().crash_host(HostId(1), SimTime::ZERO + ms(10)))
                .supervised(SupervisorPolicy::new());
        let ctl = FaultCtl::new(&opts);
        let f = FilterId(0);
        let t5 = SimTime::ZERO + ms(5);
        let t20 = SimTime::ZERO + ms(20);
        // Plan-only death on host 1.
        assert!(!ctl.copy_dead(f, 0, HostId(1), t5));
        assert!(ctl.copy_dead(f, 0, HostId(1), t20));
        // Dynamic death on an unplanned host.
        assert!(!ctl.copy_dead(f, 3, HostId(2), t20));
        ctl.register_copy_death(f, 3, t5);
        assert!(ctl.copy_dead(f, 3, HostId(2), t5));
        assert_eq!(ctl.copy_death(f, 3, HostId(2)), Some(t5));
        // Set death: dead only when every copy is.
        let set = CopySetInfo {
            host: HostId(2),
            copies: 2,
            filter: f,
            first_copy: 3,
        };
        assert_eq!(ctl.set_death(&set), None, "copy 4 still alive");
        ctl.register_copy_death(f, 4, t20);
        assert_eq!(ctl.set_death(&set), Some(t20), "latest copy death wins");
        assert!(ctl.set_dead(&set, t20));
        assert!(!ctl.set_detectably_dead(&set, t20));
        assert!(ctl.set_detectably_dead(&set, t20 + ctl.timeout));
    }

    #[test]
    fn native_fault_plan_builds_options() {
        let opts: FaultOptions = NativeFaultPlan::new()
            .crash_host(HostId(2), SimTime::ZERO + ms(2))
            .drop_messages(0xBEEF, 0.05)
            .delay_messages(0xF00D, 0.1, ms(1))
            .supervise(SupervisorPolicy::new().max_restarts(3))
            .into();
        assert!(opts.plan.has_crashes());
        assert!(opts.plan.has_drops());
        assert!(opts.plan.has_delays());
        assert_eq!(opts.supervisor.map(|s| s.max_restarts), Some(3));
    }

    #[test]
    fn contain_scope_nests_and_restores() {
        assert!(!panics_contained());
        {
            let _g = contain_scope();
            assert!(panics_contained());
            {
                let _g2 = contain_scope();
                assert!(panics_contained());
            }
            assert!(panics_contained());
        }
        assert!(!panics_contained());
    }
}
