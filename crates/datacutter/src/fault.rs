//! Failure handling for the filter runtime: structured run errors, the
//! fault-injection options accepted by `run_app_faulted`, and the internal
//! control block threaded through the runtime while a fault plan is active.
//!
//! The recovery model (see DESIGN.md §8): hosts fail *fail-stop* and a
//! crashed filter copy is observed dead at its next stream-read (or write)
//! boundary, so every buffer it already dequeued — and therefore
//! acknowledged under the demand-driven policy — is fully processed and
//! its output flushed. Buffers still queued at (or sent to) a dead copy
//! set are salvaged by a per-set reaper process and, when they carry a DD
//! ack handle, *replayed* to a surviving copy set; ack-less buffers
//! (RR/WRR or `write_to` routing) cannot be safely re-addressed and are
//! counted as lost, completing the run in degraded mode.

use std::sync::Arc;

use hetsim::{FaultPlan, HostId, SimDuration, SimError};
use parking_lot::Mutex;

/// A structured error from a pipeline run — either a failure of the
/// simulation substrate or an application-level failure surfaced by the
/// runtime (the former panic-on-error paths).
#[derive(Debug)]
pub enum RunError {
    /// The simulation itself failed (deadlock or an unexpected panic).
    Sim(SimError),
    /// A filter's `process` callback returned an error.
    Filter {
        /// Name of the failing filter.
        filter: String,
        /// Which transparent copy failed.
        copy: usize,
        /// Host the copy ran on.
        host: HostId,
        /// Unit of work being processed.
        uow: u32,
        /// The filter's error message.
        message: String,
    },
    /// Every copy set of a stream's consumer died and the run was not
    /// allowed to continue in degraded mode
    /// ([`FaultOptions::allow_degraded`] was `false`).
    NoSurvivingConsumers {
        /// Name of the stream whose buffers could not be delivered.
        stream: String,
    },
    /// The run was configured with a feature the selected executor does
    /// not support (e.g. fault injection on the wall-clock native
    /// executor, which has no virtual fault plan to consult).
    Unsupported {
        /// Description of the unsupported combination.
        what: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Filter {
                filter,
                copy,
                host,
                uow,
                message,
            } => write!(
                f,
                "filter '{filter}' copy {copy} on host{} failed in uow {uow}: {message}",
                host.0
            ),
            RunError::NoSurvivingConsumers { stream } => {
                write!(f, "no surviving consumer copy set on stream '{stream}'")
            }
            RunError::Unsupported { what } => {
                write!(f, "unsupported run configuration: {what}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Fault-injection options for `run_app_faulted`.
#[derive(Clone)]
pub struct FaultOptions {
    /// The scheduled faults (see [`hetsim::fault::FaultPlan`]).
    pub plan: FaultPlan,
    /// Idle-timeout (virtual time) after which a consumer blocked on an
    /// empty stream probes peer liveness, and after which writers treat a
    /// dead consumer host as detectably failed. Must exceed the worst-case
    /// in-flight delivery latency of the topology, or end-of-work may be
    /// concluded while a live producer's marker is still on the wire.
    pub liveness_timeout: SimDuration,
    /// When `true` (the default), a unit of work completes with partial
    /// output if buffers are lost to crashes that replay cannot repair
    /// (no ack handle, or no surviving copy set); the losses are tallied
    /// in the run report. When `false`, the first irreparable loss aborts
    /// the run with [`RunError::NoSurvivingConsumers`].
    pub allow_degraded: bool,
}

impl FaultOptions {
    /// Options for `plan` with the default liveness timeout (50 ms of
    /// virtual time) and degraded mode allowed.
    pub fn new(plan: FaultPlan) -> Self {
        FaultOptions {
            plan,
            liveness_timeout: SimDuration::from_millis(50),
            allow_degraded: true,
        }
    }

    /// Override the liveness timeout.
    pub fn liveness_timeout(mut self, timeout: SimDuration) -> Self {
        self.liveness_timeout = timeout;
        self
    }

    /// Set whether irreparable losses complete the run in degraded mode
    /// (`true`) or abort it (`false`).
    pub fn allow_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }
}

/// Shared cell carrying the first structured error of a run; the process
/// that records it then panics with [`ABORT_MSG`] to stop the simulation,
/// and the runtime maps the resulting `ProcessPanic` back to the cell's
/// contents.
pub(crate) type ErrorCell = Arc<Mutex<Option<RunError>>>;

/// Panic message used when a process aborts the run after recording a
/// structured error.
pub(crate) const ABORT_MSG: &str = "run aborted (structured RunError recorded)";

/// Record `err` (first writer wins) and abort the simulation.
pub(crate) fn abort_run(cell: &ErrorCell, err: RunError) -> ! {
    cell.lock().get_or_insert(err);
    panic!("{ABORT_MSG}");
}

/// Sentinel panic payload unwinding a filter copy killed by a host crash;
/// caught by the copy's spawn wrapper, which performs death bookkeeping
/// (tally, barrier withdrawal) instead of failing the run.
pub(crate) struct KilledMarker;

/// Unwind the calling filter copy as crashed.
pub(crate) fn raise_killed() -> ! {
    std::panic::panic_any(KilledMarker);
}

/// Live fault tallies, harvested into `FaultReport` after the run.
#[derive(Debug, Default)]
pub(crate) struct FaultTallies {
    pub copies_killed: u64,
    pub buffers_replayed: u64,
    pub bytes_replayed: u64,
    pub buffers_lost: u64,
    pub bytes_lost: u64,
    pub retransmits: u64,
}

/// Runtime-internal fault control block, shared by filter contexts, writer
/// policies, senders, and reapers while a plan is active.
pub(crate) struct FaultCtl {
    pub plan: FaultPlan,
    pub timeout: SimDuration,
    pub allow_degraded: bool,
    pub tallies: Mutex<FaultTallies>,
}

impl FaultCtl {
    pub fn new(opts: &FaultOptions) -> Arc<Self> {
        Arc::new(FaultCtl {
            plan: opts.plan.clone(),
            timeout: opts.liveness_timeout,
            allow_degraded: opts.allow_degraded,
            tallies: Mutex::new(FaultTallies::default()),
        })
    }
}
