//! Per-copy and per-stream metrics, harvested into a [`RunReport`] after a
//! run. These counters regenerate the paper's Tables 1–3 directly.

use std::sync::Arc;

use hetsim::{HostId, SimDuration};
use parking_lot::Mutex;

use crate::graph::{FilterId, StreamId};

/// Counters owned by one filter copy (shared cell written during the run).
#[derive(Debug, Default, Clone)]
pub struct CopyCounters {
    /// Buffers read from input streams.
    pub buffers_in: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Buffers written to output streams.
    pub buffers_out: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Reference-speed work charged via `compute`.
    pub work: SimDuration,
    /// Virtual time spent inside `compute` (includes contention dilation).
    pub compute_elapsed: SimDuration,
    /// Virtual time blocked waiting on input reads.
    pub read_wait: SimDuration,
    /// Virtual time blocked in writes (policy window + backpressure +
    /// outbox).
    pub write_wait: SimDuration,
    /// Bytes read from local disks.
    pub disk_bytes: u64,
    /// Virtual time spent in disk reads.
    pub disk_elapsed: SimDuration,
}

/// Shared handle to a copy's counters.
pub type CopyCell = Arc<Mutex<CopyCounters>>;

/// Identity + final counters of one filter copy.
#[derive(Debug, Clone)]
pub struct CopyReport {
    /// Which filter.
    pub filter: FilterId,
    /// Filter name (for printing).
    pub filter_name: String,
    /// Copy index among the filter's copies.
    pub copy_index: usize,
    /// Host the copy ran on.
    pub host: HostId,
    /// Final counters.
    pub counters: CopyCounters,
}

/// Per-copy-set stream counters (shared cell).
#[derive(Debug, Default, Clone)]
pub struct CopySetCounters {
    /// Buffers delivered into this copy set's queue (counted at consumer
    /// dequeue).
    pub buffers_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

/// Shared handle to a copy set's counters.
pub type CopySetCell = Arc<Mutex<CopySetCounters>>;

/// Final per-stream metrics.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Which stream.
    pub stream: StreamId,
    /// Stream name (`producer->consumer`).
    pub stream_name: String,
    /// Per copy set: `(host, counters)`, in consumer placement order.
    pub copysets: Vec<(HostId, CopySetCounters)>,
}

impl StreamReport {
    /// Total buffers moved on the stream.
    pub fn total_buffers(&self) -> u64 {
        self.copysets.iter().map(|(_, c)| c.buffers_received).sum()
    }

    /// Total payload bytes moved on the stream.
    pub fn total_bytes(&self) -> u64 {
        self.copysets.iter().map(|(_, c)| c.bytes_received).sum()
    }
}

/// Fault-injection outcome of a run: what was injected and what the
/// runtime did about it. All-zero (and `injected` empty) for fault-free
/// runs.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Human-readable description of every scheduled fault.
    pub injected: Vec<String>,
    /// Filter copies killed by host crashes.
    pub copies_killed: u64,
    /// Buffers salvaged from dead copy sets and replayed to survivors.
    pub buffers_replayed: u64,
    /// Payload bytes replayed.
    pub bytes_replayed: u64,
    /// Buffers irrecoverably lost (no ack handle or no surviving set).
    pub buffers_lost: u64,
    /// Payload bytes lost.
    pub bytes_lost: u64,
    /// Message transmissions repeated because of injected drops.
    pub retransmits: u64,
    /// Supervised in-place restarts of panicked filter copies.
    pub restarts: u64,
    /// Copies the supervisor declared dead for missing heartbeats.
    pub copies_wedged: u64,
    /// Messages held back by injected per-message delays.
    pub messages_delayed: u64,
    /// Retained replicas redelivered under lossless recovery (to a
    /// surviving copy set or a restarted copy).
    pub buffers_redelivered: u64,
    /// Payload bytes redelivered.
    pub bytes_redelivered: u64,
    /// Redelivered buffers consumers suppressed as already processed
    /// (sequence-number dedup — proof redelivery was idempotent).
    pub duplicates_suppressed: u64,
    /// Replicas evicted from full retention rings (`retention_depth`
    /// bound); non-zero means the lossless guarantee was at risk.
    pub retention_evicted: u64,
    /// Per-copy restart/backoff timeline of supervised restarts, in the
    /// order they were contained.
    pub restart_events: Vec<crate::fault::RestartEvent>,
    /// Disk read/write errors the storage fault plan injected into the
    /// spill plane (each consumed one ladder attempt).
    pub disk_errors_injected: u64,
    /// Spill/fault-in attempts repeated under seeded backoff by the
    /// storage retry ladder.
    pub storage_retries: u64,
    /// Spill writes abandoned after the full ladder (retries + one ring
    /// re-creation); each left its payload resident over budget.
    pub spills_denied: u64,
    /// Spill frames whose checksum or decode failed on fault-in; each
    /// became one loss-accounted buffer.
    pub corruptions_detected: u64,
    /// Timeline of notable storage-plane events (ring re-creations,
    /// denials, detected corruptions), bounded per run.
    pub storage_events: Vec<crate::storage::StorageEvent>,
    /// `true` when the run completed with partial output (buffers lost
    /// or copies wedged).
    pub degraded: bool,
}

impl std::fmt::Display for FaultReport {
    /// Human-readable digest for chaos-job logs: injected faults, repair
    /// tallies, and the per-copy restart/backoff timeline.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let storage_active = self.disk_errors_injected
            + self.storage_retries
            + self.spills_denied
            + self.corruptions_detected
            > 0;
        if self.injected.is_empty()
            && self.restarts == 0
            && self.copies_killed == 0
            && !storage_active
        {
            return write!(f, "faults: none injected, none observed");
        }
        writeln!(f, "faults injected:")?;
        if self.injected.is_empty() {
            writeln!(f, "  (none scheduled; supervision only)")?;
        }
        for d in &self.injected {
            writeln!(f, "  {d}")?;
        }
        writeln!(
            f,
            "outcome: {}",
            if self.degraded {
                "degraded (partial output)"
            } else {
                "complete"
            }
        )?;
        writeln!(
            f,
            "  killed {} copies, wedged {}, restarted {}",
            self.copies_killed, self.copies_wedged, self.restarts
        )?;
        writeln!(
            f,
            "  replayed {} buffers ({} B), redelivered {} ({} B), suppressed {} duplicates",
            self.buffers_replayed,
            self.bytes_replayed,
            self.buffers_redelivered,
            self.bytes_redelivered,
            self.duplicates_suppressed
        )?;
        writeln!(
            f,
            "  lost {} buffers ({} B), evicted {} retained replicas, {} retransmits, {} delayed",
            self.buffers_lost,
            self.bytes_lost,
            self.retention_evicted,
            self.retransmits,
            self.messages_delayed
        )?;
        writeln!(
            f,
            "  storage: {} disk errors injected, {} retries, {} spills denied, {} corruptions detected",
            self.disk_errors_injected,
            self.storage_retries,
            self.spills_denied,
            self.corruptions_detected
        )?;
        for e in &self.storage_events {
            writeln!(
                f,
                "  {:>9.3}s  host{}: {}",
                e.at.as_secs_f64(),
                e.host.0,
                e.detail
            )?;
        }
        if self.restart_events.is_empty() {
            write!(f, "restart timeline: empty")?;
        } else {
            write!(f, "restart timeline:")?;
            for e in &self.restart_events {
                write!(
                    f,
                    "\n  {:>9.3}s  {}[{}]@host{} uow {}: {} attempt {} after {:.3}s backoff",
                    e.at.as_secs_f64(),
                    e.filter,
                    e.copy,
                    e.host.0,
                    e.uow,
                    e.worker,
                    e.attempt,
                    e.backoff.as_secs_f64(),
                )?;
            }
        }
        Ok(())
    }
}

/// Out-of-core accounting of one run: the spill-ring traffic and the
/// memory-budget ledger. All zeros when no [`crate::Run::memory_budget`]
/// was configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OocReport {
    /// Configured run budget in bytes (0 = unlimited, out-of-core off).
    pub memory_budget_bytes: u64,
    /// Payloads parked in the spill ring.
    pub spills: u64,
    /// Encoded bytes written to the ring.
    pub spill_bytes: u64,
    /// Payloads faulted back in at readers.
    pub faults: u64,
    /// Encoded bytes read back from the ring.
    pub fault_bytes: u64,
    /// Cumulative bytes granted by the budget ledger.
    pub granted_bytes: u64,
    /// Cumulative bytes released back to the ledger.
    pub released_bytes: u64,
}

impl OocReport {
    /// Bytes still resident at harvest (`granted − released`); non-zero
    /// means queued payloads were abandoned (e.g. a degraded run).
    pub fn resident_bytes(&self) -> u64 {
        self.granted_bytes.saturating_sub(self.released_bytes)
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// End-to-end virtual time of the whole run (all units of work).
    pub elapsed: SimDuration,
    /// Wake events the engine dispatched (run-size indicator).
    pub events: u64,
    /// Tasked-substrate notifications delivered as deferred admission
    /// hand-offs instead of immediate wakes — each one a carrier wakeup
    /// the pool was too saturated to use (0 on other executors).
    pub deferred_wakes: u64,
    /// Virtual times at which each inter-UOW barrier released (length =
    /// `uows - 1`; empty for single-UOW runs).
    pub uow_boundaries: Vec<hetsim::SimTime>,
    /// Per-copy metrics, in spawn order (cumulative across UOWs).
    pub copies: Vec<CopyReport>,
    /// Per-stream metrics (cumulative across UOWs).
    pub streams: Vec<StreamReport>,
    /// Fault-injection outcome (defaulted for fault-free runs).
    pub faults: FaultReport,
    /// Out-of-core outcome (all zeros when no memory budget was set).
    pub ooc: OocReport,
}

impl RunReport {
    /// Per-UOW elapsed times, derived from the barrier boundaries.
    pub fn uow_elapsed(&self) -> Vec<SimDuration> {
        let mut out = Vec::with_capacity(self.uow_boundaries.len() + 1);
        let mut prev = hetsim::SimTime::ZERO;
        for &b in &self.uow_boundaries {
            out.push(b - prev);
            prev = b;
        }
        out.push((hetsim::SimTime::ZERO + self.elapsed) - prev);
        out
    }

    /// Copies of filter `f`.
    pub fn copies_of(&self, f: FilterId) -> Vec<&CopyReport> {
        self.copies.iter().filter(|c| c.filter == f).collect()
    }

    /// Sum of reference-speed work charged by copies of `f` — the
    /// "processing time of the filter" in the paper's Table 2 sense.
    pub fn filter_work(&self, f: FilterId) -> SimDuration {
        self.copies_of(f)
            .iter()
            .map(|c| c.counters.work)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Max per-copy compute-elapsed among copies of `f` (critical path
    /// contribution).
    pub fn filter_max_elapsed(&self, f: FilterId) -> SimDuration {
        self.copies_of(f)
            .iter()
            .map(|c| c.counters.compute_elapsed)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Stream report by id.
    pub fn stream(&self, s: StreamId) -> &StreamReport {
        &self.streams[s.0 as usize]
    }

    /// Average buffers received per copy set, grouped by the host classes
    /// in `classes` (host → class index). Regenerates the paper's Table 3
    /// rows ("avg buffers received per Raster per node class").
    pub fn avg_buffers_by_class(
        &self,
        stream: StreamId,
        class_of_host: impl Fn(HostId) -> usize,
        n_classes: usize,
    ) -> Vec<f64> {
        let mut sums = vec![0.0f64; n_classes];
        let mut counts = vec![0u32; n_classes];
        for (host, c) in &self.streams[stream.0 as usize].copysets {
            let k = class_of_host(*host);
            sums[k] += c.buffers_received as f64;
            counts[k] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_two_classes() -> RunReport {
        RunReport {
            elapsed: SimDuration::from_secs(1),
            events: 10,
            deferred_wakes: 0,
            uow_boundaries: vec![],
            copies: vec![],
            streams: vec![StreamReport {
                stream: StreamId(0),
                stream_name: "e->ra".into(),
                copysets: vec![
                    (
                        HostId(0),
                        CopySetCounters {
                            buffers_received: 10,
                            bytes_received: 100,
                        },
                    ),
                    (
                        HostId(1),
                        CopySetCounters {
                            buffers_received: 30,
                            bytes_received: 300,
                        },
                    ),
                    (
                        HostId(2),
                        CopySetCounters {
                            buffers_received: 20,
                            bytes_received: 200,
                        },
                    ),
                ],
            }],
            faults: FaultReport::default(),
            ooc: OocReport::default(),
        }
    }

    #[test]
    fn stream_totals() {
        let r = report_with_two_classes();
        assert_eq!(r.stream(StreamId(0)).total_buffers(), 60);
        assert_eq!(r.stream(StreamId(0)).total_bytes(), 600);
    }

    #[test]
    fn class_averages() {
        let r = report_with_two_classes();
        // Hosts 0,2 in class 0; host 1 in class 1.
        let avg = r.avg_buffers_by_class(StreamId(0), |h| if h == HostId(1) { 1 } else { 0 }, 2);
        assert_eq!(avg, vec![15.0, 30.0]);
    }

    #[test]
    fn empty_class_is_zero() {
        let r = report_with_two_classes();
        let avg = r.avg_buffers_by_class(StreamId(0), |_| 0, 2);
        assert_eq!(avg[1], 0.0);
    }
}
