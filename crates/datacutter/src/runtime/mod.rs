//! The layered filter runtime: instantiates an [`AppGraph`] on a
//! [`Topology`] and executes units of work on a pluggable substrate.
//!
//! * [`exec`] — the `Clock` / `Transport` / `Executor` trait family and
//!   the virtual-time [`SimExecutor`],
//! * [`native`] — the wall-clock [`NativeExecutor`] (real OS threads),
//! * [`park`] — the parking seam: how a runtime process blocks
//!   (condvar-parked thread vs waker-parked task),
//! * [`tasked`] — the cooperative [`TaskedExecutor`] (waker-parked tasks
//!   multiplexed over a worker pool, for 4096-copy graphs on one machine),
//! * [`spawn`] — copy instantiation and stream wiring,
//! * [`delivery`] — outbox senders, ack couriers, retransmission,
//! * [`eow`] — end-of-work gates (UOW cycle separation),
//! * [`reaper`] — dead-set salvage and demand-driven replay,
//! * [`retain`] — lossless-recovery retention rings and seq-number dedup,
//! * [`supervisor`] — wedge detection and eviction for supervised runs.
//!
//! Runs are configured with the [`Run`] builder:
//!
//! ```ignore
//! let report = Run::new(graph)
//!     .uows(3)
//!     .trace(trace)
//!     .go(&topo)?;
//! ```
//!
//! End-of-work markers flow in-band: when a producer copy finishes its
//! work cycle, an EOW marker is broadcast to every consumer copy set; once
//! a copy set has seen the marker from every producer copy, each consumer
//! copy's next read returns `None`. Multi-UOW runs repeat the cycle with a
//! global barrier in between.

pub mod delivery;
pub mod eow;
pub mod exec;
pub mod native;
pub mod park;
pub mod reaper;
pub mod retain;
pub mod spawn;
pub mod supervisor;
pub mod tasked;

use std::sync::Arc;

use hetsim::{SimDuration, SimTime, Simulation, Topology};
use parking_lot::Mutex;

pub use exec::{
    ChanRx, ChanTx, Clock, ExecBarrier, ExecEnv, ExecStats, Executor, SimExecutor, SimTransport,
    Transport,
};
pub use native::{CancelScope, NativeEnv, NativeExecutor, NativeTransport};
pub use tasked::TaskedExecutor;

use crate::fault::{ErrorCell, FaultCtl, FaultOptions, KilledMarker, RunError};
use crate::graph::AppGraph;
use crate::metrics::{CopyReport, FaultReport, RunReport, StreamReport};

/// Default capacity of each per-copy outbox (models the kernel socket
/// buffer that lets a filter keep computing while a previous buffer is on
/// the wire).
pub const DEFAULT_OUTBOX_CAPACITY: usize = 2;

/// Default capacity of ack courier queues. Consumers block on a full
/// courier queue, but under the demand-driven policy the queue can never
/// hold more acks than the producer side has window credit (each queued
/// ack is an unacknowledged buffer), so with the default windows this
/// bound is never reached; RR/WRR generate no acks at all. Raise it via
/// [`Run::courier_capacity`] for graphs with very large DD windows.
pub const DEFAULT_COURIER_CAPACITY: usize = 1024;

/// Default back-off before re-sending a message the fault plan dropped.
pub const DEFAULT_RETRANSMIT_DELAY: SimDuration = SimDuration::from_millis(1);

/// Default deadline for handing an acknowledgment to a full courier
/// queue; exceeding it fails the run with [`RunError::CourierStall`]
/// instead of blocking forever. Enforced on the native executor (the
/// deterministic substrate keeps the original blocking send so virtual
/// timelines stay bit-identical).
pub const DEFAULT_COURIER_DEADLINE: SimDuration = SimDuration::from_millis(5_000);

/// Runtime tuning knobs carried from the [`Run`] builder into the wiring.
#[derive(Clone, Copy)]
pub(crate) struct Tuning {
    pub outbox_capacity: usize,
    pub courier_capacity: usize,
    pub retransmit_delay: SimDuration,
    pub courier_deadline: SimDuration,
    /// Byte budget for in-flight stream payloads (0 = unlimited; the
    /// out-of-core spill path is off and runs are untouched).
    pub memory_budget_bytes: u64,
    /// Retries granted to a failing spill write or fault-in read before
    /// the degradation ladder takes over.
    pub storage_retry_budget: u32,
    /// Seal every spill frame with an FNV-64 checksum verified on
    /// fault-in (8 bytes per frame; detects any single-bit corruption).
    pub checksum_spills: bool,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            outbox_capacity: DEFAULT_OUTBOX_CAPACITY,
            courier_capacity: DEFAULT_COURIER_CAPACITY,
            retransmit_delay: DEFAULT_RETRANSMIT_DELAY,
            courier_deadline: DEFAULT_COURIER_DEADLINE,
            memory_budget_bytes: 0,
            storage_retry_budget: crate::storage::DEFAULT_STORAGE_RETRY_BUDGET,
            checksum_spills: true,
        }
    }
}

/// The executor a [`Run`] uses, chosen at configuration time. Every
/// variant converts via `From`, so `Run::executor` accepts any executor
/// value directly.
pub enum ExecutorChoice {
    /// Deterministic virtual-time execution on the hetsim engine.
    Sim(SimExecutor),
    /// Wall-clock execution on real OS threads, one per copy.
    Native(NativeExecutor),
    /// Wall-clock execution on waker-parked tasks multiplexed over a
    /// small worker pool (the massive fan-out substrate).
    Tasked(TaskedExecutor),
}

impl From<SimExecutor> for ExecutorChoice {
    fn from(e: SimExecutor) -> Self {
        ExecutorChoice::Sim(e)
    }
}

impl From<NativeExecutor> for ExecutorChoice {
    fn from(e: NativeExecutor) -> Self {
        ExecutorChoice::Native(e)
    }
}

impl From<TaskedExecutor> for ExecutorChoice {
    fn from(e: TaskedExecutor) -> Self {
        ExecutorChoice::Tasked(e)
    }
}

/// A deferred simulation-setup hook (the `Run::setup` option).
type SetupFn = Box<dyn FnOnce(&mut Simulation)>;

/// Builder for one pipeline run. Replaces the former `run_app` /
/// `run_app_uows` / `run_app_traced` / `run_app_with` / `run_app_faulted`
/// free functions with one composable entry point — every option can be
/// combined (e.g. trace + faults + custom setup in the same run).
///
/// Defaults: one unit of work, the virtual-time [`SimExecutor`], no trace,
/// no faults, and the documented default capacities.
pub struct Run {
    graph: AppGraph,
    uows: u32,
    trace: Option<hetsim::Trace>,
    faults: Option<FaultOptions>,
    setup: Option<SetupFn>,
    executor: ExecutorChoice,
    tuning: Tuning,
}

impl Run {
    /// Configure a run of `graph` with the defaults above.
    pub fn new(graph: AppGraph) -> Self {
        Run {
            graph,
            uows: 1,
            trace: None,
            faults: None,
            setup: None,
            executor: ExecutorChoice::Sim(SimExecutor::new()),
            tuning: Tuning::default(),
        }
    }

    /// Execute `n` consecutive units of work. Every filter copy runs the
    /// full `init` → `process` → `finalize` cycle once per UOW (selecting
    /// its work via [`crate::context::FilterCtx::uow`]); end-of-work
    /// markers flow in-band on the streams, and a global barrier separates
    /// cycles (the next UOW starts only after every copy finished the
    /// previous one, like the paper's per-query execution).
    pub fn uows(mut self, n: u32) -> Self {
        self.uows = n;
        self
    }

    /// Record per-copy compute and read-wait spans into `trace` for
    /// timeline inspection. Works on both substrates (wall-clock spans
    /// under the native executor).
    pub fn trace(mut self, trace: hetsim::Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Inject the faults scheduled in `opts` and run the recovery
    /// machinery: liveness-timeout death detection, writer-side eviction
    /// of dead consumer hosts, end-of-work accounting that tolerates dead
    /// producer copies, and replay of unacknowledged demand-driven buffers
    /// from dead copy sets to survivors. The returned report's
    /// [`RunReport::faults`] records what was injected and repaired.
    ///
    /// Works on both substrates: the same plan runs bit-reproducibly on
    /// the virtual-time executor and in wall-clock time on the native
    /// executor (use [`crate::fault::NativeFaultPlan`] to build options
    /// for the latter). NIC degradation (`degrade_nic`) uses the
    /// simulation's bandwidth drivers under virtual time; the native
    /// executor emulates the same windows by stalling senders for the
    /// degraded fraction of each message's serialization time.
    ///
    /// With [`crate::fault::Recovery::Lossless`] the runtime additionally
    /// retains sent buffers until consumers settle them, replays retained
    /// replicas after crashes and supervised restarts, and dedups
    /// redeliveries by sequence number — a crashed-and-recovered run then
    /// reports `buffers_lost == 0` and produces output identical to a
    /// fault-free run.
    ///
    /// Two caveats on the reported `elapsed` under a plan with crashes: a
    /// crash scheduled after the pipeline naturally finishes extends the
    /// run to roughly the crash time (the reaper waits for it), and even a
    /// triggered crash adds up to one liveness-timeout of teardown.
    pub fn faults(mut self, opts: FaultOptions) -> Self {
        self.faults = Some(opts);
        self
    }

    /// Spawn auxiliary processes into the pipeline's simulation before it
    /// starts — e.g. a [`hetsim::spawn_load_generator`] storming a host
    /// *while the pipeline runs*, the "varying resource availability"
    /// scenario of the paper. Virtual-time only.
    ///
    /// Note: the run ends when every process — including auxiliaries — has
    /// finished, so an auxiliary outliving the pipeline extends the
    /// reported `elapsed`.
    pub fn setup(mut self, setup: impl FnOnce(&mut Simulation) + 'static) -> Self {
        self.setup = Some(Box::new(setup));
        self
    }

    /// Choose the execution substrate (accepts a [`SimExecutor`] or
    /// [`NativeExecutor`] value directly).
    pub fn executor(mut self, executor: impl Into<ExecutorChoice>) -> Self {
        self.executor = executor.into();
        self
    }

    /// Capacity of each per-copy outbox (default
    /// [`DEFAULT_OUTBOX_CAPACITY`]).
    pub fn outbox_capacity(mut self, capacity: usize) -> Self {
        self.tuning.outbox_capacity = capacity;
        self
    }

    /// Capacity of the per-copy-set ack courier queues (default
    /// [`DEFAULT_COURIER_CAPACITY`]).
    pub fn courier_capacity(mut self, capacity: usize) -> Self {
        self.tuning.courier_capacity = capacity;
        self
    }

    /// Back-off before re-sending a message the fault plan dropped
    /// (default [`DEFAULT_RETRANSMIT_DELAY`]).
    pub fn retransmit_delay(mut self, delay: SimDuration) -> Self {
        self.tuning.retransmit_delay = delay;
        self
    }

    /// Deadline for handing an acknowledgment to a full courier queue
    /// before the run fails with [`RunError::CourierStall`] (default
    /// [`DEFAULT_COURIER_DEADLINE`]; native executor only — the
    /// deterministic substrate keeps the original blocking send).
    pub fn courier_deadline(mut self, deadline: SimDuration) -> Self {
        self.tuning.courier_deadline = deadline;
        self
    }

    /// Bound the bytes of in-flight stream payloads to `bytes`, split
    /// evenly across the graph's streams (TPIE-style explicit memory
    /// management). A stream whose queued spillable payloads exceed its
    /// share parks the overflow in a run-wide spill ring (one unlinked
    /// temp file) and faults it back in at the reader; under the
    /// virtual-time executor both directions are charged to the host's
    /// disk model. Only payloads built with
    /// [`crate::BufferSlab::make_spillable`] participate — everything
    /// else stays resident. `0` (the default) disables the out-of-core
    /// path entirely; results are bit-identical either way, only timing
    /// and the [`RunReport::ooc`](crate::RunReport) tallies change.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.tuning.memory_budget_bytes = bytes;
        self
    }

    /// Retries granted to a failing spill write or fault-in read before
    /// the storage degradation ladder takes over (default
    /// [`crate::storage::DEFAULT_STORAGE_RETRY_BUDGET`]). Each retry
    /// sleeps a seeded, jittered, exponentially growing backoff; under
    /// the virtual-time executor the sleeps are deterministic virtual
    /// delays.
    pub fn storage_retries(mut self, budget: u32) -> Self {
        self.tuning.storage_retry_budget = budget;
        self
    }

    /// Seal every spill frame with an FNV-64 checksum verified on
    /// fault-in (default `true`). Costs 8 bytes per spilled frame and a
    /// linear scan each way; guarantees any single-bit corruption of a
    /// parked frame is detected rather than silently decoded.
    pub fn checksum_spills(mut self, on: bool) -> Self {
        self.tuning.checksum_spills = on;
        self
    }

    /// Execute the run on `topo` and harvest the report.
    pub fn go(self, topo: &Topology) -> Result<RunReport, RunError> {
        assert!(self.uows >= 1, "at least one unit of work");
        assert!(
            self.tuning.outbox_capacity >= 1 && self.tuning.courier_capacity >= 1,
            "channel capacities must be at least 1"
        );
        silence_sentinel_panics();
        let graph = Arc::new(self.graph);
        let fault_ctl: Option<Arc<FaultCtl>> = self.faults.as_ref().map(FaultCtl::new);
        match self.executor {
            ExecutorChoice::Sim(mut exec) => {
                if let Some(setup) = self.setup {
                    setup(exec.simulation_mut());
                }
                if let Some(ctl) = &fault_ctl {
                    // Spawns the NIC-degradation drivers; crashes, stalls
                    // and drops are pure time-indexed queries consulted by
                    // the runtime machinery.
                    ctl.plan.install(exec.simulation_mut(), topo);
                }
                drive(
                    exec,
                    topo,
                    graph,
                    self.uows,
                    self.trace,
                    fault_ctl,
                    self.tuning,
                )
            }
            ExecutorChoice::Native(exec) => {
                // Crashes, stalls, drops, delays, degradation windows and
                // supervision are pure time-indexed queries consulted by
                // the runtime machinery and work on wall-clock time too
                // (degradation is emulated by sender-side stalls — see
                // `delivery::spawn_sender`).
                if self.setup.is_some() {
                    return Err(RunError::Unsupported {
                        what: "simulation setup hooks require the virtual-time SimExecutor".into(),
                    });
                }
                drive(
                    exec,
                    topo,
                    graph,
                    self.uows,
                    self.trace,
                    fault_ctl,
                    self.tuning,
                )
            }
            ExecutorChoice::Tasked(mut exec) => {
                // Same wall-clock semantics as Native; only the blocking
                // substrate differs (waker-parked tasks over a pool).
                if self.setup.is_some() {
                    return Err(RunError::Unsupported {
                        what: "simulation setup hooks require the virtual-time SimExecutor".into(),
                    });
                }
                if let Some(cap) = exec.task_cap() {
                    let copies: usize = graph
                        .filters
                        .iter()
                        .map(|f| f.placement.total_copies() as usize)
                        .sum();
                    if copies > cap {
                        return Err(RunError::Unsupported {
                            what: format!(
                                "graph places {copies} filter copies, max_task_copies is {cap}"
                            ),
                        });
                    }
                    // The knob is measured in *filter copies*; the wiring
                    // below also registers per-stream senders, couriers and
                    // reapers, so the raw task-count guard in
                    // `Executor::run` (meant for direct executor users)
                    // must not re-count those against the same cap.
                    exec.clear_task_cap();
                }
                drive(
                    exec,
                    topo,
                    graph,
                    self.uows,
                    self.trace,
                    fault_ctl,
                    self.tuning,
                )
            }
        }
    }
}

/// Wire, run, and harvest on any executor.
fn drive<E: Executor>(
    mut exec: E,
    topo: &Topology,
    graph: Arc<AppGraph>,
    uows: u32,
    trace: Option<hetsim::Trace>,
    fault_ctl: Option<Arc<FaultCtl>>,
    tuning: Tuning,
) -> Result<RunReport, RunError> {
    let error_cell: ErrorCell = Arc::new(Mutex::new(None));
    // Out-of-core context: one ledger + one storage controller for the
    // whole run, created only when a budget was configured (the
    // zero-budget fast path allocates nothing). The controller creates
    // the spill ring lazily on the first actual spill, so a budgeted run
    // that never exceeds its shares touches no temp file — and a run
    // whose temp filesystem is unusable only finds out (and degrades
    // through the storage ladder, not an abort) if it really spills.
    let ooc: Option<(
        Arc<crate::budget::MemoryBudget>,
        Arc<crate::storage::StorageCtl>,
    )> = if tuning.memory_budget_bytes > 0 {
        Some((
            crate::budget::MemoryBudget::new(tuning.memory_budget_bytes),
            crate::storage::StorageCtl::new(
                fault_ctl.as_ref().map(|c| c.plan.clone()),
                tuning.storage_retry_budget,
                tuning.checksum_spills,
            ),
        ))
    } else {
        None
    };
    let wiring = spawn::build(
        &mut exec,
        topo,
        &graph,
        uows,
        trace,
        fault_ctl.clone(),
        error_cell.clone(),
        &tuning,
        ooc.clone(),
    );

    let stats = match exec.run() {
        Ok(stats) => stats,
        Err(e) => {
            // A process that recorded a structured error aborts the run
            // with a sentinel panic; surface the recorded error instead of
            // the raw substrate failure.
            if let Some(recorded) = error_cell.lock().take() {
                return Err(recorded);
            }
            return Err(RunError::Sim(e));
        }
    };

    let copies = wiring
        .copy_cells
        .into_iter()
        .map(|(filter, filter_name, copy_index, host, cell)| CopyReport {
            filter,
            filter_name,
            copy_index,
            host,
            counters: cell.lock().clone(),
        })
        .collect();

    let streams = wiring
        .stream_sets
        .into_iter()
        .enumerate()
        .map(|(i, sets)| StreamReport {
            stream: crate::graph::StreamId(i as u32),
            stream_name: graph.streams[i].name.clone(),
            copysets: sets
                .into_iter()
                .map(|(h, c)| (h, c.lock().clone()))
                .collect(),
        })
        .collect();

    let mut boundaries = std::mem::take(&mut *wiring.uow_boundaries.lock());
    boundaries.sort_unstable();

    let mut faults_report = match &fault_ctl {
        Some(ctl) => {
            let t = ctl.tallies.lock();
            FaultReport {
                injected: ctl.plan.describe(),
                copies_killed: t.copies_killed,
                buffers_replayed: t.buffers_replayed,
                bytes_replayed: t.bytes_replayed,
                buffers_lost: t.buffers_lost,
                bytes_lost: t.bytes_lost,
                retransmits: t.retransmits,
                restarts: t.restarts,
                copies_wedged: t.copies_wedged,
                messages_delayed: t.messages_delayed,
                buffers_redelivered: t.buffers_redelivered,
                bytes_redelivered: t.bytes_redelivered,
                duplicates_suppressed: t.duplicates_suppressed,
                retention_evicted: t.retention_evicted,
                restart_events: t.restart_events.clone(),
                degraded: t.buffers_lost > 0 || t.copies_wedged > 0,
                ..FaultReport::default()
            }
        }
        None => FaultReport::default(),
    };
    if let Some((_, storage)) = &ooc {
        // The storage plane tallies independently of the fault machinery
        // — retries and denials fire (and report) even on plan-free runs
        // where the temp filesystem itself misbehaves.
        faults_report.disk_errors_injected = storage.disk_errors_injected();
        faults_report.storage_retries = storage.storage_retries();
        faults_report.spills_denied = storage.spills_denied();
        faults_report.corruptions_detected = storage.corruptions_detected();
        faults_report.storage_events = storage.events();
    }

    let ooc_report = match &ooc {
        Some((ledger, storage)) => crate::metrics::OocReport {
            memory_budget_bytes: ledger.total(),
            spills: storage.spills(),
            spill_bytes: storage.spill_bytes(),
            faults: storage.faults(),
            fault_bytes: storage.fault_bytes(),
            granted_bytes: ledger.granted(),
            released_bytes: ledger.released(),
        },
        None => crate::metrics::OocReport::default(),
    };

    Ok(RunReport {
        elapsed: stats.end_time - SimTime::ZERO,
        events: stats.events,
        deferred_wakes: stats.deferred_wakes,
        uow_boundaries: boundaries,
        copies,
        streams,
        faults: faults_report,
        ooc: ooc_report,
    })
}

/// Keep the process-wide panic hook from printing "thread panicked"
/// noise for panics the runtime handles itself: the two *sentinel*
/// panics — the [`KilledMarker`] unwinding a crashed filter copy (caught
/// at the copy's spawn wrapper) and the [`crate::fault::ABORT_MSG`]
/// abort after a structured [`RunError`] was recorded (mapped back to
/// the cell's contents) — plus any panic raised inside a filter-callback
/// containment scope, which the copy wrapper converts to a structured
/// error or a supervised restart. Real panics elsewhere still reach the
/// previous hook untouched.
fn silence_sentinel_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let sentinel = payload.is::<KilledMarker>()
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s == crate::fault::ABORT_MSG)
                || crate::fault::panics_contained();
            if !sentinel {
                prev(info);
            }
        }));
    });
}

// ---- deprecated compatibility wrappers -----------------------------------

/// Execute one unit of work of `graph` on `topo`.
#[deprecated(since = "0.2.0", note = "use `Run::new(graph).go(topo)`")]
pub fn run_app(topo: &Topology, graph: AppGraph) -> Result<RunReport, RunError> {
    Run::new(graph).go(topo)
}

/// Execute `uows` consecutive units of work.
#[deprecated(since = "0.2.0", note = "use `Run::new(graph).uows(n).go(topo)`")]
pub fn run_app_uows(topo: &Topology, graph: AppGraph, uows: u32) -> Result<RunReport, RunError> {
    Run::new(graph).uows(uows).go(topo)
}

/// Execute `uows` units of work, recording spans into `trace`.
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(graph).uows(n).trace(t).go(topo)`"
)]
pub fn run_app_traced(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    trace: hetsim::Trace,
) -> Result<RunReport, RunError> {
    Run::new(graph).uows(uows).trace(trace).go(topo)
}

/// Execute `uows` units of work after running `setup` on the simulation.
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(graph).uows(n).setup(f).go(topo)`"
)]
pub fn run_app_with(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    setup: impl FnOnce(&mut Simulation) + 'static,
) -> Result<RunReport, RunError> {
    Run::new(graph).uows(uows).setup(setup).go(topo)
}

/// Execute `uows` units of work under the fault plan in `opts`.
#[deprecated(
    since = "0.2.0",
    note = "use `Run::new(graph).uows(n).faults(opts).go(topo)`"
)]
pub fn run_app_faulted(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    opts: FaultOptions,
) -> Result<RunReport, RunError> {
    Run::new(graph).uows(uows).faults(opts).go(topo)
}
