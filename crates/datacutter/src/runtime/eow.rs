//! End-of-work accounting: the per-copy-set gate that turns in-band EOW
//! markers from producer copies into `UowDone` tokens for consumer copies,
//! once per unit of work. The global inter-UOW barrier lives in the
//! executor substrate ([`super::exec::ExecBarrier`]); this module is the
//! stream-local half of cycle separation.

use hetsim::{HostId, SimTime};

use crate::fault::FaultCtl;
use crate::graph::FilterId;

/// Identity of one producer copy feeding a gate: enough to ask the fault
/// control block whether that specific copy is dead (scheduled host crash
/// *or* a supervised death declaration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProducerRef {
    /// Host the producer copy runs on.
    pub host: HostId,
    /// The producing filter.
    pub filter: FilterId,
    /// Global (per-filter) copy index.
    pub copy: usize,
}

/// Per-copy-set end-of-work accounting: when markers from all producer
/// copies have been seen for the current UOW — or the missing producers
/// are provably dead under the active fault plan — each consumer copy in
/// the set gets one `UowDone`.
pub(crate) struct UowGate {
    /// Producer copies feeding this gate, in copy-index order.
    producers: Vec<ProducerRef>,
    /// Consumer copies in this set (each gets one `UowDone` per cycle).
    copies: u32,
    /// Which producer copies' markers have been seen this cycle.
    eow_seen: Vec<bool>,
    /// Completed end-of-work cycles (== the UOW the gate is waiting on).
    cycle: u32,
}

impl UowGate {
    pub fn new(producers: Vec<ProducerRef>, copies: u32) -> Self {
        let n = producers.len();
        UowGate {
            producers,
            copies,
            eow_seen: vec![false; n],
            cycle: 0,
        }
    }

    /// Record producer `producer`'s marker for the current cycle
    /// (idempotent).
    pub fn mark(&mut self, producer: usize) {
        if producer < self.eow_seen.len() {
            self.eow_seen[producer] = true;
        }
    }

    /// Completed end-of-work cycles so far. A dead copy set's gate is
    /// advanced by its reaper as salvage proceeds; live sets consult it to
    /// avoid declaring end-of-work while replayed buffers are still in
    /// flight.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// Fire if every producer copy has either delivered its marker for the
    /// cycle matching `uow` or is dead under `faults` at time `now` (by
    /// scheduled crash or dynamic declaration). The cycle guard keeps a
    /// consumer that has already finished `uow` from double-firing on late
    /// liveness probes.
    pub fn try_fire(&mut self, uow: u32, faults: Option<&FaultCtl>, now: SimTime) -> Option<u32> {
        if self.cycle != uow {
            return None;
        }
        let complete = self.eow_seen.iter().enumerate().all(|(i, &seen)| {
            seen || faults.is_some_and(|c| {
                let p = &self.producers[i];
                c.copy_dead(p.filter, p.copy, p.host, now)
            })
        });
        if !complete {
            return None;
        }
        self.cycle += 1;
        for s in self.eow_seen.iter_mut() {
            *s = false;
        }
        Some(self.copies)
    }
}
