//! Producer-side retention and consumer-side deduplication — the state
//! behind [`Recovery::Lossless`](crate::fault::Recovery).
//!
//! Every stream of a lossless run owns one [`StreamRetention`]: per
//! producer copy, a bounded ring of slab-pooled replicas of every buffer
//! the copy sent, keyed by a monotonically increasing per-(producer copy,
//! stream) sequence number stamped into the envelope as [`Provenance`].
//! Entries leave the ring three ways:
//!
//! * **settled** — the consuming copy finishes its unit of work cleanly
//!   and acks the sequence numbers it consumed over the stream's courier;
//!   the replicas are recycled to the [`BufferSlab`].
//! * **redelivered** — the consuming copy set died (reaper forwards the
//!   set's unsettled replicas to survivors) or a supervised copy
//!   restarted (its consumed-but-unflushed buffers are re-injected); the
//!   replica carries the original [`Provenance`] so consumers deduplicate.
//! * **evicted** — the ring is full (`retention_depth`); the oldest
//!   replica is recycled and tallied, trading the lossless guarantee for
//!   the memory bound.
//!
//! Consumer copy sets of a lossless stream share a [`Dedup`] table: every
//! provenance-stamped delivery claims its `(producer copy, seq)` slot, and
//! a second claim — an original racing its own redelivered replica —
//! is suppressed, which is what makes redelivery idempotent. The table
//! resets itself when the unit of work advances.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::{BufferSlab, DataBuffer};
use crate::fault::FaultCtl;

/// Where a retained buffer came from: which producer copy sent it and its
/// per-(producer copy, stream) sequence number. Travels in the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Provenance {
    /// Producer copy index (global across the producer filter's copies).
    pub copy: u32,
    /// Monotonic sequence number of this send from that copy.
    pub seq: u64,
}

/// One retained replica awaiting settlement.
struct Retained {
    seq: u64,
    /// Consumer copy set the original was addressed to.
    set_idx: usize,
    buf: DataBuffer,
}

/// Per-producer-copy retention ring.
#[derive(Default)]
struct Ring {
    entries: std::collections::VecDeque<Retained>,
    next_seq: u64,
}

/// Retention state of one stream under lossless recovery: a ring per
/// producer copy plus the shared slab and tallies. Shared (`Arc`) between
/// the producer copies' output ports (stamp), the consumer sets' couriers
/// (settle), the reapers (drain on set death), and restarted copies
/// (fetch for re-injection).
pub(crate) struct StreamRetention {
    rings: Vec<Mutex<Ring>>,
    depth: usize,
    slab: BufferSlab,
    ctl: Arc<FaultCtl>,
}

impl StreamRetention {
    pub fn new(n_producer_copies: usize, slab: BufferSlab, ctl: Arc<FaultCtl>) -> Self {
        StreamRetention {
            rings: (0..n_producer_copies)
                .map(|_| Mutex::new(Ring::default()))
                .collect(),
            depth: ctl.retention_depth,
            slab,
            ctl,
        }
    }

    /// Stamp one outgoing buffer from producer `copy` addressed to
    /// consumer set `set_idx`: allocate its sequence number and retain a
    /// replica. Returns `None` (no provenance, nothing retained) when the
    /// buffer is not replicable — such buffers stay recoverable only while
    /// queued, exactly as in degraded mode.
    pub fn stamp(&self, copy: usize, set_idx: usize, buf: &DataBuffer) -> Option<Provenance> {
        let replica = buf.replicate(&self.slab)?;
        let mut ring = self.rings[copy].lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.entries.push_back(Retained {
            seq,
            set_idx,
            buf: replica,
        });
        let evicted = if ring.entries.len() > self.depth {
            ring.entries.pop_front()
        } else {
            None
        };
        drop(ring);
        if let Some(e) = evicted {
            self.slab.repool(e.buf);
            self.ctl.tallies.lock().retention_evicted += 1;
        }
        Some(Provenance {
            copy: copy as u32,
            seq,
        })
    }

    /// Replicate the retained entry `(copy, seq)` for re-injection into a
    /// restarted consumer. The entry stays retained (a second fault may
    /// need it again); `None` when it was already settled or evicted.
    pub fn fetch(&self, copy: u32, seq: u64) -> Option<DataBuffer> {
        let ring = self.rings[copy as usize].lock();
        let entry = ring.entries.iter().find(|e| e.seq == seq)?;
        entry.buf.replicate(&self.slab)
    }

    /// Remove and return every entry addressed to the (dead) consumer set
    /// `set_idx`, in deterministic (producer copy, seq) order, for the
    /// reaper to forward to survivors.
    pub fn drain_for_set(&self, set_idx: usize) -> Vec<(Provenance, DataBuffer)> {
        let mut out = Vec::new();
        for (copy, ring) in self.rings.iter().enumerate() {
            let mut ring = ring.lock();
            let mut kept = std::collections::VecDeque::with_capacity(ring.entries.len());
            for e in ring.entries.drain(..) {
                if e.set_idx == set_idx {
                    out.push((
                        Provenance {
                            copy: copy as u32,
                            seq: e.seq,
                        },
                        e.buf,
                    ));
                } else {
                    kept.push_back(e);
                }
            }
            ring.entries = kept;
        }
        out
    }

    /// Settle (GC) the entries a consumer copy acked after cleanly
    /// finishing its unit of work: recycle their replicas to the slab.
    pub fn settle(&self, items: &[Provenance]) {
        for p in items {
            let entry = {
                let mut ring = self.rings[p.copy as usize].lock();
                ring.entries
                    .iter()
                    .position(|e| e.seq == p.seq)
                    .and_then(|i| ring.entries.remove(i))
            };
            if let Some(e) = entry {
                self.slab.repool(e.buf);
            }
        }
    }

    /// Replicas currently retained across all rings (tests/diagnostics).
    #[cfg(test)]
    pub fn retained(&self) -> usize {
        self.rings.iter().map(|r| r.lock().entries.len()).sum()
    }
}

/// Sequence-number deduplication table of one consumer copy set on one
/// lossless stream. Shared by the set's copies (they share the delivery
/// queue, so an original and its redelivered replica may be dequeued by
/// different copies). Self-clearing: claims are scoped to a unit of work,
/// and the table resets when it sees the next one (all copies sit between
/// the same global barriers, so a reset can never erase a live claim).
pub(crate) struct Dedup {
    inner: Mutex<DedupInner>,
}

#[derive(Default)]
struct DedupInner {
    uow: u32,
    seen: HashSet<(u32, u64)>,
}

impl Dedup {
    pub fn new() -> Self {
        Dedup {
            inner: Mutex::new(DedupInner::default()),
        }
    }

    /// Claim `(copy, seq)` for processing in `uow`. `true` on first
    /// claim; `false` means a copy of this set already processed it and
    /// the caller must suppress the duplicate.
    pub fn claim(&self, uow: u32, p: Provenance) -> bool {
        let mut inner = self.inner.lock();
        if inner.uow != uow {
            inner.uow = uow;
            inner.seen.clear();
        }
        inner.seen.insert((p.copy, p.seq))
    }

    /// Release a claim: the incarnation that processed `(copy, seq)` died
    /// before flushing, so its re-fetched replica must be processed
    /// again rather than suppressed.
    pub fn forget(&self, uow: u32, p: Provenance) {
        let mut inner = self.inner.lock();
        if inner.uow == uow {
            inner.seen.remove(&(p.copy, p.seq));
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::fault::FaultOptions;
    use hetsim::FaultPlan;

    fn retention(depth: usize) -> StreamRetention {
        let opts = FaultOptions::new(FaultPlan::new())
            .lossless()
            .retention_depth(depth);
        StreamRetention::new(2, BufferSlab::new(), FaultCtl::new(&opts))
    }

    fn buf(slab: &BufferSlab, v: u64) -> DataBuffer {
        slab.make_replicable(v, 8)
    }

    #[test]
    fn stamp_assigns_monotonic_seqs_per_copy() {
        let r = retention(16);
        let slab = BufferSlab::new();
        let a = r.stamp(0, 0, &buf(&slab, 1)).expect("replicable");
        let b = r.stamp(0, 1, &buf(&slab, 2)).expect("replicable");
        let c = r.stamp(1, 0, &buf(&slab, 3)).expect("replicable");
        assert_eq!((a.copy, a.seq), (0, 0));
        assert_eq!((b.copy, b.seq), (0, 1));
        assert_eq!((c.copy, c.seq), (1, 0), "seqs are per producer copy");
        assert_eq!(r.retained(), 3);
    }

    #[test]
    fn non_replicable_buffers_are_not_retained() {
        let r = retention(16);
        let plain = DataBuffer::new(1u64, 8);
        assert!(r.stamp(0, 0, &plain).is_none());
        assert_eq!(r.retained(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_tallies() {
        let slab = BufferSlab::new();
        let opts = FaultOptions::new(FaultPlan::new())
            .lossless()
            .retention_depth(2);
        let ctl = FaultCtl::new(&opts);
        let r = StreamRetention::new(1, slab.clone(), ctl.clone());
        for v in 0..5u64 {
            r.stamp(0, 0, &buf(&slab, v));
        }
        assert_eq!(r.retained(), 2, "ring bounded at depth");
        assert_eq!(ctl.tallies.lock().retention_evicted, 3);
        // The oldest seqs are gone, the newest remain fetchable.
        assert!(r.fetch(0, 0).is_none());
        assert!(r.fetch(0, 4).is_some());
    }

    #[test]
    fn fetch_keeps_the_entry_retained() {
        let r = retention(16);
        let slab = BufferSlab::new();
        r.stamp(0, 0, &buf(&slab, 7)).expect("replicable");
        let first = r.fetch(0, 0).expect("retained");
        assert_eq!(first.downcast::<u64>(), 7);
        let second = r.fetch(0, 0).expect("still retained after fetch");
        assert_eq!(second.downcast::<u64>(), 7);
    }

    #[test]
    fn drain_for_set_takes_only_that_sets_entries() {
        let r = retention(16);
        let slab = BufferSlab::new();
        r.stamp(0, 0, &buf(&slab, 10));
        r.stamp(0, 1, &buf(&slab, 11));
        r.stamp(1, 1, &buf(&slab, 12));
        let drained = r.drain_for_set(1);
        assert_eq!(drained.len(), 2);
        let vals: Vec<u64> = drained.into_iter().map(|(_, b)| b.downcast()).collect();
        assert_eq!(vals, vec![11, 12], "deterministic (copy, seq) order");
        assert_eq!(r.retained(), 1, "set 0's entry stays");
    }

    #[test]
    fn settle_recycles_replicas() {
        let r = retention(16);
        let slab = BufferSlab::new();
        let p = r.stamp(0, 0, &buf(&slab, 1)).expect("replicable");
        r.settle(&[p]);
        assert_eq!(r.retained(), 0);
        // Settling twice (or an evicted entry) is a no-op.
        r.settle(&[p]);
    }

    #[test]
    fn dedup_claims_once_per_uow() {
        let d = Dedup::new();
        let p = Provenance { copy: 0, seq: 3 };
        assert!(d.claim(0, p), "first claim processes");
        assert!(!d.claim(0, p), "second claim suppresses");
        assert!(d.claim(1, p), "next uow resets the table");
        d.forget(1, p);
        assert!(d.claim(1, p), "forgotten claims can be re-claimed");
    }
}
