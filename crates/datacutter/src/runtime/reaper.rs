//! Dead-set salvage: one reaper process per copy set whose host is
//! scheduled to crash. The reaper waits (without consuming) until the
//! crash, then drains the dead queue for the rest of the run, replaying
//! demand-driven buffers to surviving copy sets and tallying
//! unrecoverable ones as lost. Fault plans only exist under the
//! virtual-time executor, so reapers are sim-only by construction.

use std::sync::Arc;

use hetsim::{DeadlineRecv, SimTime, Topology};
use parking_lot::Mutex;

use super::delivery::Envelope;
use super::eow::UowGate;
use super::exec::{ChanRx, ChanTx, ExecEnv};
use crate::fault::{abort_run, ErrorCell, FaultCtl, RunError};
use crate::policy::{AckHandle, CopySetInfo};

/// Salvages the copy-set queue of a host scheduled to crash: waits
/// (without consuming) until the crash, then drains the queue for the
/// rest of the run, replaying demand-driven buffers to surviving copy
/// sets and tallying unrecoverable ones as lost.
pub(crate) struct Reaper {
    pub ctl: Arc<FaultCtl>,
    pub errors: ErrorCell,
    pub rx: ChanRx<Envelope>,
    /// Replay targets: `(copyset_idx, sender)` for every set on the stream
    /// with *no* scheduled death. Holding senders keeps a channel open, so
    /// the reaper must not hold one to its own queue (it would never see
    /// it close) nor to another doomed set's (two reapers would keep each
    /// other alive); sets that die later just never receive replays.
    pub survivors: Vec<(usize, ChanTx<Envelope>)>,
    pub sets: Vec<CopySetInfo>,
    pub t_death: SimTime,
    pub topo: Topology,
    pub stream: String,
    /// The dead set's own end-of-work gate: the reaper advances its cycle
    /// as salvage proceeds so live peer sets know when no more replays
    /// for a given UOW can arrive (see `FilterCtx::replays_settled`).
    pub gate: Arc<Mutex<UowGate>>,
    pub uows: u32,
}

impl Reaper {
    pub fn run(self, env: ExecEnv) {
        let tick = self.ctl.timeout;
        // Phase 1: wait for the crash without consuming anything the live
        // consumers should get; exit early if the stream drains and closes
        // first (crash scheduled past the end of the run).
        loop {
            let now = env.now();
            if now >= self.t_death {
                break;
            }
            if self.rx.is_drained() {
                return;
            }
            let tick_end = now + tick;
            let next = if self.t_death < tick_end {
                self.t_death
            } else {
                tick_end
            };
            env.delay(next - now);
        }
        // Phase 2: the set's consumers are dead (they stop dequeuing at
        // the crash instant); everything still in — or still arriving on —
        // this queue is ours to salvage, until every producer-side sender
        // hangs up.
        loop {
            self.advance_gate(&env);
            let deadline = env.now() + tick;
            match self.rx.recv_deadline(&env, deadline) {
                DeadlineRecv::Closed => return,
                DeadlineRecv::TimedOut => continue,
                DeadlineRecv::Item(envelope) => self.salvage(&env, envelope),
            }
        }
    }

    /// Advance the dead set's gate through every end-of-work cycle whose
    /// producer markers have all been salvaged (dead producers excused).
    /// Because each producer's marker trails all of its data in the FIFO
    /// queue, a cycle counted here has had every salvageable buffer
    /// already forwarded to the survivors.
    fn advance_gate(&self, env: &ExecEnv) {
        let now = env.now();
        let mut g = self.gate.lock();
        while g.cycle() < self.uows {
            let cycle = g.cycle();
            if g.try_fire(cycle, Some(&self.ctl), now).is_none() {
                break;
            }
        }
    }

    fn salvage(&self, env: &ExecEnv, envelope: Envelope) {
        match envelope {
            Envelope::Data {
                buf,
                ack: Some(ack),
            } => {
                let alive: Vec<usize> = self.survivors.iter().map(|&(i, _)| i).collect();
                match ack.state.reroute(env, ack.copyset_idx, &alive) {
                    Some(new_idx) => {
                        // Replay: charge the retransmission from the
                        // producer to the surviving host, then re-enqueue
                        // with the ack handle re-addressed.
                        self.topo.transfer(
                            env.expect_sim(),
                            ack.state.producer_host(),
                            self.sets[new_idx].host,
                            buf.transport_bytes(),
                        );
                        let bytes = buf.wire_bytes();
                        let replay = Envelope::Data {
                            buf,
                            ack: Some(AckHandle {
                                state: ack.state.clone(),
                                copyset_idx: new_idx,
                            }),
                        };
                        let tx = self
                            .survivors
                            .iter()
                            .find(|&&(i, _)| i == new_idx)
                            .map(|(_, tx)| tx)
                            .expect("reroute only picks from the survivor list");
                        if tx.send(env, replay).is_ok() {
                            let mut t = self.ctl.tallies.lock();
                            t.buffers_replayed += 1;
                            t.bytes_replayed += bytes;
                        } else {
                            self.lose(bytes);
                        }
                    }
                    None => self.lose(buf.wire_bytes()),
                }
            }
            // No ack handle (RR/WRR or content-routed `write_to`): the
            // producer's routing decision cannot be replayed safely.
            Envelope::Data { buf, ack: None } => self.lose(buf.wire_bytes()),
            // A producer's end-of-work marker: no consumer will act on it,
            // but it proves all of that producer's data for the cycle has
            // been salvaged — record it so the dead gate can advance.
            Envelope::Eow { producer } => {
                self.gate.lock().mark(producer);
                self.advance_gate(env);
            }
            Envelope::UowDone => {}
        }
    }

    fn lose(&self, bytes: u64) {
        {
            let mut t = self.ctl.tallies.lock();
            t.buffers_lost += 1;
            t.bytes_lost += bytes;
        }
        if !self.ctl.allow_degraded {
            abort_run(
                &self.errors,
                RunError::NoSurvivingConsumers {
                    stream: self.stream.clone(),
                },
            );
        }
    }
}
