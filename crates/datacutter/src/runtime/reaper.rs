//! Dead-set salvage: a reaper process per doomed copy set. The reaper
//! waits (without consuming) until the set's death, then drains the dead
//! queue for the rest of the run, replaying demand-driven buffers to
//! surviving copy sets and tallying unrecoverable ones as lost.
//!
//! Under a pure fault *plan* the doomed sets are known upfront, so spawn
//! wires one reaper per scheduled death with a fixed death time — the
//! original (bit-identical) configuration. Under *supervision* any copy
//! can die at runtime (restart budget exhausted, wedge detection), so
//! every set gets a reaper that probes the fault control block's merged
//! death oracle each tick. Once the run's shutdown flag rises (every copy
//! finished or died) a supervised reaper drains whatever is stranded in
//! its queue — counting data buffers as lost, since no consumer remains —
//! and exits; it must *not* simply wait for emptiness, because a wedged
//! peer's reaper may replay buffers into a set that already completed the
//! cycle before the wedge was even detected.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hetsim::{DeadlineRecv, HostId, SimTime, Topology};
use parking_lot::Mutex;

use super::delivery::Envelope;
use super::eow::UowGate;
use super::exec::{charge_transfer, ChanRx, ChanTx, ExecEnv};
use super::native::CancelScope;
use super::retain::StreamRetention;
use crate::fault::{abort_run, ErrorCell, FaultCtl, RunError};
use crate::policy::{AckHandle, CopySetInfo};

/// Salvages the copy-set queue of a doomed (or potentially doomed) copy
/// set: waits without consuming until the set dies, then drains the queue
/// for the rest of the run, replaying demand-driven buffers to surviving
/// copy sets and tallying unrecoverable ones as lost.
pub(crate) struct Reaper {
    pub ctl: Arc<FaultCtl>,
    pub errors: ErrorCell,
    pub rx: ChanRx<Envelope>,
    /// Replay targets: `(copyset_idx, sender)`. Under a pure plan this
    /// lists every set with *no* scheduled death — holding senders keeps a
    /// channel open, so the reaper must not hold one to its own queue (it
    /// would never see it close) nor to another doomed set's (two reapers
    /// would keep each other alive). Under supervision every other set is
    /// listed (deaths aren't known upfront); the keep-alive problem is
    /// solved by the shutdown flag instead, and dead targets are filtered
    /// out at replay time.
    pub survivors: Vec<(usize, ChanTx<Envelope>)>,
    pub sets: Vec<CopySetInfo>,
    /// This reaper's own copy set (`sets[own_idx]`), for the death oracle.
    pub own_idx: usize,
    /// The scheduled death, when wired from a pure plan; `None` under
    /// supervision, where the death time is probed from `ctl` each tick.
    pub t_death: Option<SimTime>,
    pub topo: Topology,
    pub stream: String,
    /// The dead set's own end-of-work gate: the reaper advances its cycle
    /// as salvage proceeds so live peer sets know when no more replays
    /// for a given UOW can arrive (see `FilterCtx::replays_settled`).
    pub gate: Arc<Mutex<UowGate>>,
    pub uows: u32,
    /// Set once every filter copy of the run has finished or died;
    /// supervised reapers use it as their drain-and-exit signal, since
    /// cross-held survivor senders keep their channels from ever closing.
    /// `None` under a pure plan.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// The native run's cancellation scope (`None` on the simulator and
    /// before the native transport hands one out). The supervisor flips
    /// it as a last resort after abandoning a wedged thread; a waiting
    /// reaper must observe it rather than sleep forever.
    pub cancel: Option<Arc<CancelScope>>,
    /// Lossless recovery: the stream's retention. When set, the reaper
    /// forwards the dead set's unsettled retained replicas — and every
    /// salvaged queue original, marked redelivered — to one deterministic
    /// survivor (next alive set in index order, matching the tile-hash
    /// writer's fall-through), and the survivor's dedup table suppresses
    /// the overlap. `None` ⇒ degraded salvage only.
    pub retention: Option<Arc<StreamRetention>>,
    /// Host of each producer copy, indexed by copy (for charging replica
    /// retransmissions from the producer side). Empty in degraded mode.
    pub producer_hosts: Vec<HostId>,
}

impl Reaper {
    /// The set's death time, as currently known.
    fn death_time(&self) -> Option<SimTime> {
        match self.t_death {
            Some(t) => Some(t),
            None => self.ctl.set_death(&self.sets[self.own_idx]),
        }
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Acquire))
    }

    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    pub fn run(mut self, env: ExecEnv) {
        let tick = self.ctl.timeout;
        // Phase 1: wait for the death without consuming anything the live
        // consumers should get; exit early if the stream drains and closes
        // first (death scheduled past the end of the run, or a supervised
        // set that never dies). Shutdown also ends the wait: every copy
        // has finished or died, so nothing this queue holds — or still
        // receives — will ever be consumed, and phase 2 absorbs it as
        // losses instead of insisting on emptiness (a wedged peer's
        // reaper may have replayed buffers here *after* this live set
        // already completed the cycle).
        loop {
            if self.cancelled() {
                return;
            }
            let now = env.now();
            let death = self.death_time();
            if let Some(t) = death {
                if now >= t {
                    break;
                }
            }
            if self.rx.is_drained() {
                return;
            }
            if self.shutdown_requested() {
                break;
            }
            let tick_end = now + tick;
            let next = match death {
                Some(t) if t < tick_end => t,
                _ => tick_end,
            };
            env.delay(next - now);
        }
        // Phase 2: the set's consumers are dead (they stop dequeuing at
        // the death instant) or the whole run has retired; everything
        // still in — or still arriving on — this queue is ours to
        // salvage, until every producer-side sender hangs up (pure plan)
        // or the run shuts down (supervision). No cancellation check in
        // this loop: on a cancelled scope `recv_deadline` keeps yielding
        // queued items and reports `Closed` once empty, so the drain —
        // and its loss accounting — always completes.
        loop {
            if self.shutdown_requested() {
                // The run is over. Release the cross-held survivor
                // senders — peer reapers' queues can then close, and the
                // cross-hold cycle cannot keep two drained reapers alive —
                // and stop replaying: with every copy retired, a "replay"
                // has no consumer and must be accounted a loss.
                self.survivors.clear();
            }
            // Redeliver before the gate can advance: a live peer holds
            // its end-of-work until this dead gate passes the UOW, so
            // replicas forwarded here are always consumed.
            self.redeliver_retained(&env);
            self.advance_gate(&env);
            let deadline = env.now() + tick;
            match self.rx.recv_deadline(&env, deadline) {
                DeadlineRecv::Closed => return,
                DeadlineRecv::TimedOut => {
                    if self.shutdown_requested() && self.rx.is_empty() {
                        return;
                    }
                }
                DeadlineRecv::Item(envelope) => self.salvage(&env, envelope),
            }
        }
    }

    /// Advance the dead set's gate through every end-of-work cycle whose
    /// producer markers have all been salvaged (dead producers excused).
    /// Because each producer's marker trails all of its data in the FIFO
    /// queue, a cycle counted here has had every salvageable buffer
    /// already forwarded to the survivors.
    fn advance_gate(&self, env: &ExecEnv) {
        let now = env.now();
        let mut g = self.gate.lock();
        while g.cycle() < self.uows {
            let cycle = g.cycle();
            if g.try_fire(cycle, Some(&self.ctl), now).is_none() {
                break;
            }
        }
    }

    /// The deterministic forward target for lossless redelivery: the next
    /// currently-alive survivor in index order after this dead set — the
    /// same fall-through order the tile-hash writer probes, so forwarded
    /// tiles land where post-death writes already go.
    fn forward_target(&self, env: &ExecEnv) -> Option<(usize, &ChanTx<Envelope>)> {
        let now = env.now();
        let n = self.sets.len();
        for k in 1..n {
            let idx = (self.own_idx + k) % n;
            if self.ctl.set_dead(&self.sets[idx], now) {
                continue;
            }
            if let Some((_, tx)) = self.survivors.iter().find(|&&(i, _)| i == idx) {
                return Some((idx, tx));
            }
        }
        None
    }

    /// Lossless recovery: drain the retention entries addressed to this
    /// dead set and forward the replicas to the deterministic survivor.
    /// Called repeatedly through phase 2 — a producer that had not yet
    /// noticed the death keeps stamping buffers at this set, and each
    /// re-drain picks those up before the gate can advance past their
    /// UOW (their end-of-work markers trail them through this queue).
    fn redeliver_retained(&self, env: &ExecEnv) {
        let Some(retention) = self.retention.as_ref() else {
            return;
        };
        let drained = retention.drain_for_set(self.own_idx);
        if drained.is_empty() {
            return;
        }
        let target = self.forward_target(env).map(|(i, tx)| (i, tx.clone()));
        for (p, buf) in drained {
            let Some((idx, tx)) = target.as_ref() else {
                self.lose(buf.wire_bytes());
                continue;
            };
            let from = self
                .producer_hosts
                .get(p.copy as usize)
                .copied()
                .unwrap_or(self.sets[self.own_idx].host);
            charge_transfer(
                env,
                &self.topo,
                from,
                self.sets[*idx].host,
                buf.transport_bytes(),
            );
            let bytes = buf.wire_bytes();
            let fwd = Envelope::Data {
                buf,
                ack: None,
                prov: Some(p),
            };
            if tx.send(env, fwd).is_ok() {
                let mut t = self.ctl.tallies.lock();
                t.buffers_redelivered += 1;
                t.bytes_redelivered += bytes;
            } else {
                self.lose(bytes);
            }
        }
    }

    /// Lossless salvage of one queued data envelope: forward it to the
    /// deterministic survivor marked redelivered, keeping its provenance
    /// so the survivor's dedup suppresses the overlap with the drained
    /// retention replica (and so a replica already evicted from the
    /// bounded ring still survives through this path). A demand-driven
    /// ack handle is credited here — redelivery is not window-limited.
    fn forward_original(
        &self,
        env: &ExecEnv,
        buf: crate::buffer::DataBuffer,
        ack: Option<AckHandle>,
        prov: Option<super::retain::Provenance>,
    ) {
        if let Some(ack) = &ack {
            ack.state.ack(env, ack.copyset_idx);
        }
        match self.forward_target(env) {
            Some((idx, tx)) => {
                charge_transfer(
                    env,
                    &self.topo,
                    self.sets[self.own_idx].host,
                    self.sets[idx].host,
                    buf.transport_bytes(),
                );
                let bytes = buf.wire_bytes();
                let fwd = Envelope::Data {
                    buf,
                    ack: None,
                    prov,
                };
                if tx.send(env, fwd).is_ok() {
                    let mut t = self.ctl.tallies.lock();
                    t.buffers_replayed += 1;
                    t.bytes_replayed += bytes;
                } else {
                    self.lose(bytes);
                }
            }
            None => self.lose(buf.wire_bytes()),
        }
    }

    /// Degraded salvage of one demand-driven data envelope: reroute it to
    /// a survivor through the producer's window accounting, or account it
    /// lost.
    fn reroute_acked(&self, env: &ExecEnv, buf: crate::buffer::DataBuffer, ack: AckHandle) {
        // Under supervision a listed target may itself have died
        // since wiring; filter those out so two dead sets can't
        // ping-pong a buffer between their reapers forever.
        let now = env.now();
        let supervised = self.shutdown.is_some();
        let alive: Vec<usize> = self
            .survivors
            .iter()
            .map(|&(i, _)| i)
            .filter(|&i| !supervised || !self.ctl.set_dead(&self.sets[i], now))
            .collect();
        match ack.state.reroute(env, ack.copyset_idx, &alive) {
            Some(new_idx) => {
                // Replay: charge the retransmission from the
                // producer to the surviving host (emulated network,
                // sim only), then re-enqueue with the ack handle
                // re-addressed.
                charge_transfer(
                    env,
                    &self.topo,
                    ack.state.producer_host(),
                    self.sets[new_idx].host,
                    buf.transport_bytes(),
                );
                let bytes = buf.wire_bytes();
                let replay = Envelope::Data {
                    buf,
                    ack: Some(AckHandle {
                        state: ack.state.clone(),
                        copyset_idx: new_idx,
                    }),
                    prov: None,
                };
                let tx = match self
                    .survivors
                    .iter()
                    .find(|&&(i, _)| i == new_idx)
                    .map(|(_, tx)| tx)
                {
                    Some(tx) => tx,
                    None => unreachable!("reroute only picks from the survivor list"),
                };
                if tx.send(env, replay).is_ok() {
                    let mut t = self.ctl.tallies.lock();
                    t.buffers_replayed += 1;
                    t.bytes_replayed += bytes;
                } else {
                    self.lose(bytes);
                }
            }
            None => self.lose(buf.wire_bytes()),
        }
    }

    fn salvage(&self, env: &ExecEnv, envelope: Envelope) {
        match envelope {
            Envelope::Data { buf, ack, prov } => {
                if self.retention.is_some() {
                    self.forward_original(env, buf, ack, prov);
                } else if let Some(ack) = ack {
                    self.reroute_acked(env, buf, ack);
                } else {
                    // No ack handle (RR/WRR or content-routed `write_to`):
                    // the producer's routing decision cannot be replayed
                    // safely in degraded mode.
                    self.lose(buf.wire_bytes());
                }
            }
            // A producer's end-of-work marker: no consumer will act on it,
            // but it proves all of that producer's data for the cycle has
            // been salvaged — record it so the dead gate can advance.
            // Redeliver first: the marker trails all of its producer's
            // stamps, so any replica it implies must be forwarded before
            // the gate can release a waiting peer.
            Envelope::Eow { producer } => {
                self.redeliver_retained(env);
                self.gate.lock().mark(producer);
                self.advance_gate(env);
            }
            Envelope::UowDone => {}
        }
    }

    fn lose(&self, bytes: u64) {
        {
            let mut t = self.ctl.tallies.lock();
            t.buffers_lost += 1;
            t.bytes_lost += bytes;
        }
        if !self.ctl.allow_degraded {
            abort_run(
                &self.errors,
                RunError::NoSurvivingConsumers {
                    stream: self.stream.clone(),
                },
            );
        }
    }
}
