//! The park/unpark seam of the blocking runtime.
//!
//! Every place a native-substrate thread can block — the MPMC channel's
//! not-full/not-empty edges, the SPSC ring's Dekker park, the barrier,
//! the run-completion ledger, the demand-driven credit window, and
//! `ExecEnv::delay` — parks through a [`ParkSite`] instead of a raw
//! `parking_lot::Condvar`. A site is built from the transport's
//! [`Parking`] mode and comes in two flavours:
//!
//! * **`Thread`** — wraps a `Condvar` verbatim. This is bit-for-bit the
//!   pre-seam behaviour of [`super::native::NativeExecutor`]: the OS
//!   blocks the thread, the kernel picks who wakes.
//! * **`Tasked`** — a FIFO queue of per-thread [`WakeCell`] wakers.
//!   Waiters register under the primitive's mutex (so registration is
//!   atomic with the predicate check), release the mutex *and their
//!   [`Scheduler`] admission slot*, and park on `std::thread::park`
//!   until a notifier hands them their cell back. This is what lets
//!   [`super::tasked::TaskedExecutor`] multiplex thousands of filter
//!   copies over a worker pool sized to the core count: a blocked copy
//!   costs a parked carrier thread and zero pool capacity.
//!
//! The seam is a closed enum rather than a trait object for the same
//! reason `ExecEnv`/`ChanTx` are: the hot paths stay monomorphic and the
//! runtime's shared types (`FilterCtx`, the channel ends) stay
//! non-generic. Spurious wakeups are allowed on both arms — every wait
//! site in the runtime is a predicate loop.
//!
//! ## Why admission is released around every park
//!
//! The cooperative substrate admits only `workers` tasks at a time. If a
//! slot-holder blocked while keeping its slot, `workers` blocked tasks
//! would wedge the whole run (classic pool starvation). So the tasked
//! wait path always releases the slot *before* parking and reacquires it
//! *before* relocking the primitive — reacquiring after relocking can
//! deadlock when every slot-holder piles onto a mutex held by a
//! slot-waiter.
//!
//! ## Why notifications are routed through admission
//!
//! Waking an admission-scheduled waiter directly would put its carrier
//! through a wake→contend→repark cycle whenever the pool is saturated:
//! the OS schedules the carrier, `acquire_slot` finds no free slot, and
//! the thread parks again inside the scheduler. At large fan-outs this
//! wake storm doubles the context switches on the hottest path. Instead,
//! [`ParkSite::notify_one`] hands a scheduled waiter to
//! [`Scheduler::grant_to`]: when a slot is free the waiter is woken
//! *already owning it* (the `granted` flag on its [`WakeCell`]); when the
//! pool is saturated the wake itself is deferred — the cell joins the
//! scheduler's FIFO and `release_slot`'s hand-off delivers the wake and
//! the slot together. A notified carrier is therefore scheduled by the
//! OS exactly once, with work it is admitted to run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

// ---- wakers ---------------------------------------------------------------

/// One thread's waker: a handle to unpark it plus the signal flag that
/// makes `unpark` tokens attributable. `wake` publishes the signal before
/// unparking; the owner consumes it with an acquire swap, so a wake is
/// never lost to a stray token and a stray token never counts as a wake.
pub(crate) struct WakeCell {
    thread: std::thread::Thread,
    signal: AtomicBool,
    /// Set (before the wake) when the waker hands this thread an
    /// admission slot along with the wake, so the waiter can skip
    /// `acquire_slot` entirely. Consumed by [`WakeCell::take_granted`].
    granted: AtomicBool,
}

impl WakeCell {
    fn for_current_thread() -> Self {
        WakeCell {
            thread: std::thread::current(),
            signal: AtomicBool::new(false),
            granted: AtomicBool::new(false),
        }
    }

    /// Signal and unpark the owning thread.
    pub fn wake(&self) {
        self.signal.store(true, Ordering::Release);
        self.thread.unpark();
    }

    /// Signal, unpark, and pass ownership of an admission slot.
    fn wake_with_slot(&self) {
        self.granted.store(true, Ordering::Release);
        self.wake();
    }

    /// Consume the slot-grant flag: `true` means the last wake carried
    /// an admission slot this thread now owns.
    fn take_granted(&self) -> bool {
        self.granted.swap(false, Ordering::AcqRel)
    }

    /// Park the current (owning) thread until [`WakeCell::wake`],
    /// consuming the signal.
    fn block_until_signalled(&self) {
        while !self.signal.swap(false, Ordering::AcqRel) {
            std::thread::park();
        }
    }

    /// As [`WakeCell::block_until_signalled`] but give up at `deadline`.
    /// Returns `true` when signalled, `false` on timeout (the signal, if
    /// it races in after the deadline check, is *not* consumed — callers
    /// resolve that race under their waiter-queue lock).
    fn block_until_signalled_by(&self, deadline: Instant) -> bool {
        loop {
            if self.signal.swap(false, Ordering::AcqRel) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            std::thread::park_timeout(deadline - now);
        }
    }
}

// ---- per-thread parker ----------------------------------------------------

struct Parker {
    cell: Arc<WakeCell>,
    /// The admission scheduler this thread participates in, when it is a
    /// tasked-executor *worker* carrier. Control threads (supervisor,
    /// the executor's main thread) leave this empty and park without the
    /// slot dance.
    admission: RefCell<Option<Arc<Scheduler>>>,
}

thread_local! {
    static PARKER: Parker = Parker {
        cell: Arc::new(WakeCell::for_current_thread()),
        admission: RefCell::new(None),
    };
}

/// Mark the current thread as an admission-scheduled worker carrier: its
/// parks on `Tasked` sites will release/reacquire a [`Scheduler`] slot.
pub(crate) fn enter_admission(sched: Arc<Scheduler>) {
    PARKER.with(|p| *p.admission.borrow_mut() = Some(sched));
}

/// The current thread's waker cell.
pub(crate) fn current_cell() -> Arc<WakeCell> {
    PARKER.with(|p| p.cell.clone())
}

fn parker() -> (Arc<WakeCell>, Option<Arc<Scheduler>>) {
    PARKER.with(|p| (p.cell.clone(), p.admission.borrow().clone()))
}

// ---- admission scheduler --------------------------------------------------

/// Counting-semaphore admission with FIFO direct hand-off: at most
/// `workers` tasks run at once; a released slot passes straight to the
/// longest-waiting task (its carrier is woken holding the slot, no
/// re-contention). This is the entire scheduler of the cooperative
/// executor — blocking, waking, and fairness all reduce to it plus the
/// [`ParkSite`] waiter queues.
pub(crate) struct Scheduler {
    st: Mutex<SchedState>,
    /// Notifications whose wake was deferred because the pool was
    /// saturated. Each one is a wake→contend→repark round trip the
    /// direct-wake scheme would have paid (a futile OS wakeup of the
    /// carrier); surfaced through `ExecStats` as `deferred_wakes`.
    deferred: AtomicU64,
}

struct SchedState {
    free: usize,
    queue: VecDeque<Arc<WakeCell>>,
}

impl Scheduler {
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            st: Mutex::new(SchedState {
                free: workers.max(1),
                queue: VecDeque::new(),
            }),
            deferred: AtomicU64::new(0),
        })
    }

    /// Wake-storm savings counter: notifications delivered as deferred
    /// slot hand-offs instead of immediate (futile) wakes.
    pub fn deferred_wakes(&self) -> u64 {
        self.deferred.load(Ordering::Relaxed)
    }

    /// Acquire a run slot, parking FIFO behind earlier waiters when the
    /// pool is saturated. `cell` must be the calling thread's own cell.
    pub fn acquire_slot(&self, cell: &Arc<WakeCell>) {
        {
            let mut st = self.st.lock();
            if st.free > 0 {
                st.free -= 1;
                return;
            }
            st.queue.push_back(cell.clone());
        }
        // Woken only by `release_slot`'s hand-off, already owning a slot.
        cell.block_until_signalled();
        cell.take_granted();
    }

    /// Route a park-site notification through admission. With a free
    /// slot the waiter is woken already owning it; with the pool
    /// saturated the wake itself is deferred — the cell joins the FIFO
    /// and `release_slot`'s hand-off wakes it when a slot frees. Either
    /// way the carrier is scheduled at most once, admitted to run.
    pub fn grant_to(&self, cell: &Arc<WakeCell>) {
        let grant_now = {
            let mut st = self.st.lock();
            if st.free > 0 {
                st.free -= 1;
                true
            } else {
                st.queue.push_back(cell.clone());
                self.deferred.fetch_add(1, Ordering::Relaxed);
                false
            }
        };
        if grant_now {
            cell.wake_with_slot();
        }
    }

    /// Remove `cell` from the hand-off FIFO, for a timed waiter backing
    /// out of a deferred wake. `true` when the cell was still queued
    /// (its wake had not been delivered); `false` when the hand-off
    /// already popped it, in which case a slot-carrying wake is in
    /// flight and the caller must absorb it.
    pub fn deregister(&self, cell: &Arc<WakeCell>) -> bool {
        let mut st = self.st.lock();
        match st.queue.iter().position(|w| Arc::ptr_eq(w, cell)) {
            Some(i) => {
                st.queue.remove(i);
                true
            }
            None => false,
        }
    }

    /// Release a slot: hand it to the longest-waiting task, or bank it.
    pub fn release_slot(&self) {
        let handoff = {
            let mut st = self.st.lock();
            match st.queue.pop_front() {
                Some(w) => Some(w),
                None => {
                    st.free += 1;
                    None
                }
            }
        };
        if let Some(w) = handoff {
            w.wake_with_slot();
        }
    }

    /// A supervisor abandoned a wedged (runnable, never-parking) task.
    /// Its carrier keeps spinning on its OS thread — the kernel preempts
    /// it — but the slot it occupies must be replaced or the pool shrinks
    /// by one for the rest of the run.
    pub fn forfeit_wedged(&self) {
        self.release_slot();
    }
}

// ---- parking mode + sites -------------------------------------------------

/// Which parking substrate a run's blocking primitives use. Carried by
/// the transport and its cancellation scope; `Copy` so environments can
/// embed it freely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum Parking {
    /// OS-thread parking via condvars (the native executor).
    #[default]
    Thread,
    /// Waker-queue parking with admission slots (the tasked executor).
    Tasked,
}

impl Parking {
    /// Build one park site of this mode.
    pub fn site(&self) -> ParkSite {
        match self {
            Parking::Thread => ParkSite::Thread(Condvar::new()),
            Parking::Tasked => ParkSite::Tasked(Mutex::new(VecDeque::new())),
        }
    }

    /// Substrate-aware sleep, used by `ExecEnv::delay` on native-style
    /// environments: a plain OS sleep under thread parking; under tasked
    /// parking the admission slot is released for the duration so a
    /// sleeping task (restart backoff, supervisor heartbeat, courier
    /// retransmit pacing) costs no pool capacity.
    // Sanctioned blocking: this *is* the thread-parking implementation
    // the disallowed-methods ban points everyone else at.
    #[allow(clippy::disallowed_methods)]
    pub fn sleep(&self, d: Duration) {
        match self {
            Parking::Thread => std::thread::sleep(d),
            Parking::Tasked => {
                let (_cell, sched) = parker();
                if let Some(s) = &sched {
                    s.release_slot();
                }
                let deadline = Instant::now() + d;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    // Stray unpark tokens just shorten one lap.
                    std::thread::park_timeout(deadline - now);
                }
                if let Some(s) = &sched {
                    s.acquire_slot(&current_cell());
                }
            }
        }
    }
}

/// A parked waiter: its wake cell plus the admission scheduler (when it
/// has one) that a notification should grant a slot through.
type TaskedWaiters = Mutex<VecDeque<(Arc<WakeCell>, Option<Arc<Scheduler>>)>>;

/// One blocking edge of a primitive (a condvar's worth of waiters).
/// Waits must be called with the primitive's `MutexGuard`, exactly like a
/// condvar; notifications may be issued with or without the lock held.
pub(crate) enum ParkSite {
    /// Condvar parking (bit-for-bit the pre-seam native behaviour).
    Thread(Condvar),
    /// FIFO waker queue. Registration happens under the caller's
    /// primitive lock; pop-and-signal happens under the queue lock, which
    /// is what makes the timed-wait deregistration race resolvable. Each
    /// entry carries the waiter's admission scheduler (when it has one)
    /// so notifications can be routed through [`Scheduler::grant_to`].
    Tasked(TaskedWaiters),
}

impl ParkSite {
    /// Atomically release `guard`'s lock and wait for a notification,
    /// reacquiring the lock before returning. May wake spuriously.
    // Sanctioned blocking: the Thread arm is the condvar implementation
    // itself; the Tasked arm parks the carrier after releasing its slot.
    #[allow(clippy::disallowed_methods)]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match self {
            ParkSite::Thread(cv) => cv.wait(guard),
            ParkSite::Tasked(q) => {
                let (cell, sched) = parker();
                q.lock().push_back((cell.clone(), sched.clone()));
                MutexGuard::unlocked(guard, || {
                    if let Some(s) = &sched {
                        s.release_slot();
                    }
                    cell.block_until_signalled();
                    // A notifier routed through `grant_to` delivers the
                    // wake with a slot attached; only acquire one when
                    // it did not. Reacquire admission BEFORE relocking
                    // the primitive (see module docs: the reverse order
                    // deadlocks).
                    if let Some(s) = &sched {
                        if !cell.take_granted() {
                            s.acquire_slot(&cell);
                        }
                    }
                });
            }
        }
    }

    /// As [`ParkSite::wait`] but give up after `timeout`. Returns `true`
    /// when the wait timed out (the lock is reacquired either way).
    // Sanctioned blocking: see `wait`.
    #[allow(clippy::disallowed_methods)]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        match self {
            ParkSite::Thread(cv) => cv.wait_for(guard, timeout).timed_out(),
            ParkSite::Tasked(q) => {
                let (cell, sched) = parker();
                q.lock().push_back((cell.clone(), sched.clone()));
                MutexGuard::unlocked(guard, || {
                    if let Some(s) = &sched {
                        s.release_slot();
                    }
                    let deadline = Instant::now() + timeout;
                    let timed_out = if cell.block_until_signalled_by(deadline) {
                        false
                    } else {
                        // Deregister. Three places the cell can be:
                        // still in the site queue (a genuine timeout);
                        // in the scheduler FIFO (a notifier popped us
                        // but deferred the wake — back out and report a
                        // wake so the absorbed notification is not
                        // lost); in neither (a wake is in flight, its
                        // signal published before the pop became
                        // visible — absorb it).
                        let removed = {
                            let mut q = q.lock();
                            match q.iter().position(|(w, _)| Arc::ptr_eq(w, &cell)) {
                                Some(i) => {
                                    q.remove(i);
                                    true
                                }
                                None => false,
                            }
                        };
                        if removed {
                            true
                        } else if sched.as_ref().is_some_and(|s| s.deregister(&cell)) {
                            false
                        } else {
                            cell.block_until_signalled();
                            false
                        }
                    };
                    if let Some(s) = &sched {
                        if !cell.take_granted() {
                            s.acquire_slot(&cell);
                        }
                    }
                    timed_out
                })
            }
        }
    }

    /// Wake one waiter (the longest-parked, on the tasked arm).
    pub fn notify_one(&self) {
        match self {
            ParkSite::Thread(cv) => cv.notify_one(),
            ParkSite::Tasked(q) => {
                let mut q = q.lock();
                if let Some((w, sched)) = q.pop_front() {
                    // Signal (or enqueue the deferred grant) under the
                    // queue lock: a timed waiter that finds itself
                    // deregistered can then rely on the wake already
                    // being in the scheduler FIFO or in flight.
                    Self::route_wake(&w, &sched);
                }
            }
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match self {
            ParkSite::Thread(cv) => cv.notify_all(),
            ParkSite::Tasked(q) => {
                let mut q = q.lock();
                while let Some((w, sched)) = q.pop_front() {
                    Self::route_wake(&w, &sched);
                }
            }
        }
    }

    /// Deliver one tasked-arm notification: admission-scheduled waiters
    /// go through [`Scheduler::grant_to`] (woken owning a slot, or
    /// deferred until one frees); control threads get a plain wake.
    fn route_wake(w: &Arc<WakeCell>, sched: &Option<Arc<Scheduler>>) {
        match sched {
            Some(s) => s.grant_to(w),
            None => w.wake(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn pair(parking: Parking) -> Arc<(Mutex<bool>, ParkSite)> {
        Arc::new((Mutex::new(false), parking.site()))
    }

    fn wait_then_read(parking: Parking) -> bool {
        let p = pair(parking);
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            let (m, site) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                site.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, site) = &*p;
            *m.lock() = true;
            site.notify_all();
        }
        t.join().expect("waiter")
    }

    #[test]
    fn thread_arm_wakes_waiter() {
        assert!(wait_then_read(Parking::Thread));
    }

    #[test]
    fn tasked_arm_wakes_waiter_without_admission() {
        // No scheduler in TLS: plain waker parking (control threads).
        assert!(wait_then_read(Parking::Tasked));
    }

    #[test]
    fn tasked_wait_for_times_out_and_deregisters() {
        let (m, site) = (Mutex::new(()), Parking::Tasked.site());
        let mut g = m.lock();
        let t0 = Instant::now();
        assert!(site.wait_for(&mut g, Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // The queue is empty again: a later notify wakes nobody stale.
        if let ParkSite::Tasked(q) = &site {
            assert!(q.lock().is_empty(), "timed-out waiter deregistered");
        }
    }

    #[test]
    fn tasked_wait_for_wake_beats_timeout() {
        let p = pair(Parking::Tasked);
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            let (m, site) = &*p2;
            let mut ready = m.lock();
            let mut timed_out = false;
            while !*ready {
                timed_out = site.wait_for(&mut ready, Duration::from_secs(5));
                if timed_out {
                    break;
                }
            }
            timed_out
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, site) = &*p;
            *m.lock() = true;
            site.notify_one();
        }
        assert!(!t.join().expect("waiter"), "woken, not timed out");
    }

    #[test]
    fn scheduler_admits_at_most_workers_and_hands_off_fifo() {
        use std::sync::atomic::AtomicUsize;
        let sched = Scheduler::new(2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let sched = sched.clone();
            let running = running.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                sched.acquire_slot(&current_cell());
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
                sched.release_slot();
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission cap respected");
    }

    #[test]
    fn admission_released_around_tasked_wait() {
        // One slot, two tasks: A parks on a site (releasing its slot), B
        // runs and wakes A. Without slot release this deadlocks.
        let sched = Scheduler::new(1);
        let p = pair(Parking::Tasked);
        let (pa, pb) = (p.clone(), p.clone());
        let (sa, sb) = (sched.clone(), sched.clone());
        let a = std::thread::spawn(move || {
            enter_admission(sa.clone());
            sa.acquire_slot(&current_cell());
            let (m, site) = &*pa;
            let mut ready = m.lock();
            while !*ready {
                site.wait(&mut ready);
            }
            drop(ready);
            sa.release_slot();
        });
        std::thread::sleep(Duration::from_millis(10));
        let b = std::thread::spawn(move || {
            enter_admission(sb.clone());
            sb.acquire_slot(&current_cell());
            let (m, site) = &*pb;
            *m.lock() = true;
            site.notify_all();
            sb.release_slot();
        });
        a.join().expect("task A");
        b.join().expect("task B");
    }

    #[test]
    fn tasked_notify_defers_wake_until_slot_frees() {
        use std::sync::atomic::AtomicBool;
        // One slot. A parks on a site (releasing its slot); the main
        // thread then occupies the slot and notifies. A's wake must be
        // deferred — routed through the scheduler FIFO — until the slot
        // is released, and A must come back already admitted.
        let sched = Scheduler::new(1);
        let p = pair(Parking::Tasked);
        let woke = Arc::new(AtomicBool::new(false));
        let (p2, s2, w2) = (p.clone(), sched.clone(), woke.clone());
        let a = std::thread::spawn(move || {
            enter_admission(s2.clone());
            s2.acquire_slot(&current_cell());
            let (m, site) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                site.wait(&mut ready);
            }
            w2.store(true, Ordering::SeqCst);
            drop(ready);
            s2.release_slot();
        });
        std::thread::sleep(Duration::from_millis(20));
        // Take the slot A released around its park.
        sched.acquire_slot(&current_cell());
        {
            let (m, site) = &*p;
            *m.lock() = true;
            site.notify_one();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            !woke.load(Ordering::SeqCst),
            "wake deferred while the pool is saturated"
        );
        sched.release_slot();
        a.join().expect("task A");
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn tasked_timed_waiter_backs_out_of_deferred_wake() {
        // One slot. A parks with a short timeout; the main thread holds
        // the slot and notifies, deferring A's wake into the scheduler
        // FIFO. A times out, deregisters from the FIFO, and must report
        // a wake (the notification was absorbed), then reacquire
        // admission normally once the slot frees.
        let sched = Scheduler::new(1);
        let p = pair(Parking::Tasked);
        let (p2, s2) = (p.clone(), sched.clone());
        let a = std::thread::spawn(move || {
            enter_admission(s2.clone());
            s2.acquire_slot(&current_cell());
            let (m, site) = &*p2;
            let mut g = m.lock();
            let timed_out = site.wait_for(&mut g, Duration::from_millis(40));
            drop(g);
            s2.release_slot();
            timed_out
        });
        std::thread::sleep(Duration::from_millis(15));
        sched.acquire_slot(&current_cell());
        {
            let (_, site) = &*p;
            site.notify_one();
        }
        // Hold the slot past A's deadline so the deferred wake is still
        // queued when A times out.
        std::thread::sleep(Duration::from_millis(60));
        sched.release_slot();
        assert!(
            !a.join().expect("task A"),
            "absorbed notification reported as a wake"
        );
    }

    #[test]
    fn tasked_sleep_releases_the_slot() {
        // One slot: a sleeping task must not starve the other.
        let sched = Scheduler::new(1);
        let s2 = sched.clone();
        let a = std::thread::spawn(move || {
            enter_admission(s2.clone());
            s2.acquire_slot(&current_cell());
            Parking::Tasked.sleep(Duration::from_millis(50));
            s2.release_slot();
        });
        std::thread::sleep(Duration::from_millis(10));
        let t0 = Instant::now();
        let s3 = sched.clone();
        let b = std::thread::spawn(move || {
            enter_admission(s3.clone());
            s3.acquire_slot(&current_cell());
            s3.release_slot();
        });
        b.join().expect("task B");
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "B admitted while A sleeps"
        );
        a.join().expect("task A");
    }
}
