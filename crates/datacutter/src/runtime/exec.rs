//! The executor substrate: a small `Clock` + `Transport` + `Executor`
//! trait family that separates *what* the runtime spawns and wires (filter
//! copies, outbox senders, ack couriers, reapers — see [`super::spawn`])
//! from *where* it runs. The hetsim virtual-time engine is one
//! implementation ([`SimExecutor`], bit-for-bit identical to the original
//! monolithic runtime); [`super::native::NativeExecutor`] runs the same
//! graph on real OS threads under wall-clock time.
//!
//! Channel endpoints and barriers are concrete enums ([`ChanTx`],
//! [`ChanRx`], [`ExecBarrier`]) rather than associated types so that
//! [`crate::context::FilterCtx`] stays a single concrete type and the
//! [`crate::filter::Filter`] trait is untouched by the substrate choice.

use std::sync::Arc;

use hetsim::{DeadlineRecv, Env, SendError, SimDuration, SimError, SimTime, Simulation, Topology};

use super::native::{CancelScope, NativeBarrier, NativeEnv, NativeRx, NativeTx};

/// A monotonic time source. Virtual time under [`SimExecutor`]; nanoseconds
/// of wall-clock time since run start under the native executor.
pub trait Clock {
    /// Current time on this executor's axis.
    fn now(&self) -> SimTime;
    /// Sleep for `d` on this executor's axis.
    fn sleep(&self, d: SimDuration);
}

impl Clock for Env {
    fn now(&self) -> SimTime {
        Env::now(self)
    }
    fn sleep(&self, d: SimDuration) {
        self.delay(d);
    }
}

/// The per-process execution environment handed to every runtime process
/// (filter copies, senders, couriers, reapers). A concrete enum over the
/// two substrates so the filter-facing context stays non-generic.
#[derive(Clone)]
pub enum ExecEnv {
    /// A hetsim virtual-time process environment.
    Sim(Env),
    /// A wall-clock native-thread environment.
    Native(NativeEnv),
}

impl ExecEnv {
    /// Current time (virtual or wall-clock, depending on the substrate).
    pub fn now(&self) -> SimTime {
        match self {
            ExecEnv::Sim(e) => e.now(),
            ExecEnv::Native(e) => e.now(),
        }
    }

    /// Sleep for `d` (virtual delay or a real `thread::sleep`).
    pub fn delay(&self, d: SimDuration) {
        match self {
            ExecEnv::Sim(e) => e.delay(d),
            ExecEnv::Native(e) => e.sleep(d),
        }
    }

    /// Label of the worker substrate this environment runs on — `"proc"`
    /// (sim process), `"thread"` (native OS thread) or `"task"`
    /// (waker-parked task) — used for human-facing incarnation ids in
    /// restart timelines.
    pub fn worker_label(&self) -> &'static str {
        match self {
            ExecEnv::Sim(_) => "proc",
            ExecEnv::Native(e) => e.worker_label(),
        }
    }

    /// The underlying simulation environment, when running on the
    /// virtual-time substrate.
    pub fn sim(&self) -> Option<&Env> {
        match self {
            ExecEnv::Sim(e) => Some(e),
            ExecEnv::Native(_) => None,
        }
    }

    /// True under a virtual-time executor (deterministic, cost-charging).
    pub fn is_virtual(&self) -> bool {
        matches!(self, ExecEnv::Sim(_))
    }

    /// The simulation environment of a process that is known to run on the
    /// virtual-time substrate (sim channel endpoints are only ever driven
    /// by sim processes — the wiring layer guarantees it).
    pub(crate) fn expect_sim(&self) -> &Env {
        match self.sim() {
            Some(e) => e,
            None => unreachable!("this runtime path requires the virtual-time SimExecutor"),
        }
    }
}

impl Clock for ExecEnv {
    fn now(&self) -> SimTime {
        ExecEnv::now(self)
    }
    fn sleep(&self, d: SimDuration) {
        self.delay(d);
    }
}

impl From<Env> for ExecEnv {
    fn from(e: Env) -> Self {
        ExecEnv::Sim(e)
    }
}

impl From<NativeEnv> for ExecEnv {
    fn from(e: NativeEnv) -> Self {
        ExecEnv::Native(e)
    }
}

/// Charge a network transfer to the topology when running under virtual
/// time; a no-op on the native substrate (real threads pay real costs).
pub(crate) fn charge_transfer(
    env: &ExecEnv,
    topo: &Topology,
    from: hetsim::HostId,
    to: hetsim::HostId,
    bytes: u64,
) {
    if let ExecEnv::Sim(e) = env {
        topo.transfer(e, from, to, bytes);
    }
}

/// Sending half of a bounded MPMC channel (substrate-dispatched).
pub enum ChanTx<T: Send> {
    /// Endpoint of a hetsim cooperative channel.
    Sim(hetsim::Sender<T>),
    /// Endpoint of a native mutex/condvar channel.
    Native(NativeTx<T>),
}

/// Receiving half of a bounded MPMC channel (substrate-dispatched).
pub enum ChanRx<T: Send> {
    /// Endpoint of a hetsim cooperative channel.
    Sim(hetsim::Receiver<T>),
    /// Endpoint of a native mutex/condvar channel.
    Native(NativeRx<T>),
}

/// Outcome of a bounded-deadline send ([`ChanTx::send_deadline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineSend {
    /// The value was enqueued.
    Sent,
    /// Every receiver hung up; the value was discarded.
    Closed,
    /// The channel stayed full until the deadline; the value was
    /// discarded.
    TimedOut,
}

impl<T: Send> ChanTx<T> {
    /// Send `value`, blocking while the channel is full. `Err` returns the
    /// value when every receiver is gone.
    pub fn send(&self, env: &ExecEnv, value: T) -> Result<(), SendError<T>> {
        match self {
            ChanTx::Sim(tx) => tx.send(env.expect_sim(), value),
            ChanTx::Native(tx) => tx.send(value),
        }
    }

    /// Send with a deadline on the executor's time axis: block while the
    /// channel is full, but give up at `deadline`. On the deterministic
    /// simulator the deadline is not enforced — a sim channel drains in
    /// bounded virtual time or the engine reports a deadlock, so the timed
    /// variant degrades to the plain blocking send and scheduling stays
    /// bit-identical to the pre-deadline runtime.
    pub fn send_deadline(&self, env: &ExecEnv, value: T, deadline: SimTime) -> DeadlineSend {
        match (self, env) {
            (ChanTx::Sim(tx), _) => match tx.send(env.expect_sim(), value) {
                Ok(()) => DeadlineSend::Sent,
                Err(_) => DeadlineSend::Closed,
            },
            (ChanTx::Native(tx), ExecEnv::Native(ne)) => tx.send_deadline(ne, value, deadline),
            (ChanTx::Native(_), ExecEnv::Sim(_)) => {
                unreachable!("native channel endpoint driven from a sim process")
            }
        }
    }
}

impl<T: Send> Clone for ChanTx<T> {
    fn clone(&self) -> Self {
        match self {
            ChanTx::Sim(tx) => ChanTx::Sim(tx.clone()),
            ChanTx::Native(tx) => ChanTx::Native(tx.clone()),
        }
    }
}

impl<T: Send> ChanRx<T> {
    /// Receive the next value; `None` once the channel is empty and every
    /// sender is gone.
    pub fn recv(&self, env: &ExecEnv) -> Option<T> {
        match self {
            ChanRx::Sim(rx) => rx.recv(env.expect_sim()),
            ChanRx::Native(rx) => rx.recv(),
        }
    }

    /// Receive with a deadline on the executor's time axis.
    pub fn recv_deadline(&self, env: &ExecEnv, deadline: SimTime) -> DeadlineRecv<T> {
        match (self, env) {
            (ChanRx::Sim(rx), _) => rx.recv_deadline(env.expect_sim(), deadline),
            (ChanRx::Native(rx), ExecEnv::Native(ne)) => rx.recv_deadline(ne, deadline),
            (ChanRx::Native(_), ExecEnv::Sim(_)) => {
                unreachable!("native channel endpoint driven from a sim process")
            }
        }
    }

    /// True when every sender has hung up (queued values may remain).
    pub fn is_closed(&self) -> bool {
        match self {
            ChanRx::Sim(rx) => rx.is_closed(),
            ChanRx::Native(rx) => rx.is_closed(),
        }
    }

    /// Number of queued values.
    pub fn is_empty(&self) -> bool {
        match self {
            ChanRx::Sim(rx) => rx.is_empty(),
            ChanRx::Native(rx) => rx.is_empty(),
        }
    }

    /// Closed *and* empty in one probe — nothing queued and nothing can
    /// arrive. Polling loops should prefer this over separate
    /// `is_closed() && is_empty()` calls, which take the channel lock
    /// twice per tick.
    pub fn is_drained(&self) -> bool {
        match self {
            ChanRx::Sim(rx) => rx.is_drained(),
            ChanRx::Native(rx) => rx.is_drained(),
        }
    }
}

impl<T: Send> Clone for ChanRx<T> {
    fn clone(&self) -> Self {
        match self {
            ChanRx::Sim(rx) => ChanRx::Sim(rx.clone()),
            ChanRx::Native(rx) => ChanRx::Native(rx.clone()),
        }
    }
}

/// A cyclic barrier over the active substrate, with the hetsim barrier's
/// `leave` extension (a crashed copy withdraws so survivors are not
/// stranded).
#[derive(Clone)]
pub enum ExecBarrier {
    /// Barrier over cooperative sim processes.
    Sim(hetsim::Barrier),
    /// Barrier over native OS threads.
    Native(NativeBarrier),
}

impl ExecBarrier {
    /// Wait for all participants; the last arriver gets `true`.
    pub fn wait(&self, env: &ExecEnv) -> bool {
        match self {
            ExecBarrier::Sim(b) => b.wait(env.expect_sim()),
            ExecBarrier::Native(b) => b.wait(),
        }
    }

    /// Withdraw from the barrier permanently, releasing the current round
    /// if this participant was the last one missing.
    pub fn leave(&self, env: &ExecEnv) {
        match self {
            ExecBarrier::Sim(b) => b.leave(env.expect_sim()),
            ExecBarrier::Native(b) => b.leave(),
        }
    }
}

/// Factory for the communication primitives of one run: channels wiring
/// streams, outboxes and couriers, and the inter-UOW barrier.
pub trait Transport: Clone + Send + 'static {
    /// A bounded MPMC channel with `capacity` slots (at least 1).
    fn channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>);

    /// A bounded channel the caller promises has exactly one producer and
    /// one consumer (endpoints are never cloned). Transports may return a
    /// cheaper lock-free implementation; the default is the plain MPMC
    /// channel, so substrates that don't specialize (the deterministic
    /// simulator) are unaffected.
    fn spsc_channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
        self.channel(capacity)
    }

    /// A cyclic barrier over `participants` processes.
    fn barrier(&self, participants: usize) -> ExecBarrier;

    /// The transport's cooperative-cancellation scope, when it has one.
    /// Wall-clock transports use it to tear a failed run down without
    /// deadlocking; the virtual-time engine cancels processes itself.
    fn cancel_scope(&self) -> Option<Arc<CancelScope>> {
        None
    }

    /// Declare the process spawned under `name` abandoned: it is presumed
    /// wedged and will never finish, and the executor should not wait for
    /// it at the end of the run. The default is a no-op — cooperative
    /// substrates have no preemption problem; the native executor detaches
    /// the thread.
    fn abandon(&self, _name: &str) {}
}

/// Summary statistics of one executor run (mirrors [`hetsim::RunStats`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecStats {
    /// Time on the executor's axis when the last process finished.
    pub end_time: SimTime,
    /// Events processed (0 on substrates without an event loop).
    pub events: u64,
    /// Number of processes run.
    pub processes: u32,
    /// Notifications the admission scheduler delivered as deferred slot
    /// hand-offs instead of immediate wakes (tasked substrate only; each
    /// one is a saved futile carrier wakeup — see `runtime/park.rs`).
    pub deferred_wakes: u64,
}

/// A boxed process body handed to [`Executor::spawn`].
pub type SpawnBody = Box<dyn FnOnce(ExecEnv) + Send + 'static>;

/// Which class of process a spawn registers — the worker-substrate seam.
///
/// Pipeline workers (filter copies, outbox senders, ack couriers,
/// reapers) go through whatever scheduling model the substrate uses for
/// bulk work; control processes (the heartbeat supervisor) must stay
/// responsive even when every worker is runnable, so substrates with
/// admission gating (the tasked executor) run them outside the pool.
/// Substrates without that distinction treat both identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnRole {
    /// Bulk pipeline work, scheduled by the substrate's worker model.
    Worker,
    /// Supervision/control work that must not queue behind workers.
    Control,
}

/// An execution substrate: spawns the runtime's processes and runs them to
/// completion. Implementations: [`SimExecutor`] (hetsim virtual time,
/// deterministic), [`super::native::NativeExecutor`] (OS threads,
/// wall-clock), and [`super::tasked::TaskedExecutor`] (cooperative
/// waker-parked tasks over a worker pool, wall-clock).
pub trait Executor {
    /// The transport whose channels/barriers this executor's processes use.
    type Transport: Transport;

    /// The transport instance for wiring this run.
    fn transport(&self) -> Self::Transport;

    /// Register a process. Processes start when [`Executor::run`] is
    /// called; registration order is significant on deterministic
    /// substrates (it fixes process identity and event order).
    fn spawn(&mut self, name: String, body: SpawnBody);

    /// As [`Executor::spawn`], declaring the process's [`SpawnRole`].
    /// Substrates that schedule workers and control differently override
    /// this; the default ignores the role.
    fn spawn_role(&mut self, _role: SpawnRole, name: String, body: SpawnBody) {
        self.spawn(name, body);
    }

    /// Run every spawned process to completion.
    fn run(&mut self) -> Result<ExecStats, SimError>;
}

/// The virtual-time executor: wraps a [`hetsim::Simulation`], preserving
/// the deterministic cooperative scheduling (and therefore bit-for-bit the
/// behaviour of the pre-refactor runtime).
pub struct SimExecutor {
    sim: Simulation,
}

impl SimExecutor {
    /// A fresh simulation-backed executor.
    pub fn new() -> Self {
        SimExecutor {
            sim: Simulation::new(),
        }
    }

    /// The underlying simulation, e.g. to spawn auxiliary processes (load
    /// generators) before the run — the builder's `setup` hook uses this.
    pub fn simulation_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl Default for SimExecutor {
    fn default() -> Self {
        Self::new()
    }
}

/// Transport backed by the simulation's cooperative channels and barriers.
#[derive(Clone)]
pub struct SimTransport {
    waker: hetsim::Waker,
}

impl Transport for SimTransport {
    fn channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
        let (tx, rx) = hetsim::channel(self.waker.clone(), capacity);
        (ChanTx::Sim(tx), ChanRx::Sim(rx))
    }

    fn barrier(&self, participants: usize) -> ExecBarrier {
        ExecBarrier::Sim(hetsim::Barrier::new(participants))
    }
}

impl Executor for SimExecutor {
    type Transport = SimTransport;

    fn transport(&self) -> SimTransport {
        SimTransport {
            waker: self.sim.waker(),
        }
    }

    fn spawn(&mut self, name: String, body: SpawnBody) {
        self.sim
            .spawn(name, move |env: Env| body(ExecEnv::Sim(env)));
    }

    fn run(&mut self) -> Result<ExecStats, SimError> {
        self.sim.run().map(|s| ExecStats {
            end_time: s.end_time,
            events: s.events,
            processes: s.processes,
            deferred_wakes: 0,
        })
    }
}
