//! Copy instantiation and wiring: builds the per-stream channels, gates
//! and couriers, spawns one reaper per doomed copy set, then spawns every
//! transparent filter copy with its input/output ports and outbox sender.
//!
//! **Spawn order is load-bearing.** On the deterministic substrate,
//! registration order fixes process identity and therefore event order;
//! this module preserves the exact sequence of the pre-refactor monolith —
//! per stream: couriers (one per copy set, interleaved with channel
//! creation); then reapers; then per filter copy: one sender per output
//! port followed by the copy itself — so simulation runs stay bit-for-bit
//! identical. Supervision (opt-in) appends processes strictly *after*
//! that sequence (extra reapers per stream, the supervisor last), so
//! plan-only runs are untouched.
//!
//! ## Panic containment and supervised restarts
//!
//! Every filter callback runs under `catch_unwind` inside a containment
//! scope. The two runtime sentinels pass through untouched (the
//! [`KilledMarker`] of a scheduled host crash, handled by the copy's
//! outer wrapper; the abort sentinel of a recorded [`RunError`]). A
//! *real* panic out of user filter code is converted:
//!
//! * unsupervised — the run aborts with [`RunError::FilterPanic`]; the
//!   process never crashes;
//! * supervised with restart budget left — the copy waits out a seeded,
//!   jittered exponential backoff, re-instantiates its filter from the
//!   graph's factory **on the same thread** (its channel endpoints cannot
//!   be re-created) and resumes the current unit of work from the
//!   remaining queue contents;
//! * supervised, budget exhausted — the copy is declared dead in the
//!   merged death oracle and takes the regular crash path (degraded
//!   completion with loss accounting), or aborts the run when degraded
//!   completion is disallowed.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

use hetsim::{HostId, SimTime, Topology};
use parking_lot::Mutex;

use super::delivery::{self, CourierMsg, Envelope, SenderCfg};
use super::eow::{ProducerRef, UowGate};
use super::exec::{ChanRx, ChanTx, ExecEnv, Executor, SpawnRole, Transport};
use super::reaper::Reaper;
use super::retain::{Dedup, StreamRetention};
use super::supervisor::{copy_retired, CopyRecord, Supervisor};
use super::Tuning;
use crate::budget::{MemoryBudget, StreamOoc};
use crate::context::{FilterCtx, InputPort, OutputPort};
use crate::fault::{
    abort_run, contain_scope, panic_message, raise_killed, CopyHealth, CopyState, ErrorCell,
    FaultCtl, KilledMarker, RestartEvent, RunError, ABORT_MSG,
};
use crate::filter::CopyInfo;
use crate::graph::{AppGraph, FilterId};
use crate::metrics::{CopyCell, CopyCounters, CopySetCell};
use crate::policy::{CopySetInfo, WriterState};
use crate::storage::StorageCtl;

/// Everything the driver needs to harvest a report after the run: the
/// metric cells (shared with the spawned processes) and the barrier
/// boundary log. Holds no channel endpoints, so queues close as soon as
/// the last real user (sender process / filter copy) finishes.
pub(crate) struct RunWiring {
    pub copy_cells: Vec<(FilterId, String, usize, HostId, CopyCell)>,
    pub uow_boundaries: Arc<Mutex<Vec<SimTime>>>,
    /// Per stream: `(host, counters)` of each consumer copy set.
    pub stream_sets: Vec<Vec<(HostId, CopySetCell)>>,
}

/// Retire a finished-or-dead copy from the supervised liveness
/// accounting. The health-state transition is the arbiter against the
/// supervisor's wedge scan: whoever moves the state out of `Running`
/// owns the live-copy decrement, so a wedge declaration racing a
/// late-finishing thread can never double-account. No-op on
/// unsupervised runs (no health record).
fn retire(
    health: &Option<Arc<CopyHealth>>,
    live: &Option<Arc<AtomicUsize>>,
    shutdown: &Option<Arc<AtomicBool>>,
    state: CopyState,
) {
    let Some(h) = health else { return };
    if !h.try_transition(CopyState::Running, state) {
        return;
    }
    if let (Some(l), Some(s)) = (live, shutdown) {
        copy_retired(l, s);
    }
}

/// Wire `graph` onto `exec` and register every runtime process. Nothing
/// runs until the driver calls [`Executor::run`].
#[allow(clippy::too_many_arguments)] // one-call crate-internal wiring entry point
pub(crate) fn build<E: Executor>(
    exec: &mut E,
    topo: &Topology,
    graph: &Arc<AppGraph>,
    uows: u32,
    trace: Option<hetsim::Trace>,
    fault_ctl: Option<Arc<FaultCtl>>,
    error_cell: ErrorCell,
    tuning: &Tuning,
    ooc: Option<(Arc<MemoryBudget>, Arc<StorageCtl>)>,
) -> RunWiring {
    let transport = exec.transport();
    let cancel = transport.cancel_scope();
    let all_copies: u32 = graph
        .filters
        .iter()
        .map(|f| f.placement.total_copies())
        .sum();

    // Supervised-run shared state: the shutdown flag releases the
    // always-on reapers and the supervisor once the live-copy count hits
    // zero (every copy finished or died).
    let supervised = fault_ctl.as_ref().is_some_and(|c| c.supervisor.is_some());
    let shutdown: Option<Arc<AtomicBool>> = supervised.then(|| Arc::new(AtomicBool::new(false)));
    let live: Option<Arc<AtomicUsize>> =
        supervised.then(|| Arc::new(AtomicUsize::new(all_copies as usize)));
    let mut records: Vec<CopyRecord> = Vec::new();

    // ---- per-stream wiring ------------------------------------------------
    struct StreamRt {
        sets: Vec<CopySetInfo>,
        data_txs: Vec<ChanTx<Envelope>>,
        data_rxs: Vec<ChanRx<Envelope>>,
        courier_txs: Vec<ChanTx<CourierMsg>>,
        gates: Vec<Arc<Mutex<UowGate>>>,
        cells: Vec<CopySetCell>,
        /// Lossless recovery only: the stream's retention and one dedup
        /// table per consumer copy set.
        retention: Option<Arc<StreamRetention>>,
        dedups: Vec<Option<Arc<Dedup>>>,
        /// Out-of-core state (budget share + spill ring), when a memory
        /// budget is configured. One per stream, shared by every producer
        /// and consumer port of the stream.
        ooc: Option<Arc<StreamOoc>>,
    }

    // One payload-box recycler for the whole run: boxes released when a
    // consumer unwraps a buffer feed the next producer's `make`, and
    // lossless retention draws its replicas from the same pool.
    let slab = crate::buffer::BufferSlab::new();
    let lossless = fault_ctl.as_ref().is_some_and(|c| c.lossless());

    // Memory budget: split evenly across the graph's streams. A stream
    // whose in-flight spillable payloads exceed its share spills to the
    // run-wide ring.
    let stream_share = tuning.memory_budget_bytes / (graph.streams.len().max(1) as u64);

    let mut streams_rt: Vec<StreamRt> = Vec::with_capacity(graph.streams.len());
    for spec in &graph.streams {
        let consumer = &graph.filters[spec.to.0 as usize];
        // Producer copy references in copy-index order: the end-of-work
        // gate tracks markers per producer copy so dead producers can be
        // excused (by host crash or dynamic death) without under- or
        // over-counting.
        let producers: Vec<ProducerRef> = {
            let mut v = Vec::new();
            for &(h, n) in &graph.filters[spec.from.0 as usize].placement.per_host {
                for _ in 0..n {
                    let copy = v.len();
                    v.push(ProducerRef {
                        host: h,
                        filter: spec.from,
                        copy,
                    });
                }
            }
            v
        };
        let producer_hosts: Vec<HostId> = producers.iter().map(|p| p.host).collect();
        let retention = match fault_ctl.as_ref() {
            Some(ctl) if lossless => Some(Arc::new(StreamRetention::new(
                producers.len(),
                slab.clone(),
                ctl.clone(),
            ))),
            _ => None,
        };
        let mut sets = Vec::new();
        let mut data_txs = Vec::new();
        let mut data_rxs = Vec::new();
        let mut courier_txs = Vec::new();
        let mut gates = Vec::new();
        let mut cells = Vec::new();
        let mut dedups = Vec::new();
        let mut first_copy = 0usize;
        for &(host, copies) in &consumer.placement.per_host {
            sets.push(CopySetInfo {
                host,
                copies,
                filter: spec.to,
                first_copy,
            });
            first_copy += copies as usize;
            // Room for data plus the UowDone tokens injected at the end of
            // each cycle.
            let cap = spec.queue_capacity * copies as usize + copies as usize;
            let (tx, rx) = transport.channel::<Envelope>(cap.max(1));
            data_txs.push(tx);
            data_rxs.push(rx);
            gates.push(Arc::new(Mutex::new(UowGate::new(
                producers.clone(),
                copies,
            ))));
            let (ctx_tx, ctx_rx) = transport.channel::<CourierMsg>(tuning.courier_capacity);
            courier_txs.push(ctx_tx);
            cells.push(CopySetCell::default());
            dedups.push(lossless.then(|| Arc::new(Dedup::new())));
            delivery::spawn_courier(
                exec,
                &spec.name,
                host,
                topo,
                ctx_rx,
                retention.clone(),
                producer_hosts.clone(),
            );
        }
        // Reapers. Under a pure plan: one per copy set whose host is
        // scheduled to crash, holding senders only to sets with no
        // scheduled death (exactly the original, bit-identical wiring).
        // Under supervision: one per set — any set can die at runtime —
        // holding senders to every *other* set, with the death time
        // probed from the merged oracle and the shutdown flag as the
        // exit signal. Either way the reaper's receiver clone keeps the
        // dead queue open so buffers sent before writers notice the
        // death are salvaged, not dropped.
        if let Some(ctl) = fault_ctl.as_ref().filter(|c| c.crashes_possible()) {
            for (set_idx, set) in sets.iter().enumerate() {
                let t_death = ctl.plan.host_death(set.host);
                if t_death.is_none() && !supervised {
                    continue;
                }
                let survivors: Vec<(usize, ChanTx<Envelope>)> = if supervised {
                    sets.iter()
                        .enumerate()
                        .filter(|&(i, _)| i != set_idx)
                        .map(|(i, _)| (i, data_txs[i].clone()))
                        .collect()
                } else {
                    sets.iter()
                        .enumerate()
                        .filter(|(_, s)| ctl.plan.host_death(s.host).is_none())
                        .map(|(i, _)| (i, data_txs[i].clone()))
                        .collect()
                };
                let reaper = Reaper {
                    ctl: ctl.clone(),
                    errors: error_cell.clone(),
                    rx: data_rxs[set_idx].clone(),
                    survivors,
                    sets: sets.clone(),
                    own_idx: set_idx,
                    t_death: if supervised { None } else { t_death },
                    topo: topo.clone(),
                    stream: spec.name.clone(),
                    gate: gates[set_idx].clone(),
                    uows,
                    shutdown: shutdown.clone(),
                    cancel: cancel.clone(),
                    retention: retention.clone(),
                    producer_hosts: producer_hosts.clone(),
                };
                exec.spawn(
                    format!("reaper:{}@h{}", spec.name, set.host.0),
                    Box::new(move |env: ExecEnv| reaper.run(env)),
                );
            }
        }
        streams_rt.push(StreamRt {
            sets,
            data_txs,
            data_rxs,
            courier_txs,
            gates,
            cells,
            retention,
            dedups,
            ooc: ooc.as_ref().map(|(ledger, storage)| {
                StreamOoc::new(ledger.clone(), storage.clone(), stream_share)
            }),
        });
    }

    // ---- per-copy spawning ------------------------------------------------
    let barrier = transport.barrier(all_copies as usize);
    let uow_boundaries: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));

    let mut copy_cells: Vec<(FilterId, String, usize, HostId, CopyCell)> = Vec::new();
    for (fidx, fspec) in graph.filters.iter().enumerate() {
        let fid = FilterId(fidx as u32);
        let input_ids = graph.inputs_of(fid);
        let output_ids = graph.outputs_of(fid);
        let total_copies = fspec.placement.total_copies() as usize;

        let mut copy_index = 0usize;
        for (set_idx, &(host, copies)) in fspec.placement.per_host.iter().enumerate() {
            for _k in 0..copies {
                let cell: CopyCell = Arc::new(Mutex::new(CopyCounters::default()));
                copy_cells.push((fid, fspec.name.clone(), copy_index, host, cell.clone()));

                // Input ports: this copy shares its host's copy-set queue.
                let mut inputs = Vec::new();
                for &sid in &input_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    inputs.push(InputPort {
                        rx: rt.data_rxs[set_idx].clone(),
                        inject_tx: rt.data_txs[set_idx].clone(),
                        courier_tx: rt.courier_txs[set_idx].clone(),
                        gate: rt.gates[set_idx].clone(),
                        peer_gates: rt
                            .sets
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != set_idx)
                            .map(|(i, s)| (*s, rt.gates[i].clone()))
                            .collect(),
                        copyset_counters: rt.cells[set_idx].clone(),
                        dedup: rt.dedups[set_idx].clone(),
                        retention: rt.retention.clone(),
                        journal: Vec::new(),
                        replay: VecDeque::new(),
                        replay_done: false,
                        ooc: rt.ooc.clone(),
                    });
                }

                // Output ports: per-copy writer state + outbox sender.
                let mut outputs = Vec::new();
                for &sid in &output_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    let spec = &graph.streams[sid.0 as usize];
                    // SPSC by construction: the tx lives in this copy's
                    // OutputPort, the rx in its sender process; neither is
                    // ever cloned, so the native transport can use the
                    // lock-free ring.
                    let (outbox_tx, outbox_rx) =
                        transport.spsc_channel::<super::delivery::OutMsg>(tuning.outbox_capacity);
                    delivery::spawn_sender(
                        exec,
                        SenderCfg {
                            stream_name: spec.name.clone(),
                            stream_id: sid.0,
                            copy_index,
                            host,
                            sets: rt.sets.clone(),
                            targets: rt.data_txs.clone(),
                            topo: topo.clone(),
                            faults: fault_ctl.clone(),
                            retransmit_delay: tuning.retransmit_delay,
                        },
                        outbox_rx,
                    );
                    outputs.push(OutputPort {
                        writer: WriterState::for_run(
                            spec.policy,
                            &rt.sets,
                            host,
                            fault_ctl.clone(),
                            cancel.clone(),
                        ),
                        outbox_tx,
                        targets: rt.sets.len(),
                        retention: rt.retention.clone(),
                        ooc: rt.ooc.clone(),
                    });
                }

                let info = CopyInfo {
                    copy_index,
                    total_copies,
                    copyset_index: set_idx,
                    total_copysets: fspec.placement.per_host.len(),
                    host,
                };
                let topo2 = topo.clone();
                let graph2 = graph.clone();
                let barrier2 = barrier.clone();
                let barrier_out = barrier.clone();
                let boundaries2 = uow_boundaries.clone();
                let copy_name = format!("{}#{}@h{}", fspec.name, copy_index, host.0);
                let trace2 = trace.clone().map(|t| (t, copy_name.clone()));
                let fname = fspec.name.clone();
                let copy_ctl = fault_ctl.clone();
                let kill_ctl = fault_ctl.clone();
                let restart_ctl = fault_ctl.clone();
                let copy_errors = error_cell.clone();
                let my_death = fault_ctl.as_ref().and_then(|c| c.plan.host_death(host));
                let copy_slab = slab.clone();
                let policy = fault_ctl.as_ref().and_then(|c| c.supervisor);
                let courier_deadline = tuning.courier_deadline;
                let health: Option<Arc<CopyHealth>> =
                    supervised.then(|| Arc::new(CopyHealth::new()));
                if let Some(h) = &health {
                    records.push(CopyRecord {
                        filter: fid,
                        copy: copy_index,
                        thread: copy_name.clone(),
                        health: h.clone(),
                    });
                }
                let health_ctx = health.clone();
                let health_out = health;
                let live_out = live.clone();
                let shutdown_out = shutdown.clone();
                exec.spawn(
                    copy_name,
                    Box::new(move |env: ExecEnv| {
                        let env_out = env.clone();
                        let body = AssertUnwindSafe(move || {
                            let mut filter = (graph2.filters[fid.0 as usize].factory)(info);
                            let n_inputs = inputs.len();
                            let mut ctx = FilterCtx {
                                env,
                                topo: topo2,
                                info,
                                uow: 0,
                                inputs,
                                outputs,
                                metrics: cell,
                                trace: trace2,
                                faults: copy_ctl,
                                my_death,
                                slab: copy_slab,
                                name: Arc::from(fname.as_str()),
                                errors: copy_errors.clone(),
                                courier_deadline,
                                health: health_ctx,
                                port_done: vec![false; n_inputs],
                            };
                            if let Some(h) = &ctx.health {
                                h.beat(ctx.env.now());
                            }
                            let copy_key = ((fid.0 as u64) << 32) | info.copy_index as u64;
                            let mut restarts_used = 0u32;
                            for uow in 0..uows {
                                ctx.begin_uow(uow);
                                loop {
                                    // One attempt at this unit of work:
                                    // every filter callback inside a
                                    // containment scope.
                                    let attempt = std::panic::catch_unwind(AssertUnwindSafe(
                                        || -> Result<(), String> {
                                            let _contain = contain_scope();
                                            filter.init(&mut ctx);
                                            filter.process(&mut ctx).map_err(|e| e.to_string())?;
                                            filter.finalize(&mut ctx);
                                            Ok(())
                                        },
                                    ));
                                    match attempt {
                                        Ok(Ok(())) => break,
                                        Ok(Err(message)) => abort_run(
                                            &copy_errors,
                                            RunError::Filter {
                                                filter: fname.clone(),
                                                copy: info.copy_index,
                                                host,
                                                uow,
                                                message,
                                            },
                                        ),
                                        Err(payload) => {
                                            if payload.is::<KilledMarker>()
                                                || payload
                                                    .downcast_ref::<String>()
                                                    .is_some_and(|s| s == ABORT_MSG)
                                            {
                                                // Runtime sentinels pass
                                                // through: the kill to the
                                                // outer wrapper's death
                                                // bookkeeping, the abort to
                                                // the driver.
                                                std::panic::resume_unwind(payload);
                                            }
                                            let message = panic_message(payload.as_ref());
                                            match policy {
                                                Some(p) if restarts_used < p.max_restarts => {
                                                    restarts_used += 1;
                                                    let backoff = p.restart_backoff(
                                                        copy_key,
                                                        restarts_used - 1,
                                                    );
                                                    if let Some(ctl) = &restart_ctl {
                                                        let mut t = ctl.tallies.lock();
                                                        t.restarts += 1;
                                                        t.restart_events.push(RestartEvent {
                                                            filter: fname.clone(),
                                                            copy: info.copy_index,
                                                            host,
                                                            uow,
                                                            attempt: restarts_used,
                                                            worker: ctx.env.worker_label(),
                                                            backoff,
                                                            at: ctx.env.now(),
                                                        });
                                                    }
                                                    // Seeded jittered
                                                    // exponential backoff,
                                                    // then a fresh filter
                                                    // instance resumes this
                                                    // UOW from the remaining
                                                    // queue contents — plus,
                                                    // under lossless
                                                    // recovery, the crashed
                                                    // incarnation's journaled
                                                    // inputs re-fetched from
                                                    // retention.
                                                    ctx.env.delay(backoff);
                                                    ctx.prepare_restart_replay();
                                                    filter = (graph2.filters[fid.0 as usize]
                                                        .factory)(
                                                        info
                                                    );
                                                }
                                                Some(_)
                                                    if restart_ctl
                                                        .as_ref()
                                                        .is_some_and(|c| c.allow_degraded) =>
                                                {
                                                    // Budget exhausted:
                                                    // declare the copy dead
                                                    // and take the regular
                                                    // crash path.
                                                    if let Some(ctl) = &restart_ctl {
                                                        ctl.register_copy_death(
                                                            fid,
                                                            info.copy_index,
                                                            ctx.env.now(),
                                                        );
                                                    }
                                                    raise_killed();
                                                }
                                                _ => abort_run(
                                                    &copy_errors,
                                                    RunError::FilterPanic {
                                                        filter: fname.clone(),
                                                        copy: info.copy_index,
                                                        host,
                                                        uow,
                                                        message,
                                                    },
                                                ),
                                            }
                                        }
                                    }
                                }
                                ctx.emit_eow();
                                if uow + 1 < uows {
                                    // Work cycles are separated by a global
                                    // barrier, like the paper's per-query
                                    // runs.
                                    if barrier2.wait(&ctx.env) {
                                        boundaries2.lock().push(ctx.env.now());
                                    }
                                }
                            }
                        });
                        match std::panic::catch_unwind(body) {
                            Ok(()) => {
                                retire(&health_out, &live_out, &shutdown_out, CopyState::Done)
                            }
                            Err(payload) => {
                                if payload.is::<KilledMarker>() {
                                    // This copy died (host crash or restart
                                    // budget exhausted). Tally the death and
                                    // withdraw from the inter-UOW barrier so
                                    // the surviving copies are not stranded.
                                    if let Some(ctl) = &kill_ctl {
                                        ctl.tallies.lock().copies_killed += 1;
                                    }
                                    barrier_out.leave(&env_out);
                                    retire(&health_out, &live_out, &shutdown_out, CopyState::Dead);
                                } else {
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                    }),
                );
                copy_index += 1;
            }
        }
    }

    // ---- supervisor (supervised runs only; spawned last) ------------------
    if let Some(ctl) = fault_ctl.as_ref() {
        if let (Some(policy), Some(shutdown), Some(live)) =
            (ctl.supervisor, shutdown.clone(), live.clone())
        {
            let sup = Supervisor {
                ctl: ctl.clone(),
                policy,
                records,
                barrier: barrier.clone(),
                shutdown,
                live,
                transport: transport.clone(),
                cancel: cancel.clone(),
            };
            // Control role: the supervisor must observe wedged workers, so
            // on the tasked substrate it runs outside the admission pool
            // (a wedged worker holding every slot must not starve it).
            exec.spawn_role(
                SpawnRole::Control,
                "supervisor".to_string(),
                Box::new(move |env: ExecEnv| sup.run(env)),
            );
        }
    }

    // Record the harvest targets, dropping the wiring originals so
    // channels close when the last real user finishes.
    let stream_sets: Vec<Vec<(HostId, CopySetCell)>> = streams_rt
        .iter()
        .map(|rt| {
            rt.sets
                .iter()
                .map(|s| s.host)
                .zip(rt.cells.iter().cloned())
                .collect()
        })
        .collect();
    drop(streams_rt);

    RunWiring {
        copy_cells,
        uow_boundaries,
        stream_sets,
    }
}
