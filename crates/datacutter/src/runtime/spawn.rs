//! Copy instantiation and wiring: builds the per-stream channels, gates
//! and couriers, spawns one reaper per doomed copy set, then spawns every
//! transparent filter copy with its input/output ports and outbox sender.
//!
//! **Spawn order is load-bearing.** On the deterministic substrate,
//! registration order fixes process identity and therefore event order;
//! this module preserves the exact sequence of the pre-refactor monolith —
//! per stream: couriers (one per copy set, interleaved with channel
//! creation); then reapers; then per filter copy: one sender per output
//! port followed by the copy itself — so simulation runs stay bit-for-bit
//! identical.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use hetsim::{HostId, SimTime, Topology};
use parking_lot::Mutex;

use super::delivery::{self, Envelope, SenderCfg};
use super::eow::UowGate;
use super::exec::{ChanRx, ChanTx, ExecEnv, Executor, Transport};
use super::reaper::Reaper;
use super::Tuning;
use crate::context::{FilterCtx, InputPort, OutputPort};
use crate::fault::{abort_run, ErrorCell, FaultCtl, KilledMarker, RunError};
use crate::filter::CopyInfo;
use crate::graph::{AppGraph, FilterId};
use crate::metrics::{CopyCell, CopyCounters, CopySetCell};
use crate::policy::{AckHandle, CopySetInfo, WriterState};

/// Everything the driver needs to harvest a report after the run: the
/// metric cells (shared with the spawned processes) and the barrier
/// boundary log. Holds no channel endpoints, so queues close as soon as
/// the last real user (sender process / filter copy) finishes.
pub(crate) struct RunWiring {
    pub copy_cells: Vec<(FilterId, String, usize, HostId, CopyCell)>,
    pub uow_boundaries: Arc<Mutex<Vec<SimTime>>>,
    /// Per stream: `(host, counters)` of each consumer copy set.
    pub stream_sets: Vec<Vec<(HostId, CopySetCell)>>,
}

/// Wire `graph` onto `exec` and register every runtime process. Nothing
/// runs until the driver calls [`Executor::run`].
#[allow(clippy::too_many_arguments)] // one-call crate-internal wiring entry point
pub(crate) fn build<E: Executor>(
    exec: &mut E,
    topo: &Topology,
    graph: &Arc<AppGraph>,
    uows: u32,
    trace: Option<hetsim::Trace>,
    fault_ctl: Option<Arc<FaultCtl>>,
    error_cell: ErrorCell,
    tuning: &Tuning,
) -> RunWiring {
    let transport = exec.transport();
    let cancel = transport.cancel_scope();

    // ---- per-stream wiring ------------------------------------------------
    struct StreamRt {
        sets: Vec<CopySetInfo>,
        data_txs: Vec<ChanTx<Envelope>>,
        data_rxs: Vec<ChanRx<Envelope>>,
        courier_txs: Vec<ChanTx<AckHandle>>,
        gates: Vec<Arc<Mutex<UowGate>>>,
        cells: Vec<CopySetCell>,
    }

    let mut streams_rt: Vec<StreamRt> = Vec::with_capacity(graph.streams.len());
    for spec in &graph.streams {
        let consumer = &graph.filters[spec.to.0 as usize];
        // Producer copy hosts in copy-index order: the end-of-work gate
        // tracks markers per producer copy so dead producers can be
        // excused without under- or over-counting.
        let producer_hosts: Vec<HostId> = graph.filters[spec.from.0 as usize]
            .placement
            .per_host
            .iter()
            .flat_map(|&(h, n)| (0..n).map(move |_| h))
            .collect();
        let mut sets = Vec::new();
        let mut data_txs = Vec::new();
        let mut data_rxs = Vec::new();
        let mut courier_txs = Vec::new();
        let mut gates = Vec::new();
        let mut cells = Vec::new();
        for &(host, copies) in &consumer.placement.per_host {
            sets.push(CopySetInfo { host, copies });
            // Room for data plus the UowDone tokens injected at the end of
            // each cycle.
            let cap = spec.queue_capacity * copies as usize + copies as usize;
            let (tx, rx) = transport.channel::<Envelope>(cap.max(1));
            data_txs.push(tx);
            data_rxs.push(rx);
            gates.push(Arc::new(Mutex::new(UowGate::new(
                producer_hosts.clone(),
                copies,
            ))));
            let (ctx_tx, ctx_rx) = transport.channel::<AckHandle>(tuning.courier_capacity);
            courier_txs.push(ctx_tx);
            cells.push(CopySetCell::default());
            delivery::spawn_courier(exec, &spec.name, host, topo, ctx_rx);
        }
        // One reaper per copy set whose host is scheduled to crash. The
        // reaper's receiver clone keeps the dead queue open so buffers
        // sent before writers notice the death are salvaged, not dropped.
        if let Some(ctl) = fault_ctl.as_ref().filter(|c| c.plan.has_crashes()) {
            for (set_idx, set) in sets.iter().enumerate() {
                let Some(t_death) = ctl.plan.host_death(set.host) else {
                    continue;
                };
                let reaper = Reaper {
                    ctl: ctl.clone(),
                    errors: error_cell.clone(),
                    rx: data_rxs[set_idx].clone(),
                    survivors: sets
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| ctl.plan.host_death(s.host).is_none())
                        .map(|(i, _)| (i, data_txs[i].clone()))
                        .collect(),
                    sets: sets.clone(),
                    t_death,
                    topo: topo.clone(),
                    stream: spec.name.clone(),
                    gate: gates[set_idx].clone(),
                    uows,
                };
                exec.spawn(
                    format!("reaper:{}@h{}", spec.name, set.host.0),
                    Box::new(move |env: ExecEnv| reaper.run(env)),
                );
            }
        }
        streams_rt.push(StreamRt {
            sets,
            data_txs,
            data_rxs,
            courier_txs,
            gates,
            cells,
        });
    }

    // ---- per-copy spawning ------------------------------------------------
    let all_copies: u32 = graph
        .filters
        .iter()
        .map(|f| f.placement.total_copies())
        .sum();
    let barrier = transport.barrier(all_copies as usize);
    let uow_boundaries: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));
    // One payload-box recycler for the whole run: boxes released when a
    // consumer unwraps a buffer feed the next producer's `make`.
    let slab = crate::buffer::BufferSlab::new();

    let mut copy_cells: Vec<(FilterId, String, usize, HostId, CopyCell)> = Vec::new();
    for (fidx, fspec) in graph.filters.iter().enumerate() {
        let fid = FilterId(fidx as u32);
        let input_ids = graph.inputs_of(fid);
        let output_ids = graph.outputs_of(fid);
        let total_copies = fspec.placement.total_copies() as usize;

        let mut copy_index = 0usize;
        for (set_idx, &(host, copies)) in fspec.placement.per_host.iter().enumerate() {
            for _k in 0..copies {
                let cell: CopyCell = Arc::new(Mutex::new(CopyCounters::default()));
                copy_cells.push((fid, fspec.name.clone(), copy_index, host, cell.clone()));

                // Input ports: this copy shares its host's copy-set queue.
                let mut inputs = Vec::new();
                for &sid in &input_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    inputs.push(InputPort {
                        rx: rt.data_rxs[set_idx].clone(),
                        inject_tx: rt.data_txs[set_idx].clone(),
                        courier_tx: rt.courier_txs[set_idx].clone(),
                        gate: rt.gates[set_idx].clone(),
                        peer_gates: rt
                            .sets
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != set_idx)
                            .map(|(i, s)| (s.host, rt.gates[i].clone()))
                            .collect(),
                        copyset_counters: rt.cells[set_idx].clone(),
                    });
                }

                // Output ports: per-copy writer state + outbox sender.
                let mut outputs = Vec::new();
                for &sid in &output_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    let spec = &graph.streams[sid.0 as usize];
                    // SPSC by construction: the tx lives in this copy's
                    // OutputPort, the rx in its sender process; neither is
                    // ever cloned, so the native transport can use the
                    // lock-free ring.
                    let (outbox_tx, outbox_rx) =
                        transport.spsc_channel::<super::delivery::OutMsg>(tuning.outbox_capacity);
                    delivery::spawn_sender(
                        exec,
                        SenderCfg {
                            stream_name: spec.name.clone(),
                            stream_id: sid.0,
                            copy_index,
                            host,
                            sets: rt.sets.clone(),
                            targets: rt.data_txs.clone(),
                            topo: topo.clone(),
                            faults: fault_ctl.clone(),
                            retransmit_delay: tuning.retransmit_delay,
                        },
                        outbox_rx,
                    );
                    outputs.push(OutputPort {
                        writer: WriterState::for_run(
                            spec.policy,
                            &rt.sets,
                            host,
                            fault_ctl.clone(),
                            cancel.clone(),
                        ),
                        outbox_tx,
                        targets: rt.sets.len(),
                    });
                }

                let info = CopyInfo {
                    copy_index,
                    total_copies,
                    copyset_index: set_idx,
                    total_copysets: fspec.placement.per_host.len(),
                    host,
                };
                let topo2 = topo.clone();
                let graph2 = graph.clone();
                let barrier2 = barrier.clone();
                let barrier_out = barrier.clone();
                let boundaries2 = uow_boundaries.clone();
                let copy_name = format!("{}#{}@h{}", fspec.name, copy_index, host.0);
                let trace2 = trace.clone().map(|t| (t, copy_name.clone()));
                let fname = fspec.name.clone();
                let copy_ctl = fault_ctl.clone();
                let kill_ctl = fault_ctl.clone();
                let copy_errors = error_cell.clone();
                let my_death = fault_ctl.as_ref().and_then(|c| c.plan.host_death(host));
                let copy_slab = slab.clone();
                exec.spawn(
                    copy_name,
                    Box::new(move |env: ExecEnv| {
                        let env_out = env.clone();
                        let body = AssertUnwindSafe(move || {
                            let mut filter = (graph2.filters[fid.0 as usize].factory)(info);
                            let mut ctx = FilterCtx {
                                env,
                                topo: topo2,
                                info,
                                uow: 0,
                                inputs,
                                outputs,
                                metrics: cell,
                                trace: trace2,
                                faults: copy_ctl,
                                my_death,
                                slab: copy_slab,
                            };
                            for uow in 0..uows {
                                ctx.uow = uow;
                                filter.init(&mut ctx);
                                if let Err(e) = filter.process(&mut ctx) {
                                    abort_run(
                                        &copy_errors,
                                        RunError::Filter {
                                            filter: fname.clone(),
                                            copy: info.copy_index,
                                            host,
                                            uow,
                                            message: e.to_string(),
                                        },
                                    );
                                }
                                filter.finalize(&mut ctx);
                                ctx.emit_eow();
                                if uow + 1 < uows {
                                    // Work cycles are separated by a global
                                    // barrier, like the paper's per-query
                                    // runs.
                                    if barrier2.wait(&ctx.env) {
                                        boundaries2.lock().push(ctx.env.now());
                                    }
                                }
                            }
                        });
                        if let Err(payload) = std::panic::catch_unwind(body) {
                            if payload.is::<KilledMarker>() {
                                // This copy's host crashed. Tally the death
                                // and withdraw from the inter-UOW barrier so
                                // the surviving copies are not stranded.
                                if let Some(ctl) = &kill_ctl {
                                    ctl.tallies.lock().copies_killed += 1;
                                }
                                barrier_out.leave(&env_out);
                            } else {
                                std::panic::resume_unwind(payload);
                            }
                        }
                    }),
                );
                copy_index += 1;
            }
        }
    }

    // Record the harvest targets, dropping the wiring originals so
    // channels close when the last real user finishes.
    let stream_sets: Vec<Vec<(HostId, CopySetCell)>> = streams_rt
        .iter()
        .map(|rt| {
            rt.sets
                .iter()
                .map(|s| s.host)
                .zip(rt.cells.iter().cloned())
                .collect()
        })
        .collect();
    drop(streams_rt);

    RunWiring {
        copy_cells,
        uow_boundaries,
        stream_sets,
    }
}
