//! The wall-clock executor: every runtime process (filter copy, outbox
//! sender, ack courier) becomes a real OS thread, communicating over
//! bounded mutex/condvar channels with the same blocking semantics as the
//! simulation's cooperative channels. Nothing here charges virtual costs —
//! computation, transfers and disk reads take however long the hardware
//! takes — so runs are *fast* but not deterministic; output equality with
//! [`super::exec::SimExecutor`] is guaranteed only for order-insensitive
//! pipelines (which the isosurface application is by construction — see
//! DESIGN.md §9).
//!
//! Teardown is the part virtual time gave us for free: the sim engine
//! cancels every cooperative process when one panics, while native threads
//! blocked in `recv`/`send`/barrier/DD-window waits would hang forever. A
//! per-run [`CancelScope`] solves this: the first thread to panic flips the
//! scope, every registered primitive wakes its waiters, and blocked
//! operations fall through (sends discard, receives report closed, barrier
//! waits return) so every thread can unwind and join.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use hetsim::{DeadlineRecv, SendError, SimDuration, SimError, SimTime};
use parking_lot::{Condvar, Mutex};

use super::exec::{
    ChanRx, ChanTx, ExecBarrier, ExecEnv, ExecStats, Executor, SpawnBody, Transport,
};

/// Wall-clock environment of one native thread: time is nanoseconds since
/// the run started, on the same `SimTime` axis the reports use.
#[derive(Clone, Copy)]
pub struct NativeEnv {
    start: Instant,
}

impl NativeEnv {
    /// Nanoseconds since the run started, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// Really sleep for `d`.
    pub fn sleep(&self, d: SimDuration) {
        std::thread::sleep(Duration::from_nanos(d.as_nanos()));
    }
}

impl super::exec::Clock for NativeEnv {
    fn now(&self) -> SimTime {
        NativeEnv::now(self)
    }
    fn sleep(&self, d: SimDuration) {
        NativeEnv::sleep(self, d);
    }
}

/// A primitive that can wake every thread blocked on it, so a cancelled
/// run tears down instead of hanging.
pub(crate) trait CancelWake: Send + Sync {
    /// Wake all waiters; they re-check the scope and fall through.
    fn wake_all(&self);
}

/// Cooperative cancellation scope of one native run. Created by the
/// transport; flipped by the executor when a thread panics; consulted by
/// every blocking primitive built on the transport.
pub struct CancelScope {
    cancelled: AtomicBool,
    wakees: Mutex<Vec<Weak<dyn CancelWake>>>,
}

impl CancelScope {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(CancelScope {
            cancelled: AtomicBool::new(false),
            wakees: Mutex::new(Vec::new()),
        })
    }

    /// True once the run has been cancelled (a thread panicked).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Flip the scope and wake every registered primitive's waiters.
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        for w in self.wakees.lock().iter() {
            if let Some(p) = w.upgrade() {
                p.wake_all();
            }
        }
    }

    /// Register a primitive to be woken on cancellation.
    pub(crate) fn register(&self, wakee: Weak<dyn CancelWake>) {
        self.wakees.lock().push(wakee);
    }
}

// ---- bounded MPMC channel ------------------------------------------------

struct NChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Shared core of a native channel: a bounded deque guarded by one mutex,
/// with separate not-full / not-empty condvars (the crossbeam
/// array-channel shape, simplified).
struct NChan<T> {
    st: Mutex<NChanState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
    cancel: Arc<CancelScope>,
}

impl<T: Send> CancelWake for NChan<T> {
    fn wake_all(&self) {
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Sending half of a native bounded channel.
pub struct NativeTx<T> {
    ch: Arc<NChan<T>>,
}

/// Receiving half of a native bounded channel.
pub struct NativeRx<T> {
    ch: Arc<NChan<T>>,
}

pub(crate) fn native_channel<T: Send + 'static>(
    capacity: usize,
    cancel: &Arc<CancelScope>,
) -> (NativeTx<T>, NativeRx<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let ch = Arc::new(NChan {
        st: Mutex::new(NChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cancel: cancel.clone(),
    });
    cancel.register(Arc::downgrade(&ch) as Weak<dyn CancelWake>);
    (NativeTx { ch: ch.clone() }, NativeRx { ch })
}

impl<T: Send> NativeTx<T> {
    /// Send `value`, blocking while the queue is full. Returns the value
    /// when every receiver is gone. On a cancelled run the value is
    /// silently discarded (reported `Ok`) so producers unwinding through
    /// teardown do not trip their own "channel closed" panics.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut slot = Some(value);
        let mut st = self.ch.st.lock();
        loop {
            if self.ch.cancel.is_cancelled() {
                return Ok(());
            }
            if st.receivers == 0 {
                return Err(SendError(slot.take().expect("value still held")));
            }
            if st.queue.len() < self.ch.capacity {
                st.queue.push_back(slot.take().expect("value still held"));
                drop(st);
                self.ch.not_empty.notify_one();
                return Ok(());
            }
            self.ch.not_full.wait(&mut st);
        }
    }
}

impl<T: Send> NativeRx<T> {
    /// Receive the next value; `None` once the queue is empty and every
    /// sender is gone (or the run was cancelled).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.ch.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.ch.not_full.notify_one();
                return Some(v);
            }
            if st.senders == 0 || self.ch.cancel.is_cancelled() {
                return None;
            }
            self.ch.not_empty.wait(&mut st);
        }
    }

    /// Receive with a deadline on the run's wall-clock `SimTime` axis.
    pub fn recv_deadline(&self, env: &NativeEnv, deadline: SimTime) -> DeadlineRecv<T> {
        let mut st = self.ch.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.ch.not_full.notify_one();
                return DeadlineRecv::Item(v);
            }
            if st.senders == 0 || self.ch.cancel.is_cancelled() {
                return DeadlineRecv::Closed;
            }
            let now = env.now();
            if now >= deadline {
                return DeadlineRecv::TimedOut;
            }
            let remaining = Duration::from_nanos(deadline.since(now).as_nanos());
            let _ = self.ch.not_empty.wait_for(&mut st, remaining);
        }
    }

    /// True when every sender has hung up.
    pub fn is_closed(&self) -> bool {
        self.ch.st.lock().senders == 0
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.ch.st.lock().queue.is_empty()
    }
}

impl<T> Clone for NativeTx<T> {
    fn clone(&self) -> Self {
        self.ch.st.lock().senders += 1;
        NativeTx {
            ch: self.ch.clone(),
        }
    }
}

impl<T> Drop for NativeTx<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.ch.st.lock();
            st.senders -= 1;
            st.senders == 0
        };
        if last {
            self.ch.not_empty.notify_all();
        }
    }
}

impl<T> Clone for NativeRx<T> {
    fn clone(&self) -> Self {
        self.ch.st.lock().receivers += 1;
        NativeRx {
            ch: self.ch.clone(),
        }
    }
}

impl<T> Drop for NativeRx<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.ch.st.lock();
            st.receivers -= 1;
            st.receivers == 0
        };
        if last {
            self.ch.not_full.notify_all();
        }
    }
}

// ---- barrier -------------------------------------------------------------

struct NBarState {
    n: usize,
    arrived: usize,
    generation: u64,
}

struct NBarInner {
    st: Mutex<NBarState>,
    cv: Condvar,
    cancel: Arc<CancelScope>,
}

impl CancelWake for NBarInner {
    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// A cyclic barrier over native threads, with the `leave` extension used
/// when a participant withdraws permanently.
#[derive(Clone)]
pub struct NativeBarrier {
    inner: Arc<NBarInner>,
}

pub(crate) fn native_barrier(participants: usize, cancel: &Arc<CancelScope>) -> NativeBarrier {
    let inner = Arc::new(NBarInner {
        st: Mutex::new(NBarState {
            n: participants,
            arrived: 0,
            generation: 0,
        }),
        cv: Condvar::new(),
        cancel: cancel.clone(),
    });
    cancel.register(Arc::downgrade(&inner) as Weak<dyn CancelWake>);
    NativeBarrier { inner }
}

impl NativeBarrier {
    /// Wait for all participants; the last arriver gets `true`. Returns
    /// immediately (with `false`) on a cancelled run.
    pub fn wait(&self) -> bool {
        let mut st = self.inner.st.lock();
        if self.inner.cancel.is_cancelled() {
            return false;
        }
        st.arrived += 1;
        if st.arrived >= st.n {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.inner.cv.notify_all();
            return true;
        }
        let gen = st.generation;
        while st.generation == gen && !self.inner.cancel.is_cancelled() {
            self.inner.cv.wait(&mut st);
        }
        false
    }

    /// Withdraw permanently, releasing the current round if this
    /// participant was the last one missing.
    pub fn leave(&self) {
        let release = {
            let mut st = self.inner.st.lock();
            st.n = st.n.saturating_sub(1);
            if st.n > 0 && st.arrived >= st.n {
                st.arrived = 0;
                st.generation = st.generation.wrapping_add(1);
                true
            } else {
                false
            }
        };
        if release {
            self.inner.cv.notify_all();
        }
    }
}

// ---- transport + executor ------------------------------------------------

/// Transport building native channels and barriers, all registered with
/// the run's [`CancelScope`].
#[derive(Clone)]
pub struct NativeTransport {
    cancel: Arc<CancelScope>,
}

impl Transport for NativeTransport {
    fn channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
        let (tx, rx) = native_channel(capacity, &self.cancel);
        (ChanTx::Native(tx), ChanRx::Native(rx))
    }

    fn barrier(&self, participants: usize) -> ExecBarrier {
        ExecBarrier::Native(native_barrier(participants, &self.cancel))
    }

    fn cancel_scope(&self) -> Option<Arc<CancelScope>> {
        Some(self.cancel.clone())
    }
}

/// The wall-clock executor: runs each registered process on its own OS
/// thread. Spawning is deferred to [`Executor::run`] so wiring happens
/// before any thread starts (mirroring the simulation, where nothing runs
/// until `Simulation::run`).
pub struct NativeExecutor {
    start: Instant,
    transport: NativeTransport,
    pending: Vec<(String, SpawnBody)>,
    first_panic: Arc<Mutex<Option<(String, String)>>>,
}

impl NativeExecutor {
    /// A fresh native executor with its own cancellation scope.
    pub fn new() -> Self {
        NativeExecutor {
            start: Instant::now(),
            transport: NativeTransport {
                cancel: CancelScope::new(),
            },
            pending: Vec::new(),
            first_panic: Arc::new(Mutex::new(None)),
        }
    }
}

impl Default for NativeExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for NativeExecutor {
    type Transport = NativeTransport;

    fn transport(&self) -> NativeTransport {
        self.transport.clone()
    }

    fn spawn(&mut self, name: String, body: SpawnBody) {
        self.pending.push((name, body));
    }

    fn run(&mut self) -> Result<ExecStats, SimError> {
        let env = NativeEnv { start: self.start };
        let processes = self.pending.len() as u32;
        let mut handles = Vec::with_capacity(self.pending.len());
        for (name, body) in self.pending.drain(..) {
            let cancel = self.transport.cancel.clone();
            let first_panic = self.first_panic.clone();
            let thread_name = name.clone();
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
                        body(ExecEnv::Native(env));
                    }));
                    if let Err(payload) = result {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        first_panic.lock().get_or_insert((thread_name, message));
                        cancel.cancel();
                    }
                })
                .expect("spawn native executor thread");
            handles.push(handle);
        }
        for h in handles {
            let _ = h.join();
        }
        let end_time = env.now();
        if let Some((process, message)) = self.first_panic.lock().take() {
            return Err(SimError::ProcessPanic { process, message });
        }
        Ok(ExecStats {
            end_time,
            events: 0,
            processes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip_across_threads() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_channel::<u32>(2, &cancel);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_channel::<u32>(1, &cancel);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cancel_unblocks_full_channel_send() {
        let cancel = CancelScope::new();
        let (tx, _rx) = native_channel::<u32>(1, &cancel);
        tx.send(1).unwrap();
        let c2 = cancel.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.cancel();
        });
        // Queue is full and nobody receives: only cancellation lets this
        // return (it discards the value and reports Ok).
        assert!(tx.send(2).is_ok());
        t.join().unwrap();
    }

    #[test]
    fn barrier_releases_all_and_elects_one_leader() {
        let cancel = CancelScope::new();
        let b = native_barrier(4, &cancel);
        let leaders = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b2 = b.clone();
            let l2 = leaders.clone();
            handles.push(std::thread::spawn(move || {
                if b2.wait() {
                    *l2.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*leaders.lock(), 1);
    }
}
