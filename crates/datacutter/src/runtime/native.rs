//! The wall-clock executor: every runtime process (filter copy, outbox
//! sender, ack courier) becomes a real OS thread, communicating over
//! bounded mutex/condvar channels with the same blocking semantics as the
//! simulation's cooperative channels. Nothing here charges virtual costs —
//! computation, transfers and disk reads take however long the hardware
//! takes — so runs are *fast* but not deterministic; output equality with
//! [`super::exec::SimExecutor`] is guaranteed only for order-insensitive
//! pipelines (which the isosurface application is by construction — see
//! DESIGN.md §9).
//!
//! Teardown is the part virtual time gave us for free: the sim engine
//! cancels every cooperative process when one panics, while native threads
//! blocked in `recv`/`send`/barrier/DD-window waits would hang forever. A
//! per-run [`CancelScope`] solves this: the first thread to panic flips the
//! scope, every registered primitive wakes its waiters, and blocked
//! operations fall through (sends discard, receives report closed, barrier
//! waits return) so every thread can unwind and join.
//!
//! Since the parking refactor, no primitive here blocks on a condvar
//! directly: every blocking edge is a [`super::park::ParkSite`] built
//! from the transport's [`Parking`] mode. Under [`NativeExecutor`] the
//! sites wrap condvars and behave exactly as before; under
//! [`super::tasked::TaskedExecutor`] the same channels, barriers and
//! completion ledger park carrier threads on waker queues and recycle
//! their admission slots, which is what makes 4096-copy graphs viable.
//! The executor skeleton itself ([`ExecCore`]) is shared by both
//! substrates — only the worker mode (thread-per-copy vs admission-gated
//! carriers) differs.

use std::cell::UnsafeCell;
use std::collections::{HashSet, VecDeque};
use std::mem::MaybeUninit;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use hetsim::{DeadlineRecv, SendError, SimDuration, SimError, SimTime};
use parking_lot::Mutex;

use super::exec::{
    ChanRx, ChanTx, DeadlineSend, ExecBarrier, ExecEnv, ExecStats, Executor, SpawnBody, SpawnRole,
    Transport,
};
use super::park::{self, ParkSite, Parking, Scheduler};

/// Take the value a send loop is still holding. The loops below place the
/// value in an `Option` so it can be returned on channel closure; inside
/// the loop body the option is always occupied.
fn held<T>(slot: &mut Option<T>) -> T {
    match slot.take() {
        Some(v) => v,
        None => unreachable!("send loop still holds its value"),
    }
}

/// Wall-clock environment of one native thread: time is nanoseconds since
/// the run started, on the same `SimTime` axis the reports use.
#[derive(Clone, Copy)]
pub struct NativeEnv {
    start: Instant,
    parking: Parking,
}

impl NativeEnv {
    /// Nanoseconds since the run started, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// Really sleep for `d` — through the parking seam, so a sleeping
    /// task on the cooperative substrate yields its admission slot.
    pub fn sleep(&self, d: SimDuration) {
        self.parking.sleep(Duration::from_nanos(d.as_nanos()));
    }

    /// Label of the worker substrate this environment runs on, for
    /// human-facing incarnation ids (restart timelines).
    pub(crate) fn worker_label(&self) -> &'static str {
        match self.parking {
            Parking::Thread => "thread",
            Parking::Tasked => "task",
        }
    }
}

impl super::exec::Clock for NativeEnv {
    fn now(&self) -> SimTime {
        NativeEnv::now(self)
    }
    fn sleep(&self, d: SimDuration) {
        NativeEnv::sleep(self, d);
    }
}

/// A primitive that can wake every thread blocked on it, so a cancelled
/// run tears down instead of hanging.
pub(crate) trait CancelWake: Send + Sync {
    /// Wake all waiters; they re-check the scope and fall through.
    fn wake_all(&self);
}

/// Cooperative cancellation scope of one native run. Created by the
/// transport; flipped by the executor when a thread panics; consulted by
/// every blocking primitive built on the transport.
pub struct CancelScope {
    cancelled: AtomicBool,
    wakees: Mutex<Vec<Weak<dyn CancelWake>>>,
    /// Parking mode of the run this scope tears down. The scope is the
    /// one teardown/wakeup handle every blocking primitive already
    /// threads through, so it doubles as the carrier of the park seam:
    /// primitives derive their [`ParkSite`]s from it.
    parking: Parking,
}

impl CancelScope {
    /// A thread-parking scope (only primitive unit tests build scopes
    /// directly; run scopes come from the executors via `with_parking`).
    #[cfg(test)]
    pub(crate) fn new() -> Arc<Self> {
        Self::with_parking(Parking::Thread)
    }

    pub(crate) fn with_parking(parking: Parking) -> Arc<Self> {
        Arc::new(CancelScope {
            cancelled: AtomicBool::new(false),
            wakees: Mutex::new(Vec::new()),
            parking,
        })
    }

    /// The parking mode primitives registered with this scope must use.
    pub(crate) fn parking(&self) -> Parking {
        self.parking
    }

    /// True once the run has been cancelled (a thread panicked).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Flip the scope and wake every registered primitive's waiters.
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        for w in self.wakees.lock().iter() {
            if let Some(p) = w.upgrade() {
                p.wake_all();
            }
        }
    }

    /// Register a primitive to be woken on cancellation.
    pub(crate) fn register(&self, wakee: Weak<dyn CancelWake>) {
        self.wakees.lock().push(wakee);
    }
}

// ---- bounded MPMC channel ------------------------------------------------

struct NChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Threads parked on `not_full`. Receives skip the notify syscall
    /// entirely when no sender is parked (the common case: queues rarely
    /// fill).
    send_waiting: usize,
    /// Threads parked on `not_empty`; the symmetric gate for sends.
    recv_waiting: usize,
}

/// Shared core of a native channel: a bounded deque guarded by one mutex,
/// with separate not-full / not-empty park sites (the crossbeam
/// array-channel shape, simplified, behind the parking seam).
struct NChan<T> {
    st: Mutex<NChanState<T>>,
    capacity: usize,
    not_full: ParkSite,
    not_empty: ParkSite,
    cancel: Arc<CancelScope>,
}

impl<T: Send> CancelWake for NChan<T> {
    fn wake_all(&self) {
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

// ---- bounded SPSC ring ---------------------------------------------------

/// `waiting` bit: the consumer is parked (or about to park) on `not_empty`.
const RX_WAITING: u8 = 1;
/// `waiting` bit: the producer is parked (or about to park) on `not_full`.
const TX_WAITING: u8 = 2;

/// Single-producer single-consumer ring used for outbox wiring, where each
/// channel has exactly one writer (the filter copy) and one reader (its
/// sender process) by construction. The hot path is two atomic loads and
/// one store — no mutex — with a parking slow path only when the ring is
/// actually full/empty.
///
/// `head`/`tail` are free-running counters (wrapping, masked on slot
/// access): the consumer alone writes `head`, the producer alone writes
/// `tail`, so `tail - head` is the occupancy. Parking uses a Dekker-style
/// protocol: the parker sets its `waiting` bit under the park lock and
/// re-checks the condition with `SeqCst` loads before sleeping; the peer
/// publishes its counter with a `SeqCst` store *then* reads `waiting`, so
/// either the parker sees the published progress or the peer sees the bit
/// and notifies under the same lock. Notifies are skipped entirely when the
/// bit is clear — the steady-state case.
struct Spsc<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to write; written only by the producer.
    tail: AtomicUsize,
    tx_alive: AtomicBool,
    rx_alive: AtomicBool,
    waiting: AtomicU8,
    park: Mutex<()>,
    not_empty: ParkSite,
    not_full: ParkSite,
    cancel: Arc<CancelScope>,
}

// Safety: the slots are accessed disjointly — the producer writes only at
// `tail` (which it alone advances), the consumer reads only at `head`
// (ditto), and the counter handoff orders those accesses.
unsafe impl<T: Send> Send for Spsc<T> {}
unsafe impl<T: Send> Sync for Spsc<T> {}

impl<T: Send> CancelWake for Spsc<T> {
    fn wake_all(&self) {
        let _g = self.park.lock();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

impl<T: Send> Spsc<T> {
    fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut slot = Some(value);
        loop {
            if self.cancel.is_cancelled() {
                return Ok(());
            }
            if !self.rx_alive.load(Ordering::SeqCst) {
                return Err(SendError(held(&mut slot)));
            }
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) <= self.mask {
                unsafe {
                    (*self.slots[tail & self.mask].get()).write(held(&mut slot));
                }
                self.tail.store(tail.wrapping_add(1), Ordering::SeqCst);
                if self.waiting.load(Ordering::SeqCst) & RX_WAITING != 0 {
                    let _g = self.park.lock();
                    self.not_empty.notify_all();
                }
                return Ok(());
            }
            // Full: park until the consumer frees a slot.
            let mut g = self.park.lock();
            self.waiting.fetch_or(TX_WAITING, Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            if tail.wrapping_sub(head) <= self.mask
                || !self.rx_alive.load(Ordering::SeqCst)
                || self.cancel.is_cancelled()
            {
                self.waiting.fetch_and(!TX_WAITING, Ordering::SeqCst);
                continue;
            }
            self.not_full.wait(&mut g);
            self.waiting.fetch_and(!TX_WAITING, Ordering::SeqCst);
        }
    }

    /// Pop the next value if one is published, notifying a parked producer.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::SeqCst);
        if self.waiting.load(Ordering::SeqCst) & TX_WAITING != 0 {
            let _g = self.park.lock();
            self.not_full.notify_all();
        }
        Some(v)
    }

    /// Empty *and* the producer is gone or the run cancelled: nothing will
    /// ever arrive. Re-checks emptiness after observing the hangup so a
    /// value published right before the producer died is not dropped.
    fn at_end(&self) -> bool {
        (!self.tx_alive.load(Ordering::SeqCst) || self.cancel.is_cancelled())
            && self.head.load(Ordering::SeqCst) == self.tail.load(Ordering::SeqCst)
    }

    fn recv(&self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.at_end() {
                return None;
            }
            let mut g = self.park.lock();
            self.waiting.fetch_or(RX_WAITING, Ordering::SeqCst);
            if self.head.load(Ordering::SeqCst) != self.tail.load(Ordering::SeqCst)
                || !self.tx_alive.load(Ordering::SeqCst)
                || self.cancel.is_cancelled()
            {
                self.waiting.fetch_and(!RX_WAITING, Ordering::SeqCst);
                continue;
            }
            self.not_empty.wait(&mut g);
            self.waiting.fetch_and(!RX_WAITING, Ordering::SeqCst);
        }
    }

    fn recv_deadline(&self, env: &NativeEnv, deadline: SimTime) -> DeadlineRecv<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return DeadlineRecv::Item(v);
            }
            if self.at_end() {
                return DeadlineRecv::Closed;
            }
            let now = env.now();
            if now >= deadline {
                return DeadlineRecv::TimedOut;
            }
            let remaining = Duration::from_nanos(deadline.since(now).as_nanos());
            let mut g = self.park.lock();
            self.waiting.fetch_or(RX_WAITING, Ordering::SeqCst);
            if self.head.load(Ordering::SeqCst) != self.tail.load(Ordering::SeqCst)
                || !self.tx_alive.load(Ordering::SeqCst)
                || self.cancel.is_cancelled()
            {
                self.waiting.fetch_and(!RX_WAITING, Ordering::SeqCst);
                continue;
            }
            let _ = self.not_empty.wait_for(&mut g, remaining);
            self.waiting.fetch_and(!RX_WAITING, Ordering::SeqCst);
        }
    }
}

impl<T> Drop for Spsc<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop any values still in the ring.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

// ---- endpoints -----------------------------------------------------------

enum TxEnd<T> {
    Mpmc(Arc<NChan<T>>),
    Spsc(Arc<Spsc<T>>),
}

enum RxEnd<T> {
    Mpmc(Arc<NChan<T>>),
    Spsc(Arc<Spsc<T>>),
}

/// Sending half of a native bounded channel.
pub struct NativeTx<T> {
    inner: TxEnd<T>,
}

/// Receiving half of a native bounded channel.
pub struct NativeRx<T> {
    inner: RxEnd<T>,
}

pub(crate) fn native_channel<T: Send + 'static>(
    capacity: usize,
    cancel: &Arc<CancelScope>,
) -> (NativeTx<T>, NativeRx<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let parking = cancel.parking();
    let ch = Arc::new(NChan {
        st: Mutex::new(NChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            send_waiting: 0,
            recv_waiting: 0,
        }),
        capacity,
        not_full: parking.site(),
        not_empty: parking.site(),
        cancel: cancel.clone(),
    });
    cancel.register(Arc::downgrade(&ch) as Weak<dyn CancelWake>);
    (
        NativeTx {
            inner: TxEnd::Mpmc(ch.clone()),
        },
        NativeRx {
            inner: RxEnd::Mpmc(ch),
        },
    )
}

/// A lock-free single-producer single-consumer channel. Endpoints must not
/// be cloned (`Clone` panics); use [`native_channel`] for fan-in/fan-out.
pub(crate) fn native_spsc_channel<T: Send + 'static>(
    capacity: usize,
    cancel: &Arc<CancelScope>,
) -> (NativeTx<T>, NativeRx<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let cap = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ch = Arc::new(Spsc {
        mask: cap - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
        waiting: AtomicU8::new(0),
        park: Mutex::new(()),
        not_empty: cancel.parking().site(),
        not_full: cancel.parking().site(),
        cancel: cancel.clone(),
    });
    cancel.register(Arc::downgrade(&ch) as Weak<dyn CancelWake>);
    (
        NativeTx {
            inner: TxEnd::Spsc(ch.clone()),
        },
        NativeRx {
            inner: RxEnd::Spsc(ch),
        },
    )
}

impl<T: Send> NativeTx<T> {
    /// Send `value`, blocking while the queue is full. Returns the value
    /// when every receiver is gone. On a cancelled run the value is
    /// silently discarded (reported `Ok`) so producers unwinding through
    /// teardown do not trip their own "channel closed" panics.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let ch = match &self.inner {
            TxEnd::Spsc(ch) => return ch.send(value),
            TxEnd::Mpmc(ch) => ch,
        };
        let mut slot = Some(value);
        let mut st = ch.st.lock();
        loop {
            if ch.cancel.is_cancelled() {
                return Ok(());
            }
            if st.receivers == 0 {
                return Err(SendError(held(&mut slot)));
            }
            if st.queue.len() < ch.capacity {
                st.queue.push_back(held(&mut slot));
                let wake = st.recv_waiting > 0;
                drop(st);
                if wake {
                    ch.not_empty.notify_one();
                }
                return Ok(());
            }
            st.send_waiting += 1;
            ch.not_full.wait(&mut st);
            st.send_waiting -= 1;
        }
    }

    /// Send with a deadline on the run's wall-clock `SimTime` axis: block
    /// while the queue is full, but give up (discarding the value) at
    /// `deadline`. SPSC endpoints fall back to the plain blocking send —
    /// the runtime only bounds its fan-in (MPMC) handoffs, and the SPSC
    /// ring's consumer is the one peer whose liveness the producer already
    /// tracks.
    pub fn send_deadline(&self, env: &NativeEnv, value: T, deadline: SimTime) -> DeadlineSend {
        let ch = match &self.inner {
            TxEnd::Spsc(_) => {
                return match self.send(value) {
                    Ok(()) => DeadlineSend::Sent,
                    Err(_) => DeadlineSend::Closed,
                };
            }
            TxEnd::Mpmc(ch) => ch,
        };
        let mut slot = Some(value);
        let mut st = ch.st.lock();
        loop {
            if ch.cancel.is_cancelled() {
                // Match `send`: a cancelled run discards quietly so
                // unwinding producers don't trip secondary failures.
                return DeadlineSend::Sent;
            }
            if st.receivers == 0 {
                return DeadlineSend::Closed;
            }
            if st.queue.len() < ch.capacity {
                st.queue.push_back(held(&mut slot));
                let wake = st.recv_waiting > 0;
                drop(st);
                if wake {
                    ch.not_empty.notify_one();
                }
                return DeadlineSend::Sent;
            }
            let now = env.now();
            if now >= deadline {
                return DeadlineSend::TimedOut;
            }
            let remaining = Duration::from_nanos(deadline.since(now).as_nanos());
            st.send_waiting += 1;
            let _ = ch.not_full.wait_for(&mut st, remaining);
            st.send_waiting -= 1;
        }
    }
}

impl<T: Send> NativeRx<T> {
    /// Receive the next value; `None` once the queue is empty and every
    /// sender is gone (or the run was cancelled).
    pub fn recv(&self) -> Option<T> {
        let ch = match &self.inner {
            RxEnd::Spsc(ch) => return ch.recv(),
            RxEnd::Mpmc(ch) => ch,
        };
        let mut st = ch.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.send_waiting > 0;
                drop(st);
                if wake {
                    ch.not_full.notify_one();
                }
                return Some(v);
            }
            if st.senders == 0 || ch.cancel.is_cancelled() {
                return None;
            }
            st.recv_waiting += 1;
            ch.not_empty.wait(&mut st);
            st.recv_waiting -= 1;
        }
    }

    /// Receive with a deadline on the run's wall-clock `SimTime` axis.
    pub fn recv_deadline(&self, env: &NativeEnv, deadline: SimTime) -> DeadlineRecv<T> {
        let ch = match &self.inner {
            RxEnd::Spsc(ch) => return ch.recv_deadline(env, deadline),
            RxEnd::Mpmc(ch) => ch,
        };
        let mut st = ch.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.send_waiting > 0;
                drop(st);
                if wake {
                    ch.not_full.notify_one();
                }
                return DeadlineRecv::Item(v);
            }
            if st.senders == 0 || ch.cancel.is_cancelled() {
                return DeadlineRecv::Closed;
            }
            let now = env.now();
            if now >= deadline {
                return DeadlineRecv::TimedOut;
            }
            let remaining = Duration::from_nanos(deadline.since(now).as_nanos());
            st.recv_waiting += 1;
            let _ = ch.not_empty.wait_for(&mut st, remaining);
            st.recv_waiting -= 1;
        }
    }

    /// True when every sender has hung up.
    pub fn is_closed(&self) -> bool {
        match &self.inner {
            RxEnd::Mpmc(ch) => ch.st.lock().senders == 0,
            RxEnd::Spsc(ch) => !ch.tx_alive.load(Ordering::SeqCst),
        }
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        match &self.inner {
            RxEnd::Mpmc(ch) => ch.st.lock().queue.is_empty(),
            RxEnd::Spsc(ch) => ch.head.load(Ordering::SeqCst) == ch.tail.load(Ordering::SeqCst),
        }
    }

    /// Closed *and* empty — nothing queued and nothing can arrive. One
    /// lock acquisition, unlike probing `is_closed() && is_empty()`.
    pub fn is_drained(&self) -> bool {
        match &self.inner {
            RxEnd::Mpmc(ch) => {
                let st = ch.st.lock();
                st.senders == 0 && st.queue.is_empty()
            }
            RxEnd::Spsc(ch) => {
                !ch.tx_alive.load(Ordering::SeqCst)
                    && ch.head.load(Ordering::SeqCst) == ch.tail.load(Ordering::SeqCst)
            }
        }
    }
}

impl<T> Clone for NativeTx<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            TxEnd::Mpmc(ch) => {
                ch.st.lock().senders += 1;
                NativeTx {
                    inner: TxEnd::Mpmc(ch.clone()),
                }
            }
            TxEnd::Spsc(_) => panic!("SPSC channel endpoints cannot be cloned"),
        }
    }
}

impl<T> Drop for NativeTx<T> {
    fn drop(&mut self) {
        match &self.inner {
            TxEnd::Mpmc(ch) => {
                let last = {
                    let mut st = ch.st.lock();
                    st.senders -= 1;
                    st.senders == 0
                };
                if last {
                    ch.not_empty.notify_all();
                }
            }
            TxEnd::Spsc(ch) => {
                ch.tx_alive.store(false, Ordering::SeqCst);
                let _g = ch.park.lock();
                ch.not_empty.notify_all();
            }
        }
    }
}

impl<T> Clone for NativeRx<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            RxEnd::Mpmc(ch) => {
                ch.st.lock().receivers += 1;
                NativeRx {
                    inner: RxEnd::Mpmc(ch.clone()),
                }
            }
            RxEnd::Spsc(_) => panic!("SPSC channel endpoints cannot be cloned"),
        }
    }
}

impl<T> Drop for NativeRx<T> {
    fn drop(&mut self) {
        match &self.inner {
            RxEnd::Mpmc(ch) => {
                let last = {
                    let mut st = ch.st.lock();
                    st.receivers -= 1;
                    st.receivers == 0
                };
                if last {
                    ch.not_full.notify_all();
                }
            }
            RxEnd::Spsc(ch) => {
                ch.rx_alive.store(false, Ordering::SeqCst);
                let _g = ch.park.lock();
                ch.not_full.notify_all();
            }
        }
    }
}

// ---- barrier -------------------------------------------------------------

struct NBarState {
    n: usize,
    arrived: usize,
    generation: u64,
}

struct NBarInner {
    st: Mutex<NBarState>,
    cv: ParkSite,
    cancel: Arc<CancelScope>,
}

impl CancelWake for NBarInner {
    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// A cyclic barrier over native threads, with the `leave` extension used
/// when a participant withdraws permanently.
#[derive(Clone)]
pub struct NativeBarrier {
    inner: Arc<NBarInner>,
}

pub(crate) fn native_barrier(participants: usize, cancel: &Arc<CancelScope>) -> NativeBarrier {
    let inner = Arc::new(NBarInner {
        st: Mutex::new(NBarState {
            n: participants,
            arrived: 0,
            generation: 0,
        }),
        cv: cancel.parking().site(),
        cancel: cancel.clone(),
    });
    cancel.register(Arc::downgrade(&inner) as Weak<dyn CancelWake>);
    NativeBarrier { inner }
}

impl NativeBarrier {
    /// Wait for all participants; the last arriver gets `true`. Returns
    /// immediately (with `false`) on a cancelled run.
    pub fn wait(&self) -> bool {
        let mut st = self.inner.st.lock();
        if self.inner.cancel.is_cancelled() {
            return false;
        }
        st.arrived += 1;
        if st.arrived >= st.n {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            drop(st);
            self.inner.cv.notify_all();
            return true;
        }
        let gen = st.generation;
        while st.generation == gen && !self.inner.cancel.is_cancelled() {
            self.inner.cv.wait(&mut st);
        }
        false
    }

    /// Withdraw permanently, releasing the current round if this
    /// participant was the last one missing.
    pub fn leave(&self) {
        let release = {
            let mut st = self.inner.st.lock();
            st.n = st.n.saturating_sub(1);
            if st.n > 0 && st.arrived >= st.n {
                st.arrived = 0;
                st.generation = st.generation.wrapping_add(1);
                true
            } else {
                false
            }
        };
        if release {
            self.inner.cv.notify_all();
        }
    }
}

// ---- transport + executor ------------------------------------------------

/// Completion ledger of one native run: which spawned threads have
/// finished, and which have been declared abandoned (wedged — presumed
/// never to finish). The executor's `run` waits until every thread is one
/// or the other, joins the finished and detaches the abandoned.
struct RunWaiters {
    st: Mutex<RunWaitState>,
    cv: ParkSite,
}

struct RunWaitState {
    /// Per-thread finished flags, indexed by spawn order. Sized by `run`.
    done: Vec<bool>,
    /// Threads not yet finished. Lets a completing thread decide in O(1)
    /// whether the run's waiter could be releasable: with no abandonment
    /// in play only the *last* completion notifies, instead of every one
    /// of thousands of finishing tasks waking the waiter to re-scan.
    remaining: usize,
    /// Thread names declared abandoned via [`Transport::abandon`].
    abandoned: HashSet<String>,
}

/// Transport building native channels and barriers, all registered with
/// the run's [`CancelScope`] (which also carries the parking mode they
/// inherit). Shared verbatim by the thread-per-copy and tasked
/// executors; `sched` is present only on the latter, so `abandon` can
/// replace the admission slot a wedged task occupies.
#[derive(Clone)]
pub struct NativeTransport {
    cancel: Arc<CancelScope>,
    waiters: Arc<RunWaiters>,
    sched: Option<Arc<Scheduler>>,
}

impl Transport for NativeTransport {
    fn channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
        let (tx, rx) = native_channel(capacity, &self.cancel);
        (ChanTx::Native(tx), ChanRx::Native(rx))
    }

    fn spsc_channel<T: Send + 'static>(&self, capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
        let (tx, rx) = native_spsc_channel(capacity, &self.cancel);
        (ChanTx::Native(tx), ChanRx::Native(rx))
    }

    fn barrier(&self, participants: usize) -> ExecBarrier {
        ExecBarrier::Native(native_barrier(participants, &self.cancel))
    }

    fn cancel_scope(&self) -> Option<Arc<CancelScope>> {
        Some(self.cancel.clone())
    }

    fn abandon(&self, name: &str) {
        let mut st = self.waiters.st.lock();
        st.abandoned.insert(name.to_string());
        drop(st);
        self.waiters.cv.notify_all();
        // A wedged task never parks, so it never gives its admission slot
        // back — replace it or the pool shrinks for the rest of the run.
        if let Some(s) = &self.sched {
            s.forfeit_wedged();
        }
    }
}

/// How a spawned process gets its CPU time — the worker-substrate seam
/// behind both wall-clock executors.
pub(crate) enum WorkerMode {
    /// One free-running OS thread per process (the classic native model).
    Thread,
    /// One *carrier* OS thread per process, but with a small stack and an
    /// admission [`Scheduler`] gating how many run at once. Workers park
    /// through waker queues (see [`super::park`]); control processes run
    /// unadmitted so supervision stays responsive under full load.
    Tasked {
        sched: Arc<Scheduler>,
        /// Carrier stack size in bytes (thousands of carriers make the
        /// default 8 MiB reservation per thread needlessly extravagant).
        stack: usize,
    },
}

impl WorkerMode {
    fn parking(&self) -> Parking {
        match self {
            WorkerMode::Thread => Parking::Thread,
            WorkerMode::Tasked { .. } => Parking::Tasked,
        }
    }
}

/// The shared wall-clock executor skeleton: deferred spawning (wiring
/// happens before any thread starts, mirroring the simulation), per-
/// process panic containment, the completion/abandonment ledger, and
/// join-or-detach teardown. [`NativeExecutor`] and
/// [`super::tasked::TaskedExecutor`] are both thin shells over this —
/// the only difference is the [`WorkerMode`].
pub(crate) struct ExecCore {
    start: Instant,
    transport: NativeTransport,
    pending: Vec<(SpawnRole, String, SpawnBody)>,
    first_panic: Arc<Mutex<Option<(String, String)>>>,
    mode: WorkerMode,
}

impl ExecCore {
    pub fn new(mode: WorkerMode) -> Self {
        let parking = mode.parking();
        let sched = match &mode {
            WorkerMode::Tasked { sched, .. } => Some(sched.clone()),
            WorkerMode::Thread => None,
        };
        ExecCore {
            start: Instant::now(),
            transport: NativeTransport {
                cancel: CancelScope::with_parking(parking),
                waiters: Arc::new(RunWaiters {
                    st: Mutex::new(RunWaitState {
                        done: Vec::new(),
                        remaining: 0,
                        abandoned: HashSet::new(),
                    }),
                    cv: parking.site(),
                }),
                sched,
            },
            pending: Vec::new(),
            first_panic: Arc::new(Mutex::new(None)),
            mode,
        }
    }

    pub fn transport(&self) -> NativeTransport {
        self.transport.clone()
    }

    pub fn spawn(&mut self, role: SpawnRole, name: String, body: SpawnBody) {
        self.pending.push((role, name, body));
    }

    /// Processes registered so far (the tasked executor bounds this).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    pub fn run(&mut self) -> Result<ExecStats, SimError> {
        let env = NativeEnv {
            start: self.start,
            parking: self.mode.parking(),
        };
        let processes = self.pending.len() as u32;
        let waiters = self.transport.waiters.clone();
        {
            let mut st = waiters.st.lock();
            st.done = vec![false; self.pending.len()];
            st.remaining = self.pending.len();
        }
        let mut handles = Vec::with_capacity(self.pending.len());
        let mut names = Vec::with_capacity(self.pending.len());
        for (index, (role, name, body)) in self.pending.drain(..).enumerate() {
            let cancel = self.transport.cancel.clone();
            let first_panic = self.first_panic.clone();
            let thread_name = name.clone();
            let w = waiters.clone();
            // Worker processes on the tasked substrate are admission-
            // gated; control processes (and everything on the thread
            // substrate) run free.
            let admission = match (&self.mode, role) {
                (WorkerMode::Tasked { sched, .. }, SpawnRole::Worker) => Some(sched.clone()),
                _ => None,
            };
            let mut builder = std::thread::Builder::new().name(name.clone());
            if let WorkerMode::Tasked { stack, .. } = &self.mode {
                builder = builder.stack_size(*stack);
            }
            let spawned = builder.spawn(move || {
                if let Some(s) = &admission {
                    park::enter_admission(s.clone());
                    s.acquire_slot(&park::current_cell());
                }
                let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
                    body(ExecEnv::Native(env));
                }));
                // Give the slot back before the (lock-taking) bookkeeping
                // below, so a finishing task never stalls the pool.
                if let Some(s) = &admission {
                    s.release_slot();
                }
                if let Err(payload) = result {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    first_panic.lock().get_or_insert((thread_name, message));
                    cancel.cancel();
                }
                let mut st = w.st.lock();
                st.done[index] = true;
                st.remaining -= 1;
                // Only a completion that can release the run's waiter
                // notifies: the last one, or any at all once a thread has
                // been abandoned (the waiter's predicate then depends on
                // the abandoned set, which it must re-scan itself).
                let releasable = st.remaining == 0 || !st.abandoned.is_empty();
                drop(st);
                if releasable {
                    w.cv.notify_all();
                }
            });
            let handle = match spawned {
                Ok(h) => h,
                Err(e) => panic!("spawn native executor thread: {e}"),
            };
            handles.push(handle);
            names.push(name);
        }
        // Wait until every thread has either finished or been declared
        // abandoned (wedged) by the supervisor; then join the finished and
        // detach the abandoned (their detached threads die with the
        // process, or whenever their blocking call finally returns).
        {
            let mut st = waiters.st.lock();
            loop {
                let pending = names
                    .iter()
                    .enumerate()
                    .any(|(i, n)| !st.done[i] && !st.abandoned.contains(n));
                if !pending {
                    break;
                }
                waiters.cv.wait(&mut st);
            }
        }
        for (i, h) in handles.into_iter().enumerate() {
            let finished = waiters.st.lock().done[i];
            if finished {
                let _ = h.join();
            }
            // Not finished ⇒ abandoned: dropping the handle detaches it.
        }
        let end_time = env.now();
        if let Some((process, message)) = self.first_panic.lock().take() {
            return Err(SimError::ProcessPanic { process, message });
        }
        Ok(ExecStats {
            end_time,
            events: 0,
            processes,
            deferred_wakes: match &self.mode {
                WorkerMode::Tasked { sched, .. } => sched.deferred_wakes(),
                WorkerMode::Thread => 0,
            },
        })
    }
}

/// The wall-clock executor: runs each registered process on its own OS
/// thread. Spawning is deferred to [`Executor::run`] so wiring happens
/// before any thread starts (mirroring the simulation, where nothing runs
/// until `Simulation::run`).
pub struct NativeExecutor {
    core: ExecCore,
}

impl NativeExecutor {
    /// A fresh native executor with its own cancellation scope.
    pub fn new() -> Self {
        NativeExecutor {
            core: ExecCore::new(WorkerMode::Thread),
        }
    }
}

impl Default for NativeExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for NativeExecutor {
    type Transport = NativeTransport;

    fn transport(&self) -> NativeTransport {
        self.core.transport()
    }

    fn spawn(&mut self, name: String, body: SpawnBody) {
        self.core.spawn(SpawnRole::Worker, name, body);
    }

    fn spawn_role(&mut self, role: SpawnRole, name: String, body: SpawnBody) {
        self.core.spawn(role, name, body);
    }

    fn run(&mut self) -> Result<ExecStats, SimError> {
        self.core.run()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip_across_threads() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_channel::<u32>(2, &cancel);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_channel::<u32>(1, &cancel);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cancel_unblocks_full_channel_send() {
        let cancel = CancelScope::new();
        let (tx, _rx) = native_channel::<u32>(1, &cancel);
        tx.send(1).unwrap();
        let c2 = cancel.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.cancel();
        });
        // Queue is full and nobody receives: only cancellation lets this
        // return (it discards the value and reports Ok).
        assert!(tx.send(2).is_ok());
        t.join().unwrap();
    }

    #[test]
    fn spsc_round_trip_across_threads() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_spsc_channel::<u64>(4, &cancel);
        let t = std::thread::spawn(move || {
            for i in 0..10_000 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_send_fails_when_receiver_gone() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_spsc_channel::<u32>(1, &cancel);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn spsc_receiver_drains_values_sent_before_hangup() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_spsc_channel::<u32>(8, &cancel);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert!(!rx.is_drained(), "queued values remain");
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(rx.is_drained());
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn spsc_blocks_when_full_until_consumer_pops() {
        let cancel = CancelScope::new();
        let (tx, rx) = native_spsc_channel::<u32>(1, &cancel);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the pop below
            tx.send(3).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        t.join().unwrap();
    }

    #[test]
    fn spsc_cancel_unblocks_full_send() {
        let cancel = CancelScope::new();
        let (tx, _rx) = native_spsc_channel::<u32>(1, &cancel);
        tx.send(1).unwrap();
        let c2 = cancel.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.cancel();
        });
        assert!(tx.send(2).is_ok());
        t.join().unwrap();
    }

    #[test]
    fn spsc_drops_undelivered_values() {
        #[derive(Debug)]
        struct Counted(Arc<Mutex<u32>>);
        impl Drop for Counted {
            fn drop(&mut self) {
                *self.0.lock() += 1;
            }
        }
        let drops = Arc::new(Mutex::new(0u32));
        let cancel = CancelScope::new();
        let (tx, rx) = native_spsc_channel::<Counted>(4, &cancel);
        tx.send(Counted(drops.clone())).unwrap();
        tx.send(Counted(drops.clone())).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(*drops.lock(), 2, "ring must drop queued values");
    }

    #[test]
    #[should_panic(expected = "SPSC channel endpoints cannot be cloned")]
    fn spsc_tx_clone_panics() {
        let cancel = CancelScope::new();
        let (tx, _rx) = native_spsc_channel::<u32>(1, &cancel);
        let _ = tx.clone();
    }

    #[test]
    fn barrier_releases_all_and_elects_one_leader() {
        let cancel = CancelScope::new();
        let b = native_barrier(4, &cancel);
        let leaders = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b2 = b.clone();
            let l2 = leaders.clone();
            handles.push(std::thread::spawn(move || {
                if b2.wait() {
                    *l2.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*leaders.lock(), 1);
    }
}
