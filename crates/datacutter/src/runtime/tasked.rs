//! The cooperative massive-fan-out executor: every runtime process is a
//! **waker-parked task** multiplexed over a small worker pool.
//!
//! OS-thread-per-copy caps realistic graphs at a few hundred copies —
//! not because threads are expensive to create, but because thousands of
//! *runnable* threads thrash the scheduler and each blocked copy still
//! costs a full condvar syscall round trip. Here each task gets a carrier
//! thread with a small stack, and a [`Scheduler`] admits only
//! `workers` of them at a time (default: the core count). Everything
//! else — channels, SPSC rings, barriers, the DD credit window, delays —
//! already blocks through the [`super::park`] seam, so a task that
//! blocks releases its admission slot, parks its carrier on a waker
//! queue, and costs the pool nothing until a peer wakes it. Panic
//! containment, heartbeat supervision, budgeted restarts, and lossless
//! retention run unchanged on this substrate: the executor skeleton is
//! literally [`ExecCore`], shared with [`NativeExecutor`].
//!
//! This file is the cooperative path: the clippy `disallowed-methods`
//! ban on `std::thread::sleep` / condvar waits applies here with **no
//! allows** — wakers only. The sanctioned thread-blocking
//! implementations live behind the seam in `runtime/park.rs`.
//!
//! [`NativeExecutor`]: super::native::NativeExecutor

use hetsim::SimError;

use super::exec::{ExecStats, Executor, SpawnBody, SpawnRole};
use super::native::{ExecCore, NativeTransport, WorkerMode};
use super::park::Scheduler;

/// Default carrier stack: enough for a filter copy's deepest path (the
/// extract kernels' recursion is shallow and batch-bounded), two orders
/// of magnitude below the 8 MiB thread default. 4096 tasks reserve
/// 2 GiB of *virtual* address space; resident cost is pages touched.
const CARRIER_STACK: usize = 512 * 1024;

/// The cooperative wall-clock executor. See the module docs; construct
/// with [`TaskedExecutor::new`] (pool sized to the core count) or
/// [`TaskedExecutor::with_workers`].
pub struct TaskedExecutor {
    core: ExecCore,
    max_tasks: Option<usize>,
    workers: usize,
}

/// Pool size used by [`TaskedExecutor::new`]: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl TaskedExecutor {
    /// A fresh tasked executor with a pool sized to the core count.
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// A fresh tasked executor admitting `workers` tasks at a time
    /// (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        TaskedExecutor {
            core: ExecCore::new(WorkerMode::Tasked {
                sched: Scheduler::new(workers),
                stack: CARRIER_STACK,
            }),
            max_tasks: None,
            workers,
        }
    }

    /// Cap the number of tasks a run may register (the `max_task_copies`
    /// knob). [`Executor::run`] fails before starting anything when the
    /// graph wires more.
    pub fn max_tasks(mut self, cap: usize) -> Self {
        self.max_tasks = Some(cap);
        self
    }

    /// The admission-pool size this executor runs with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured task cap, if any.
    pub(crate) fn task_cap(&self) -> Option<usize> {
        self.max_tasks
    }

    /// Disarm the raw task-count guard in [`Executor::run`]. Called by
    /// `Run::go` after validating the graph's *filter copy* count against
    /// the cap: the run wiring also registers infrastructure tasks
    /// (senders, couriers, reapers), which the `max_task_copies` knob
    /// deliberately does not count.
    pub(crate) fn clear_task_cap(&mut self) {
        self.max_tasks = None;
    }
}

impl Default for TaskedExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for TaskedExecutor {
    type Transport = NativeTransport;

    fn transport(&self) -> NativeTransport {
        self.core.transport()
    }

    fn spawn(&mut self, name: String, body: SpawnBody) {
        self.core.spawn(SpawnRole::Worker, name, body);
    }

    fn spawn_role(&mut self, role: SpawnRole, name: String, body: SpawnBody) {
        self.core.spawn(role, name, body);
    }

    fn run(&mut self) -> Result<ExecStats, SimError> {
        if let Some(cap) = self.max_tasks {
            let n = self.core.pending();
            if n > cap {
                return Err(SimError::ProcessPanic {
                    process: "tasked-executor".to_string(),
                    message: format!("graph registers {n} tasks, max_task_copies is {cap}"),
                });
            }
        }
        self.core.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::exec::{ChanTx, ExecEnv, Transport};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tx_send<T: Send + 'static>(tx: &ChanTx<T>, env: &ExecEnv, v: T) {
        if tx.send(env, v).is_err() {
            panic!("receiver gone");
        }
    }

    /// A fan-out/fan-in graph with far more tasks than workers: every
    /// producer sends through a bounded channel into one consumer. With
    /// slot-releasing parks this completes; with slot-holding blocking it
    /// would wedge immediately (producers fill the queue and park while
    /// the consumer waits for a slot).
    #[test]
    fn many_tasks_few_workers_complete() {
        let mut exec = TaskedExecutor::with_workers(2);
        let t = exec.transport();
        let (tx, rx) = t.channel::<u32>(4);
        const N: u32 = 64;
        for i in 0..N {
            let tx = tx.clone();
            exec.spawn(
                format!("producer-{i}"),
                Box::new(move |env| {
                    tx_send(&tx, &env, i);
                }),
            );
        }
        drop(tx);
        let total = Arc::new(AtomicUsize::new(0));
        let total2 = total.clone();
        exec.spawn(
            "consumer".to_string(),
            Box::new(move |env| {
                while let Some(v) = rx.recv(&env) {
                    total2.fetch_add(v as usize, Ordering::SeqCst);
                }
            }),
        );
        let stats = match exec.run() {
            Ok(s) => s,
            Err(e) => panic!("run failed: {e:?}"),
        };
        assert_eq!(stats.processes, N + 1);
        assert_eq!(total.load(Ordering::SeqCst), (0..N as usize).sum());
    }

    /// Barrier cycles across more tasks than workers: every participant
    /// must park (releasing its slot) for any round to close.
    #[test]
    fn barrier_rounds_with_oversubscribed_pool() {
        let mut exec = TaskedExecutor::with_workers(1);
        let t = exec.transport();
        const N: usize = 16;
        let bar = t.barrier(N);
        let rounds = Arc::new(AtomicUsize::new(0));
        for i in 0..N {
            let bar = bar.clone();
            let rounds = rounds.clone();
            exec.spawn(
                format!("party-{i}"),
                Box::new(move |env| {
                    for _ in 0..3 {
                        if bar.wait(&env) {
                            rounds.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }),
            );
        }
        match exec.run() {
            Ok(_) => {}
            Err(e) => panic!("run failed: {e:?}"),
        }
        assert_eq!(rounds.load(Ordering::SeqCst), 3, "one closer per round");
    }

    /// A panicking task cancels the run and surfaces as ProcessPanic,
    /// with every other task unwound — containment works under admission.
    #[test]
    fn panic_cancels_and_reports() {
        let mut exec = TaskedExecutor::with_workers(1);
        let t = exec.transport();
        let (tx, rx) = t.channel::<u32>(1);
        exec.spawn(
            "stuck-consumer".to_string(),
            Box::new(move |env| {
                // Blocks forever unless cancellation wakes it.
                let _ = rx.recv(&env);
            }),
        );
        exec.spawn(
            "bomb".to_string(),
            Box::new(move |_env| {
                let _keep_open = &tx;
                panic!("boom in task");
            }),
        );
        match exec.run() {
            Err(SimError::ProcessPanic { process, message }) => {
                assert_eq!(process, "bomb");
                assert!(message.contains("boom in task"));
            }
            other => panic!("expected ProcessPanic, got {other:?}"),
        }
    }

    #[test]
    fn task_cap_rejects_oversized_graphs() {
        let mut exec = TaskedExecutor::with_workers(1).max_tasks(1);
        exec.spawn("a".to_string(), Box::new(|_| {}));
        exec.spawn("b".to_string(), Box::new(|_| {}));
        match exec.run() {
            Err(SimError::ProcessPanic { message, .. }) => {
                assert!(message.contains("max_task_copies"));
            }
            other => panic!("expected cap error, got {other:?}"),
        }
    }

    /// Delays release the slot: a sleeping task must not block a peer
    /// from being admitted (workers = 1).
    #[test]
    fn delay_yields_the_pool() {
        use hetsim::SimDuration;
        let mut exec = TaskedExecutor::with_workers(1);
        let t = exec.transport();
        let (tx, rx) = t.channel::<u32>(1);
        exec.spawn(
            "sleeper".to_string(),
            Box::new(move |env| {
                // Park for longer than the whole test should take; the
                // peer must run during this window.
                env.delay(SimDuration::from_millis(200));
            }),
        );
        exec.spawn(
            "worker".to_string(),
            Box::new(move |env| {
                tx_send(&tx, &env, 7);
            }),
        );
        let got = Arc::new(AtomicUsize::new(0));
        let got2 = got.clone();
        exec.spawn(
            "reader".to_string(),
            Box::new(move |env| {
                if let Some(v) = rx.recv(&env) {
                    got2.store(v as usize, Ordering::SeqCst);
                }
            }),
        );
        match exec.run() {
            Ok(_) => {}
            Err(e) => panic!("run failed: {e:?}"),
        }
        assert_eq!(got.load(Ordering::SeqCst), 7);
    }
}
