//! The delivery layer: the envelope types that move on copy-set queues,
//! the per-copy **outbox sender** processes (so communication overlaps
//! computation), and the per-copy-set **ack courier** processes (so
//! demand-driven acknowledgments travel the reverse network path without
//! blocking the consumer). Retransmission of fault-plan-dropped messages
//! also lives here, as does settlement of retained replicas under
//! lossless recovery (the courier carries `Settle` batches upstream over
//! the same reverse path as demand acks).

use std::sync::Arc;

use hetsim::{HostId, SimDuration, Topology};

use super::exec::{charge_transfer, ChanRx, ChanTx, ExecEnv, Executor};
use super::retain::{Provenance, StreamRetention};
use crate::buffer::{DataBuffer, ACK_WIRE_BYTES, EOW_WIRE_BYTES};
use crate::fault::FaultCtl;
use crate::policy::{AckHandle, CopySetInfo};

/// A message on a copy-set queue.
pub(crate) enum Envelope {
    /// A data buffer with its (optional) demand-driven ack handle.
    Data {
        buf: DataBuffer,
        ack: Option<AckHandle>,
        /// Retention identity (`(producer copy, per-stream seq)`) when the
        /// stream runs under lossless recovery; `None` otherwise. A second
        /// delivery (reaper forward or restart re-injection) carries the
        /// original provenance so consumers can dedup it.
        prov: Option<Provenance>,
    },
    /// In-band end-of-work marker from one producer copy (by copy index).
    Eow { producer: usize },
    /// Injected once per consumer copy when all producers' markers for the
    /// current unit of work have been seen.
    UowDone,
}

/// Message from a filter copy to its per-stream outbox sender process.
pub(crate) enum OutMsg {
    /// Route one data envelope to the chosen copy set.
    Data {
        copyset_idx: usize,
        envelope: Envelope,
    },
    /// Broadcast an end-of-work marker to every copy set.
    Eow,
}

/// Reverse-path message from a consumer copy set to the producers.
pub(crate) enum CourierMsg {
    /// Demand-driven window credit for one delivered buffer.
    Ack(AckHandle),
    /// Lossless-recovery settlement: these retained replicas were fully
    /// consumed in a completed unit of work and may be garbage-collected.
    Settle { items: Vec<Provenance> },
}

/// Spawn the ack courier for one consumer copy set: it pays the reverse
/// network path for each acknowledgment (and each settlement batch), then
/// credits the producer's demand window or garbage-collects the stream's
/// retention ring.
pub(crate) fn spawn_courier<E: Executor>(
    exec: &mut E,
    stream_name: &str,
    host: HostId,
    topo: &Topology,
    rx: ChanRx<CourierMsg>,
    retention: Option<Arc<StreamRetention>>,
    producer_hosts: Vec<HostId>,
) {
    let topo = topo.clone();
    exec.spawn(
        format!("courier:{stream_name}@h{}", host.0),
        Box::new(move |env: ExecEnv| {
            while let Some(msg) = rx.recv(&env) {
                match msg {
                    CourierMsg::Ack(ack) => {
                        charge_transfer(
                            &env,
                            &topo,
                            host,
                            ack.state.producer_host(),
                            ACK_WIRE_BYTES,
                        );
                        ack.state.ack(&env, ack.copyset_idx);
                    }
                    CourierMsg::Settle { items } => {
                        // One wire-sized settlement frame per producer copy
                        // named in the batch (settlements are tiny and
                        // batched per unit of work).
                        let mut charged: u64 = 0;
                        for p in &items {
                            let bit = 1u64 << (p.copy as u64 % 64);
                            if charged & bit == 0 {
                                charged |= bit;
                                let to =
                                    producer_hosts.get(p.copy as usize).copied().unwrap_or(host);
                                charge_transfer(&env, &topo, host, to, ACK_WIRE_BYTES);
                            }
                        }
                        if let Some(r) = retention.as_ref() {
                            r.settle(&items);
                        }
                    }
                }
            }
        }),
    );
}

/// Static configuration of one outbox sender process.
pub(crate) struct SenderCfg {
    pub stream_name: String,
    /// Seeded-drop key base: the stream id (combined with the copy index).
    pub stream_id: u32,
    pub copy_index: usize,
    pub host: HostId,
    pub sets: Vec<CopySetInfo>,
    pub targets: Vec<ChanTx<Envelope>>,
    pub topo: Topology,
    pub faults: Option<Arc<FaultCtl>>,
    pub retransmit_delay: SimDuration,
}

/// Spawn the outbox sender for one (producer copy, output stream) pair: it
/// drains the copy's outbox, charges wire transfers, applies the fault
/// plan's message drops (paying and retrying each dropped transmission),
/// emulates NIC degradation with serialization-time delays on the native
/// substrate, and broadcasts end-of-work markers.
pub(crate) fn spawn_sender<E: Executor>(exec: &mut E, cfg: SenderCfg, outbox_rx: ChanRx<OutMsg>) {
    let SenderCfg {
        stream_name,
        stream_id,
        copy_index,
        host,
        sets,
        targets,
        topo,
        faults,
        retransmit_delay,
    } = cfg;
    // Seeded-drop key: unique per (stream, producer copy).
    let drop_key = ((stream_id as u64) << 32) | copy_index as u64;
    exec.spawn(
        format!("sender:{stream_name}#{copy_index}@h{}", host.0),
        Box::new(move |env: ExecEnv| {
            let mut seq: u64 = 0;
            while let Some(msg) = outbox_rx.recv(&env) {
                match msg {
                    OutMsg::Data {
                        copyset_idx,
                        envelope,
                    } => {
                        let bytes = match &envelope {
                            Envelope::Data { buf, .. } => buf.transport_bytes(),
                            _ => EOW_WIRE_BYTES,
                        };
                        let to = sets[copyset_idx].host;
                        if let Some(ctl) = faults.as_ref().filter(|c| c.plan.has_drops()) {
                            if to != host {
                                // Each dropped transmission still occupied
                                // the wire: pay for it, wait out the
                                // retransmit timer, re-roll.
                                let mut attempt = 0u64;
                                while ctl.plan.should_drop(drop_key, seq, attempt) {
                                    charge_transfer(&env, &topo, host, to, bytes);
                                    env.delay(retransmit_delay);
                                    ctl.tallies.lock().retransmits += 1;
                                    attempt += 1;
                                }
                            }
                        }
                        if let Some(ctl) = faults.as_ref().filter(|c| c.plan.has_delays()) {
                            // Seeded per-message latency injection (chaos
                            // testing): hold the message on the wire for the
                            // plan's extra delay before it reaches the
                            // consumer queue.
                            if to != host {
                                if let Some(d) = ctl.plan.message_delay(drop_key, seq) {
                                    env.delay(d);
                                    ctl.tallies.lock().messages_delayed += 1;
                                }
                            }
                        }
                        if let Some(ctl) = faults.as_ref().filter(|c| c.plan.has_degrades()) {
                            // NIC degradation on the native substrate: the
                            // virtual-time engine dilates transfers through
                            // the topology's bandwidth drivers, but native
                            // threads pay real wire costs, so the degraded
                            // fraction of serialization time is injected
                            // here as an explicit stall on the sending NIC.
                            if !env.is_virtual() && to != host {
                                let now = env.now();
                                let f = ctl
                                    .plan
                                    .degrade_factor(host, now)
                                    .min(ctl.plan.degrade_factor(to, now));
                                if f < 1.0 {
                                    let nominal = topo.path_cost_per_byte(host, to) * bytes as f64;
                                    let extra = nominal * (1.0 / f.max(1e-6) - 1.0);
                                    env.delay(SimDuration::from_secs_f64(extra));
                                    ctl.tallies.lock().messages_delayed += 1;
                                }
                            }
                        }
                        seq += 1;
                        charge_transfer(&env, &topo, host, to, bytes);
                        if targets[copyset_idx].send(&env, envelope).is_err() {
                            // Consumer gone: late buffer at teardown; drop
                            // it.
                            break;
                        }
                    }
                    OutMsg::Eow => {
                        for (i, tx) in targets.iter().enumerate() {
                            charge_transfer(&env, &topo, host, sets[i].host, EOW_WIRE_BYTES);
                            let _ = tx.send(
                                &env,
                                Envelope::Eow {
                                    producer: copy_index,
                                },
                            );
                        }
                    }
                }
            }
        }),
    );
}
