//! The supervisor process of a supervised run: a heartbeat scanner that
//! detects silently wedged filter copies (no read/write/compute progress
//! for longer than the policy's wedge timeout), declares them dead in the
//! merged death oracle, withdraws them from the inter-UOW barrier, and
//! tells the executor to abandon their threads so the run can finish
//! degraded instead of hanging.
//!
//! Panic-triggered restarts do **not** go through this process — they are
//! handled in-thread by the copy wrapper (the copy's channel endpoints
//! cannot be re-created, so the replacement instance must run on the same
//! thread). The supervisor owns only what a wedged thread cannot do for
//! itself: external detection and eviction.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::fault::{CopyHealth, CopyState, FaultCtl, SupervisorPolicy};
use crate::graph::FilterId;

use super::exec::{ExecBarrier, ExecEnv, Transport};
use super::native::CancelScope;

/// One supervised copy as seen by the heartbeat scanner.
pub(crate) struct CopyRecord {
    pub filter: FilterId,
    pub copy: usize,
    /// The copy's process name, for [`Transport::abandon`].
    pub thread: String,
    pub health: Arc<CopyHealth>,
}

/// Decrement the live-copy count; when it reaches zero every copy has
/// finished or died, and the shutdown flag releases the supervised
/// reapers and the supervisor itself.
pub(crate) fn copy_retired(live: &AtomicUsize, shutdown: &AtomicBool) {
    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
        shutdown.store(true, Ordering::Release);
    }
}

/// The supervisor process body. Spawned last (after every filter copy) so
/// plan-mode spawn order — and therefore simulation determinism — is
/// untouched when supervision is off.
pub(crate) struct Supervisor<T: Transport> {
    pub ctl: Arc<FaultCtl>,
    pub policy: SupervisorPolicy,
    pub records: Vec<CopyRecord>,
    pub barrier: ExecBarrier,
    pub shutdown: Arc<AtomicBool>,
    pub live: Arc<AtomicUsize>,
    pub transport: T,
    pub cancel: Option<Arc<CancelScope>>,
}

impl<T: Transport> Supervisor<T> {
    pub fn run(self, env: ExecEnv) {
        let mut abandoned = false;
        loop {
            if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                // The run is aborting; the executor tears everything down.
                return;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            env.delay(self.policy.heartbeat_interval);
            let Some(wedge) = self.policy.wedge_timeout else {
                continue;
            };
            let now = env.now();
            for rec in &self.records {
                if rec.health.state() != CopyState::Running {
                    continue;
                }
                // Compare via addition: a beat stored concurrently with
                // the `now` read may land "in the future" on the native
                // substrate, and SimTime subtraction would underflow.
                if now < rec.health.last_beat() + wedge {
                    continue;
                }
                // The transition is the arbiter: if the copy's own thread
                // finishes (or dies) concurrently, exactly one side wins
                // and accounts for it.
                if !rec
                    .health
                    .try_transition(CopyState::Running, CopyState::Dead)
                {
                    continue;
                }
                self.ctl.register_copy_death(rec.filter, rec.copy, now);
                self.ctl.tallies.lock().copies_wedged += 1;
                // Withdraw the wedged copy from the inter-UOW barrier so
                // its peers are not stranded, and detach its thread so the
                // run can complete without joining it.
                self.barrier.leave(&env);
                self.transport.abandon(&rec.thread);
                abandoned = true;
                copy_retired(&self.live, &self.shutdown);
            }
        }
        if abandoned {
            // Best effort: give the reapers a few salvage ticks to drain
            // what the wedged copies left behind, then cancel the scope so
            // helper processes blocked on channels the wedged thread will
            // never service (its queues cannot drain) unwind and the run
            // can return.
            env.delay(self.ctl.timeout);
            env.delay(self.ctl.timeout);
            if let Some(c) = &self.cancel {
                c.cancel();
            }
        }
    }
}
