//! Out-of-core machinery: a run-wide memory budget and a spill ring.
//!
//! TPIE's central idea — every component of an out-of-core computation
//! draws from one explicitly managed pool of main memory — applied to the
//! filter-stream runtime. A [`MemoryBudget`] tracks bytes granted to
//! in-flight stream buffers against a fixed total; when a stream's share
//! is exhausted, queued payloads are spilled to a [`SpillRing`] (a single
//! delete-on-drop temp file) and faulted back in on demand at the reader.
//!
//! The accounting invariant — `granted − released == resident` at every
//! point — is what the framework property tests pin down; the spill path
//! itself is exercised for bit-identity (a payload that round-trips
//! through the ring decodes to exactly the bytes that went in).

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Run-wide byte ledger for in-flight buffer payloads.
///
/// `total == 0` means *unlimited* (the out-of-core path is disabled and
/// `grant`/`release` are pure counters). The ledger never blocks: going
/// over budget is handled by spilling, not by back-pressure, so a grant
/// always succeeds — the caller consults its share afterwards.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    total: u64,
    granted: AtomicU64,
    released: AtomicU64,
}

impl MemoryBudget {
    /// A ledger over `total` bytes (0 = unlimited).
    pub fn new(total: u64) -> Arc<MemoryBudget> {
        Arc::new(MemoryBudget {
            total,
            granted: AtomicU64::new(0),
            released: AtomicU64::new(0),
        })
    }

    /// Configured budget in bytes (0 = unlimited).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Record `bytes` entering residency.
    pub fn grant(&self, bytes: u64) {
        self.granted.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` leaving residency (consumed, spilled, or dropped).
    pub fn release(&self, bytes: u64) {
        self.released.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative bytes granted.
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Cumulative bytes released.
    pub fn released(&self) -> u64 {
        self.released.load(Ordering::Relaxed)
    }

    /// Bytes currently resident (`granted − released`). Reads the two
    /// counters independently, so a concurrent snapshot may transiently
    /// see a release before its grant; quiescent reads are exact.
    pub fn resident(&self) -> u64 {
        self.granted().saturating_sub(self.released())
    }
}

/// Handle to one payload parked in a [`SpillRing`].
///
/// Tickets are move-only receipts: redeeming (`fault`) or discarding one
/// frees its file range for reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillTicket {
    offset: u64,
    len: u32,
}

impl SpillTicket {
    /// Encoded payload length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Byte range inside the ring file that is free for reuse.
#[derive(Debug, Clone, Copy)]
struct FreeRange {
    offset: u64,
    len: u64,
}

#[derive(Debug, Default)]
struct RingState {
    /// Free ranges, kept coalesced and sorted by offset.
    free: Vec<FreeRange>,
    /// High-water mark: file bytes ever used.
    frontier: u64,
}

/// A single temp-file backing store for spilled payloads.
///
/// The file is created in the OS temp directory and unlinked immediately
/// (delete-while-open), so a crashed run leaves nothing behind. Slots are
/// allocated first-fit from a coalescing free list; `spill` writes with
/// `write_all_at` and `fault` reads with `read_exact_at`, so concurrent
/// spills/faults from different filter copies need no seek coordination.
pub struct SpillRing {
    file: File,
    st: Mutex<RingState>,
    spills: AtomicU64,
    spill_bytes: AtomicU64,
    faults: AtomicU64,
    fault_bytes: AtomicU64,
}

impl SpillRing {
    /// Create the backing file (unlinked at birth) in the OS temp dir.
    pub fn create() -> io::Result<Arc<SpillRing>> {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "dc_spill_{}_{:x}.ring",
            std::process::id(),
            &*Box::new(0u8) as *const u8 as usize
        ));
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink while open: the kernel reclaims the space when the last
        // handle drops, even on abnormal exit.
        std::fs::remove_file(&path)?;
        Ok(Arc::new(SpillRing {
            file,
            st: Mutex::new(RingState::default()),
            spills: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            fault_bytes: AtomicU64::new(0),
        }))
    }

    /// First-fit slot allocation.
    fn alloc(&self, len: u64) -> u64 {
        let mut st = self.st.lock();
        if let Some(i) = st.free.iter().position(|r| r.len >= len) {
            let off = st.free[i].offset;
            if st.free[i].len == len {
                st.free.remove(i);
            } else {
                st.free[i].offset += len;
                st.free[i].len -= len;
            }
            return off;
        }
        let off = st.frontier;
        st.frontier += len;
        off
    }

    /// Return a range to the free list, coalescing with neighbours.
    fn free(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut st = self.st.lock();
        let i = st.free.partition_point(|r| r.offset < offset);
        st.free.insert(i, FreeRange { offset, len });
        // Coalesce with successor, then predecessor.
        if i + 1 < st.free.len() && st.free[i].offset + st.free[i].len == st.free[i + 1].offset {
            st.free[i].len += st.free[i + 1].len;
            st.free.remove(i + 1);
        }
        if i > 0 && st.free[i - 1].offset + st.free[i - 1].len == st.free[i].offset {
            st.free[i - 1].len += st.free[i].len;
            st.free.remove(i);
        }
    }

    /// Park `bytes` in the ring, returning the redeemable ticket.
    pub fn spill(&self, bytes: &[u8]) -> io::Result<SpillTicket> {
        let offset = self.alloc(bytes.len() as u64);
        self.file.write_all_at(bytes, offset)?;
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(SpillTicket {
            offset,
            len: bytes.len() as u32,
        })
    }

    /// Read a parked payload back and free its slot.
    pub fn fault(&self, ticket: SpillTicket) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; ticket.len as usize];
        self.file.read_exact_at(&mut buf, ticket.offset)?;
        self.free(ticket.offset, ticket.len as u64);
        self.faults.fetch_add(1, Ordering::Relaxed);
        self.fault_bytes
            .fetch_add(ticket.len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Free a parked payload's slot without reading it (e.g. a spilled
    /// retransmission the dedup layer suppressed).
    pub fn discard(&self, ticket: SpillTicket) {
        self.free(ticket.offset, ticket.len as u64);
    }

    /// Number of `spill` calls.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Bytes written by `spill`.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes.load(Ordering::Relaxed)
    }

    /// Number of `fault` calls.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Bytes read by `fault`.
    pub fn fault_bytes(&self) -> u64 {
        self.fault_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of ring-file bytes ever allocated.
    pub fn frontier_bytes(&self) -> u64 {
        self.st.lock().frontier
    }
}

impl std::fmt::Debug for SpillRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillRing")
            .field("spills", &self.spills())
            .field("spill_bytes", &self.spill_bytes())
            .field("faults", &self.faults())
            .field("fault_bytes", &self.fault_bytes())
            .field("frontier_bytes", &self.frontier_bytes())
            .finish()
    }
}

/// Per-stream out-of-core state: the shared ledger + ring, this stream's
/// byte share, and its currently-resident queued bytes.
///
/// The run partitions `memory_budget_bytes` evenly across streams; a
/// stream whose resident queued bytes exceed its share spills the payload
/// it is about to enqueue and re-faults it at the reader. Residency here
/// counts only *in-flight queue copies* — retention replicas for lossless
/// recovery stay in memory (they are bounded by `retention_depth`).
#[derive(Debug)]
pub struct StreamOoc {
    /// Run-wide ledger.
    pub ledger: Arc<MemoryBudget>,
    /// Run-wide storage control block: the (lazily created) spill ring
    /// plus the fault-verdict and retry machinery of the storage ladder.
    pub storage: Arc<crate::storage::StorageCtl>,
    /// This stream's byte share of the run budget.
    pub share: u64,
    /// Bytes of in-flight queue payloads currently in memory.
    resident: AtomicU64,
}

impl StreamOoc {
    /// Out-of-core state for one stream.
    pub fn new(
        ledger: Arc<MemoryBudget>,
        storage: Arc<crate::storage::StorageCtl>,
        share: u64,
    ) -> Arc<StreamOoc> {
        Arc::new(StreamOoc {
            ledger,
            storage,
            share,
            resident: AtomicU64::new(0),
        })
    }

    /// Charge `bytes` of a newly queued payload; returns `true` when the
    /// stream is now over its share and the payload should spill.
    pub fn charge(&self, bytes: u64) -> bool {
        self.ledger.grant(bytes);
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        now > self.share
    }

    /// Release `bytes` (payload consumed, spilled out, or dropped).
    pub fn discharge(&self, bytes: u64) {
        self.ledger.release(bytes);
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes of in-flight queue payloads currently resident.
    pub fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_conservation() {
        let b = MemoryBudget::new(1000);
        b.grant(400);
        b.grant(300);
        b.release(200);
        assert_eq!(b.granted(), 700);
        assert_eq!(b.released(), 200);
        assert_eq!(b.resident(), 500);
        b.release(500);
        assert_eq!(b.granted() - b.released(), b.resident());
        assert_eq!(b.resident(), 0);
    }

    #[test]
    fn spill_fault_roundtrip_is_bit_identical() {
        let ring = SpillRing::create().unwrap();
        let a: Vec<u8> = (0..=255).collect();
        let b = vec![7u8; 4096];
        let ta = ring.spill(&a).unwrap();
        let tb = ring.spill(&b).unwrap();
        assert_eq!(ring.fault(tb).unwrap(), b);
        assert_eq!(ring.fault(ta).unwrap(), a);
        assert_eq!(ring.spills(), 2);
        assert_eq!(ring.faults(), 2);
        assert_eq!(ring.spill_bytes(), 256 + 4096);
        assert_eq!(ring.fault_bytes(), 256 + 4096);
    }

    #[test]
    fn freed_slots_are_reused_first_fit() {
        let ring = SpillRing::create().unwrap();
        let t1 = ring.spill(&[1u8; 100]).unwrap();
        let _t2 = ring.spill(&[2u8; 100]).unwrap();
        assert_eq!(ring.frontier_bytes(), 200);
        // Redeem the first slot; an equal-size spill must reuse it.
        assert_eq!(ring.fault(t1).unwrap(), vec![1u8; 100]);
        let t3 = ring.spill(&[3u8; 100]).unwrap();
        assert_eq!(t3.offset, 0, "first-fit must reuse the freed hole");
        assert_eq!(ring.frontier_bytes(), 200, "no new file growth");
        // A smaller spill splits the next hole rather than growing.
        assert_eq!(ring.fault(t3).unwrap(), vec![3u8; 100]);
        let t4 = ring.spill(&[4u8; 40]).unwrap();
        assert_eq!(t4.offset, 0);
        let t5 = ring.spill(&[5u8; 60]).unwrap();
        assert_eq!(t5.offset, 40, "remainder of the split hole");
        assert_eq!(ring.frontier_bytes(), 200);
    }

    #[test]
    fn discard_frees_without_reading() {
        let ring = SpillRing::create().unwrap();
        let t = ring.spill(&[9u8; 64]).unwrap();
        ring.discard(t);
        assert_eq!(ring.faults(), 0);
        let t2 = ring.spill(&[8u8; 64]).unwrap();
        assert_eq!(t2.offset, 0, "discarded slot reused");
    }

    #[test]
    fn adjacent_frees_coalesce() {
        let ring = SpillRing::create().unwrap();
        let t1 = ring.spill(&[1u8; 50]).unwrap();
        let t2 = ring.spill(&[2u8; 50]).unwrap();
        let t3 = ring.spill(&[3u8; 50]).unwrap();
        ring.discard(t1);
        ring.discard(t3);
        ring.discard(t2); // middle free must merge all three
        let t = ring.spill(&[7u8; 150]).unwrap();
        assert_eq!(t.offset, 0, "coalesced hole fits the large spill");
        assert_eq!(ring.frontier_bytes(), 150);
    }

    #[test]
    fn stream_ooc_share_tripwire() {
        let ledger = MemoryBudget::new(1000);
        let storage = crate::storage::StorageCtl::healthy();
        let s = StreamOoc::new(ledger.clone(), storage, 100);
        assert!(!s.charge(60), "under share");
        assert!(s.charge(60), "over share");
        assert_eq!(s.resident(), 120);
        assert_eq!(ledger.resident(), 120);
        s.discharge(60);
        s.discharge(60);
        assert_eq!(s.resident(), 0);
        assert_eq!(ledger.granted() - ledger.released(), ledger.resident());
    }

    #[test]
    fn unlimited_ledger_still_counts() {
        let b = MemoryBudget::new(0);
        assert_eq!(b.total(), 0);
        b.grant(10);
        assert_eq!(b.resident(), 10);
    }
}
