//! The storage fault domain: checksummed spill frames and the run-wide
//! storage control block behind the self-healing ladder.
//!
//! Since the out-of-core data plane landed, disks are load-bearing — a
//! spilled payload that cannot be written or read back is a correctness
//! event, not a curiosity. This module makes storage a first-class fault
//! domain with three layers:
//!
//! 1. **Detection** — every spill frame can carry an 8-byte little-endian
//!    FNV-1a trailer ([`seal_frame`]), verified and stripped on fault-in
//!    ([`open_frame`]). FNV-1a's xor-then-odd-multiply chain is injective
//!    per input byte, so *any* single bit flip changes the hash — bit-rot
//!    detection is deterministic, not probabilistic.
//! 2. **Injection** — [`StorageCtl`] interprets the fault plan's seeded
//!    disk events (`disk_error`, `corrupt_read`, `degrade_disk`) at the
//!    real `SpillRing` call sites, so the same plan replays on the
//!    virtual-time simulator and the wall-clock executors.
//! 3. **Recovery bookkeeping** — the control block owns the lazily
//!    created (and once-recreatable) spill ring, the bounded
//!    seeded-backoff retry budget, and the ladder tallies
//!    (`disk_errors_injected`, `storage_retries`, `spills_denied`,
//!    `corruptions_detected`) harvested into the run's
//!    [`FaultReport`](crate::metrics::FaultReport).
//!
//! The ladder itself lives at the call sites in [`crate::context`]: a
//! transient error is retried under seeded jittered backoff; a spill
//! write that keeps failing degrades to staying resident over budget
//! (`spills_denied`, ledger conservation intact); a corrupt or unreadable
//! frame falls back to loss-accounted recovery for that buffer; a wedged
//! ring (e.g. `ENOSPC`) is re-created once before the write path gives
//! up. A budget may still cost time, never bits — and now a flaky disk
//! costs retries or accounted losses, never an abort.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hetsim::{DiskFaultKind, FaultPlan, HostId, SimDuration, SimTime};
use parking_lot::Mutex;

use crate::budget::SpillRing;
use crate::fault::backoff_delay;

/// Default bounded retry budget for transient storage errors (spill
/// writes and fault-in reads). Retries are cheap — a seeded backoff in
/// the tens of microseconds — and a transient-error window at rate `r`
/// survives all attempts with probability `r^(budget+1)`, negligible for
/// any realistic plan.
pub const DEFAULT_STORAGE_RETRY_BUDGET: u32 = 8;

/// Base of the storage-retry backoff envelope (doubles per attempt).
pub const STORAGE_BACKOFF_BASE: SimDuration = SimDuration::from_micros(50);

/// Cap of the storage-retry backoff envelope.
pub const STORAGE_BACKOFF_CAP: SimDuration = SimDuration::from_millis(5);

/// Bound on the retained storage-event timeline (first events win; the
/// overflow is counted, not stored).
const MAX_STORAGE_EVENTS: usize = 64;

/// FNV-1a over `bytes` — the workspace's standard integrity hash (the
/// same fold the identity-digest pins use).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seal a spill frame: append the 8-byte little-endian FNV-1a trailer
/// over everything currently in `frame`.
pub fn seal_frame(frame: &mut Vec<u8>) {
    let h = fnv64(frame);
    frame.extend_from_slice(&h.to_le_bytes());
}

/// Verify and strip a sealed frame's trailer, returning the payload
/// bytes. Errors (with a diagnostic) on a short frame or a checksum
/// mismatch — any single bit flip anywhere in the sealed frame lands
/// here deterministically.
pub fn open_frame(frame: &[u8]) -> Result<&[u8], String> {
    let Some(split) = frame.len().checked_sub(8) else {
        return Err(format!(
            "sealed frame too short for its checksum trailer ({} bytes)",
            frame.len()
        ));
    };
    let (payload, trailer) = frame.split_at(split);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(trailer);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv64(payload);
    if stored != computed {
        return Err(format!(
            "checksum mismatch over {} payload bytes: stored {stored:016x}, computed {computed:016x}",
            payload.len()
        ));
    }
    Ok(payload)
}

/// A structured storage-plane failure — what refines the old stringly
/// spill error. Carried inside [`RunError::Storage`](crate::RunError)
/// when the self-healing ladder cannot absorb the fault (or is not
/// allowed to, because no fault machinery is active to account the
/// loss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The spill ring's backing temp file could not be created.
    RingCreate {
        /// The underlying I/O error, as text.
        message: String,
    },
    /// An I/O error that survived the whole retry ladder.
    Io {
        /// What the storage path was doing (e.g. "spill write").
        what: &'static str,
        /// The underlying I/O error, as text.
        message: String,
    },
    /// A detected corruption: the frame read back is not the frame that
    /// was written (checksum mismatch or undecodable payload).
    Corrupt {
        /// What the storage path was doing (e.g. "fault-in decode").
        what: &'static str,
        /// Diagnostic detail (stored vs computed checksum, byte counts).
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::RingCreate { message } => {
                write!(f, "spill-ring creation failed: {message}")
            }
            StorageError::Io { what, message } => {
                write!(f, "storage I/O failed during {what}: {message}")
            }
            StorageError::Corrupt { what, detail } => {
                write!(f, "corruption detected during {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// One row of the storage-plane timeline, harvested into the
/// [`FaultReport`](crate::metrics::FaultReport) for chaos-job logs.
#[derive(Debug, Clone)]
pub struct StorageEvent {
    /// Run-axis time of the event.
    pub at: SimTime,
    /// Host whose storage path observed it.
    pub host: HostId,
    /// What happened (ring re-created, spill denied, frame lost, ...).
    pub detail: String,
}

/// The spill ring's lifecycle: created lazily on first spill, retired
/// (but kept alive — parked frames hold an `Arc` to the ring they were
/// written to, so old tickets stay redeemable) and re-created at most
/// once per run when the write path finds it wedged.
#[derive(Default)]
struct RingSlot {
    current: Option<Arc<SpillRing>>,
    retired: Vec<Arc<SpillRing>>,
    recreated: bool,
}

/// Run-wide storage control block: the lazily created spill ring, the
/// fault plan's disk-event verdicts, the retry/backoff knobs, and the
/// self-healing ladder's tallies. One per run (shared by every stream's
/// [`StreamOoc`](crate::budget::StreamOoc)); cheap when idle — a run
/// that never spills creates no temp file and rolls no verdicts.
pub struct StorageCtl {
    /// Fault plan consulted for disk verdicts (`None` ⇒ no injection;
    /// every verdict query answers "healthy").
    plan: Option<FaultPlan>,
    retry_budget: u32,
    checksum: bool,
    ring: Mutex<RingSlot>,
    /// Monotonic storage-operation counter: each logical spill/fault op
    /// draws one key, so seeded verdicts are independent per operation
    /// and re-rolled per retry attempt.
    ops: AtomicU64,
    disk_errors_injected: AtomicU64,
    storage_retries: AtomicU64,
    spills_denied: AtomicU64,
    corruptions_detected: AtomicU64,
    events: Mutex<Vec<StorageEvent>>,
}

impl StorageCtl {
    /// A control block with `plan`'s disk events (pass `None` for a
    /// fault-free storage plane), a bounded retry budget, and the
    /// checksum-framing switch.
    pub fn new(plan: Option<FaultPlan>, retry_budget: u32, checksum: bool) -> Arc<StorageCtl> {
        Arc::new(StorageCtl {
            plan: plan.filter(|p| p.has_disk_faults()),
            retry_budget,
            checksum,
            ring: Mutex::new(RingSlot::default()),
            ops: AtomicU64::new(0),
            disk_errors_injected: AtomicU64::new(0),
            storage_retries: AtomicU64::new(0),
            spills_denied: AtomicU64::new(0),
            corruptions_detected: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        })
    }

    /// A fault-free control block with the default knobs (test helper and
    /// the zero-configuration path).
    pub fn healthy() -> Arc<StorageCtl> {
        Self::new(None, DEFAULT_STORAGE_RETRY_BUDGET, true)
    }

    /// Whether spill frames carry the FNV-1a checksum trailer.
    pub fn checksum(&self) -> bool {
        self.checksum
    }

    /// Bounded retry budget for transient storage errors.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The live spill ring, created on first use — a budgeted run that
    /// never actually spills touches no temp file, and a creation failure
    /// surfaces here (into the ladder) instead of aborting the run up
    /// front.
    pub(crate) fn ring(&self) -> Result<Arc<SpillRing>, StorageError> {
        let mut slot = self.ring.lock();
        if let Some(ring) = &slot.current {
            return Ok(ring.clone());
        }
        match SpillRing::create() {
            Ok(ring) => {
                slot.current = Some(ring.clone());
                Ok(ring)
            }
            Err(e) => Err(StorageError::RingCreate {
                message: e.to_string(),
            }),
        }
    }

    /// Retire the current ring and create a fresh one — the ladder's
    /// last rung before degrading a wedged write path (e.g. `ENOSPC` on
    /// the temp filesystem). At most once per run; returns `false` when
    /// the recreation was already spent or the fresh ring cannot be
    /// created either. The retired ring stays alive through the `Arc`s
    /// parked frames hold, so already-spilled tickets remain redeemable.
    pub(crate) fn recreate_ring(&self, host: HostId, now: SimTime) -> bool {
        let mut slot = self.ring.lock();
        if slot.recreated {
            return false;
        }
        slot.recreated = true;
        let fresh = match SpillRing::create() {
            Ok(r) => r,
            Err(_) => return false,
        };
        if let Some(old) = slot.current.replace(fresh) {
            slot.retired.push(old);
        }
        drop(slot);
        self.note_event(
            now,
            host,
            "spill ring re-created (write path wedged)".into(),
        );
        true
    }

    /// Draw the next storage-operation key.
    pub(crate) fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed)
    }

    /// Should operation `(op, attempt)` on `host` fail with an injected
    /// disk error now? Tallies the injection when it fires.
    pub(crate) fn injected_disk_error(
        &self,
        host: HostId,
        kind: DiskFaultKind,
        now: SimTime,
        op: u64,
        attempt: u64,
    ) -> bool {
        let Some(plan) = &self.plan else {
            return false;
        };
        let hit = plan.should_fail_disk(host, kind, now, op, attempt);
        if hit {
            self.disk_errors_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The bit to flip in a `len_bits`-bit frame read by operation
    /// `(op, attempt)` on `host`, when the plan corrupts that read.
    /// Tallies the injection when it fires. (Detection is tallied
    /// separately by [`note_corruption`](Self::note_corruption) — with
    /// checksums off, an injected flip may go undetected, and the gap
    /// between the two counters is exactly the silent corruption.)
    pub(crate) fn injected_corrupt_bit(
        &self,
        host: HostId,
        now: SimTime,
        op: u64,
        attempt: u64,
        len_bits: u64,
    ) -> Option<u64> {
        let plan = self.plan.as_ref()?;
        if len_bits == 0 || !plan.should_corrupt_read(host, now, op, attempt) {
            return None;
        }
        self.disk_errors_injected.fetch_add(1, Ordering::Relaxed);
        Some(plan.corrupt_bit(op, attempt, len_bits))
    }

    /// Current disk-degradation factor for `host` (1.0 = healthy).
    pub(crate) fn degrade_factor(&self, host: HostId, now: SimTime) -> f64 {
        self.plan
            .as_ref()
            .map_or(1.0, |p| p.disk_degrade_factor(host, now))
    }

    /// The seeded jittered backoff before retry `attempt` (0-based) of
    /// storage operation `op`. Pure per `(op, attempt)`, so sim retry
    /// schedules replay bit-identically.
    pub(crate) fn backoff(&self, op: u64, attempt: u32) -> SimDuration {
        backoff_delay(
            STORAGE_BACKOFF_BASE,
            STORAGE_BACKOFF_CAP,
            0x5707_4A6E_5EED,
            op,
            attempt,
        )
    }

    /// Tally one ladder retry.
    pub(crate) fn note_retry(&self) {
        self.storage_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally a spill write abandoned after the full ladder (the payload
    /// stays resident over budget) and record the timeline row.
    pub(crate) fn note_spill_denied(&self, host: HostId, at: SimTime, detail: &str) {
        self.spills_denied.fetch_add(1, Ordering::Relaxed);
        self.note_event(
            at,
            host,
            format!("spill denied, staying resident: {detail}"),
        );
    }

    /// Tally a detected corruption (checksum mismatch or undecodable
    /// frame) and record the timeline row.
    pub(crate) fn note_corruption(&self, host: HostId, at: SimTime, detail: &str) {
        self.corruptions_detected.fetch_add(1, Ordering::Relaxed);
        self.note_event(at, host, format!("corrupt frame dropped: {detail}"));
    }

    /// Record a timeline row (bounded; overflow is dropped silently —
    /// the tallies stay exact).
    pub(crate) fn note_event(&self, at: SimTime, host: HostId, detail: String) {
        let mut ev = self.events.lock();
        if ev.len() < MAX_STORAGE_EVENTS {
            ev.push(StorageEvent { at, host, detail });
        }
    }

    /// Disk errors (and corrupt reads) the plan injected.
    pub fn disk_errors_injected(&self) -> u64 {
        self.disk_errors_injected.load(Ordering::Relaxed)
    }

    /// Ladder retries after transient storage errors.
    pub fn storage_retries(&self) -> u64 {
        self.storage_retries.load(Ordering::Relaxed)
    }

    /// Spill writes the ladder abandoned (payload stayed resident).
    pub fn spills_denied(&self) -> u64 {
        self.spills_denied.load(Ordering::Relaxed)
    }

    /// Corruptions detected on fault-in.
    pub fn corruptions_detected(&self) -> u64 {
        self.corruptions_detected.load(Ordering::Relaxed)
    }

    /// Snapshot of the bounded event timeline.
    pub fn events(&self) -> Vec<StorageEvent> {
        self.events.lock().clone()
    }

    /// Fold `f` over every ring this run ever used (the live one plus any
    /// retired by a re-creation).
    fn sum_rings(&self, f: impl Fn(&SpillRing) -> u64) -> u64 {
        let slot = self.ring.lock();
        slot.current
            .iter()
            .chain(slot.retired.iter())
            .map(|r| f(r))
            .sum()
    }

    /// `spill` calls across every ring of the run.
    pub fn spills(&self) -> u64 {
        self.sum_rings(SpillRing::spills)
    }

    /// Bytes written across every ring of the run.
    pub fn spill_bytes(&self) -> u64 {
        self.sum_rings(SpillRing::spill_bytes)
    }

    /// `fault` calls across every ring of the run.
    pub fn faults(&self) -> u64 {
        self.sum_rings(SpillRing::faults)
    }

    /// Bytes read back across every ring of the run.
    pub fn fault_bytes(&self) -> u64 {
        self.sum_rings(SpillRing::fault_bytes)
    }
}

impl std::fmt::Debug for StorageCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageCtl")
            .field("faulted", &self.plan.is_some())
            .field("retry_budget", &self.retry_budget)
            .field("checksum", &self.checksum)
            .field("spills", &self.spills())
            .field("spills_denied", &self.spills_denied())
            .field("corruptions_detected", &self.corruptions_detected())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_open_roundtrip() {
        for len in [0usize, 1, 7, 64, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut frame = payload.clone();
            seal_frame(&mut frame);
            assert_eq!(frame.len(), len + 8);
            assert_eq!(open_frame(&frame).expect("clean frame opens"), &payload[..]);
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let payload: Vec<u8> = (0..97u8).collect();
        let mut frame = payload;
        seal_frame(&mut frame);
        for bit in 0..frame.len() * 8 {
            let mut tampered = frame.clone();
            tampered[bit / 8] ^= 1 << (bit % 8);
            assert!(
                open_frame(&tampered).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn short_frames_are_rejected_not_sliced() {
        for len in 0..8usize {
            let frame = vec![0xAAu8; len];
            let err = open_frame(&frame).expect_err("short frame must error");
            assert!(err.contains("too short"), "unexpected diagnostic: {err}");
        }
    }

    #[test]
    fn lazy_ring_is_created_once_and_shared() {
        let ctl = StorageCtl::healthy();
        let a = ctl.ring().expect("ring creates");
        let b = ctl.ring().expect("ring re-used");
        assert!(Arc::ptr_eq(&a, &b), "same ring until re-created");
        let t = a.spill(&[1, 2, 3]).expect("spill");
        assert_eq!(ctl.spills(), 1);
        assert_eq!(a.fault(t).expect("fault"), vec![1, 2, 3]);
    }

    #[test]
    fn ring_recreation_is_once_and_keeps_old_stats() {
        let ctl = StorageCtl::healthy();
        let old = ctl.ring().expect("ring");
        let t = old.spill(&[9u8; 16]).expect("spill to old ring");
        assert!(
            ctl.recreate_ring(HostId(3), SimTime::ZERO),
            "first recreation"
        );
        let fresh = ctl.ring().expect("fresh ring");
        assert!(!Arc::ptr_eq(&old, &fresh), "ring really replaced");
        assert!(
            !ctl.recreate_ring(HostId(3), SimTime::ZERO),
            "recreation budget is one"
        );
        // The parked frame still redeems against the ring it was written
        // to, and run-wide stats keep counting the retired ring.
        assert_eq!(old.fault(t).expect("old ticket redeems"), vec![9u8; 16]);
        fresh.spill(&[1u8]).expect("fresh ring spills");
        assert_eq!(ctl.spills(), 2, "stats sum current + retired rings");
        assert_eq!(ctl.faults(), 1);
        assert_eq!(ctl.events().len(), 1, "recreation leaves a timeline row");
    }

    #[test]
    fn verdicts_are_inert_without_a_plan() {
        let ctl = StorageCtl::healthy();
        for op in 0..100 {
            assert!(!ctl.injected_disk_error(
                HostId(1),
                DiskFaultKind::Write,
                SimTime::ZERO,
                op,
                0
            ));
            assert!(ctl
                .injected_corrupt_bit(HostId(1), SimTime::ZERO, op, 0, 1024)
                .is_none());
        }
        assert_eq!(ctl.disk_errors_injected(), 0);
        assert_eq!(ctl.degrade_factor(HostId(1), SimTime::ZERO), 1.0);
    }

    #[test]
    fn injected_verdicts_follow_the_plan_and_tally() {
        let win = SimDuration::from_millis(10);
        let plan = FaultPlan::new().storage_seed(7).disk_error(
            HostId(2),
            SimTime::ZERO,
            win,
            1.0,
            DiskFaultKind::Write,
        );
        let ctl = StorageCtl::new(Some(plan), 4, true);
        assert!(ctl.injected_disk_error(HostId(2), DiskFaultKind::Write, SimTime::ZERO, 0, 0));
        assert!(!ctl.injected_disk_error(HostId(2), DiskFaultKind::Read, SimTime::ZERO, 0, 0));
        assert!(!ctl.injected_disk_error(
            HostId(2),
            DiskFaultKind::Write,
            SimTime::ZERO + win,
            1,
            0
        ));
        assert_eq!(ctl.disk_errors_injected(), 1);
    }

    #[test]
    fn storage_backoff_is_deterministic_and_bounded() {
        let ctl = StorageCtl::healthy();
        for attempt in 0..6 {
            let a = ctl.backoff(11, attempt);
            assert_eq!(a, ctl.backoff(11, attempt), "pure per (op, attempt)");
            assert!(a <= STORAGE_BACKOFF_CAP);
            assert!(a.as_nanos() > 0);
        }
        assert_ne!(ctl.backoff(11, 0), ctl.backoff(12, 0), "ops decorrelate");
    }
}
