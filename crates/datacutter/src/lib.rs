//! # datacutter — a filter-stream component framework with transparent
//! copies
//!
//! A Rust reproduction of the DataCutter component framework as described
//! in Beynon et al., *"Efficient Manipulation of Large Datasets on
//! Heterogeneous Storage Systems"* (IPDPS 2002):
//!
//! * applications decompose into **filters** with `init` / `process` /
//!   `finalize` callbacks ([`filter`]),
//! * filters communicate over unidirectional **streams** moving fixed-size
//!   buffers ([`buffer`]),
//! * a filter may run as multiple **transparent copies** across hosts; all
//!   copies on one host form a *copy set* sharing a demand-balanced queue
//!   ([`graph`], [`runtime`]),
//! * producers distribute buffers between copy sets under one of three
//!   **writer policies** — round robin, weighted round robin, or a
//!   demand-driven sliding window with acknowledgments ([`policy`]),
//! * every run yields per-copy and per-stream [`metrics`].
//!
//! Execution is substrate-pluggable (see [`runtime`]): by default a run
//! executes on the `hetsim` emulated cluster, where computation, disk
//! reads, buffer transfers, and DD acknowledgments are all charged to the
//! virtual clock, so heterogeneity (CPU speed, background load, slow
//! links, skewed data) shapes pipeline behaviour exactly as in the paper's
//! testbed — deterministically. The same graph also runs natively on real
//! OS threads via `Run::new(graph).executor(NativeExecutor::new())`.
//!
//! ```
//! use datacutter::{DataBuffer, Filter, FilterCtx, FilterError, GraphBuilder,
//!                  Placement, Run, WritePolicy};
//! use hetsim::{ClusterSpec, HostSpec, HostId, SimDuration, TopologyBuilder};
//!
//! struct Produce;
//! impl Filter for Produce {
//!     fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
//!         for i in 0..4u32 {
//!             ctx.write(0, DataBuffer::new(i, 1024));
//!         }
//!         Ok(())
//!     }
//! }
//! struct Consume;
//! impl Filter for Consume {
//!     fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
//!         while let Some(b) = ctx.read(0) {
//!             ctx.compute(SimDuration::from_millis(b.downcast::<u32>() as u64));
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let mut b = TopologyBuilder::new();
//! let c = b.add_cluster(ClusterSpec { name: "c".into(),
//!     nic_bandwidth_bps: 1e8, nic_latency: SimDuration::from_micros(50) });
//! let h0 = b.add_host(c, HostSpec { name: "h0".into(), cores: 1, speed: 1.0,
//!     mem_mb: 256, disks: 1, disk_bandwidth_bps: 3e7,
//!     disk_seek: SimDuration::from_millis(5) });
//! let h1 = b.add_host(c, HostSpec { name: "h1".into(), cores: 1, speed: 1.0,
//!     mem_mb: 256, disks: 1, disk_bandwidth_bps: 3e7,
//!     disk_seek: SimDuration::from_millis(5) });
//! let topo = b.build();
//!
//! let mut g = GraphBuilder::new();
//! let p = g.add_filter("produce", Placement::on_host(h0, 1), |_| Produce);
//! let q = g.add_filter("consume", Placement::on_host(h1, 2), |_| Consume);
//! g.connect(p, q, WritePolicy::demand_driven());
//! let report = Run::new(g.build()).go(&topo).unwrap();
//! assert_eq!(report.stream(datacutter::StreamId(0)).total_buffers(), 4);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod buffer;
pub mod context;
pub mod fault;
pub mod filter;
pub mod graph;
pub mod metrics;
pub mod policy;
// The runtime hosts the panic-containment and supervision machinery; an
// `unwrap`/`expect` here is an uncontained panic path, so the banned-method
// list in the workspace `clippy.toml` is enforced as an error.
#[deny(clippy::disallowed_methods)]
pub mod runtime;
// The storage plane is the self-healing layer under the spill path; a
// panic here would defeat the degradation ladder it exists to provide.
#[deny(clippy::disallowed_methods)]
pub mod storage;

pub use budget::{MemoryBudget, SpillRing, SpillTicket, StreamOoc};
pub use buffer::{BufferSlab, DataBuffer, SpillCodec, ACK_WIRE_BYTES, BUFFER_OVERHEAD_BYTES};
pub use context::FilterCtx;
pub use fault::{
    backoff_delay, FaultOptions, NativeFaultPlan, Recovery, RestartEvent, RunError,
    SupervisorPolicy, DEFAULT_RETENTION_DEPTH,
};
pub use filter::{CopyInfo, Filter, FilterError, FilterFactory};
pub use graph::{AppGraph, FilterId, GraphBuilder, Placement, StreamId, DEFAULT_QUEUE_CAPACITY};
pub use hetsim::DiskFaultKind;
pub use metrics::{CopyCounters, CopyReport, FaultReport, OocReport, RunReport, StreamReport};
pub use policy::{CopySetInfo, DemandState, WritePolicy};
#[allow(deprecated)]
pub use runtime::{run_app, run_app_faulted, run_app_traced, run_app_uows, run_app_with};
pub use runtime::{
    Clock, ExecEnv, ExecStats, Executor, ExecutorChoice, NativeExecutor, Run, SimExecutor,
    TaskedExecutor, Transport, DEFAULT_COURIER_CAPACITY, DEFAULT_COURIER_DEADLINE,
    DEFAULT_OUTBOX_CAPACITY, DEFAULT_RETRANSMIT_DELAY,
};
pub use storage::{
    fnv64, open_frame, seal_frame, StorageCtl, StorageError, StorageEvent,
    DEFAULT_STORAGE_RETRY_BUDGET,
};
