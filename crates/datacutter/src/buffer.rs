//! Fixed-size data buffers exchanged over streams.
//!
//! DataCutter streams move untyped fixed-size byte buffers. We keep the
//! untyped nature (filters are wired together without shared generics) but
//! skip actual serialization: a [`DataBuffer`] carries a type-erased
//! payload plus an explicit `wire_bytes` — the size the buffer *would*
//! occupy on the wire, which is what the network emulation charges.

use std::any::Any;

/// Framing overhead charged per buffer on top of its payload bytes.
pub const BUFFER_OVERHEAD_BYTES: u64 = 64;

/// Wire size of a demand-driven acknowledgment message.
pub const ACK_WIRE_BYTES: u64 = 64;

/// Wire size of an end-of-work marker message.
pub const EOW_WIRE_BYTES: u64 = 32;

/// A unit of data flowing on a stream.
pub struct DataBuffer {
    payload: Box<dyn Any + Send>,
    wire_bytes: u64,
    /// Name of the payload's concrete type, kept so a mis-wired downcast
    /// can say what the buffer actually holds.
    type_name: &'static str,
}

impl DataBuffer {
    /// Wrap `payload`, declaring its wire size (payload bytes only; framing
    /// overhead is added by the transport).
    pub fn new<T: Any + Send>(payload: T, wire_bytes: u64) -> Self {
        DataBuffer {
            payload: Box::new(payload),
            wire_bytes,
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Declared payload wire size.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Total bytes the transport charges for this buffer.
    pub fn transport_bytes(&self) -> u64 {
        self.wire_bytes + BUFFER_OVERHEAD_BYTES
    }

    /// Recover the payload. Panics with a descriptive message on a type
    /// mismatch — that is always a wiring bug, not a data condition.
    pub fn downcast<T: Any>(self) -> T {
        self.downcast_ctx("stream")
    }

    /// [`downcast`](Self::downcast) with a caller-supplied context (e.g.
    /// `"Ra filter input"`) so the mismatch panic names the mis-wired
    /// stream, what the buffer actually holds, and its declared wire size.
    pub fn downcast_ctx<T: Any>(self, ctx: &str) -> T {
        match self.payload.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "{ctx}: payload type mismatch: expected {}, buffer holds {} ({} wire bytes)",
                std::any::type_name::<T>(),
                self.type_name,
                self.wire_bytes,
            ),
        }
    }

    /// Inspect the payload without consuming the buffer.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for DataBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataBuffer")
            .field("wire_bytes", &self.wire_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_payload() {
        let b = DataBuffer::new(vec![1u32, 2, 3], 12);
        assert_eq!(b.wire_bytes(), 12);
        assert_eq!(b.transport_bytes(), 12 + BUFFER_OVERHEAD_BYTES);
        assert_eq!(b.downcast::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_consume() {
        let b = DataBuffer::new(String::from("hello"), 5);
        assert_eq!(b.peek::<String>().unwrap(), "hello");
        assert!(b.peek::<u32>().is_none());
        assert_eq!(b.downcast::<String>(), "hello");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn downcast_mismatch_panics() {
        let b = DataBuffer::new(1u32, 4);
        let _ = b.downcast::<String>();
    }

    #[test]
    fn mismatch_message_names_both_types_and_wire_size() {
        let b = DataBuffer::new(7u32, 4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.downcast_ctx::<String>("Ra filter input")
        }))
        .expect_err("mismatched downcast must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("Ra filter input"), "missing context: {msg}");
        assert!(
            msg.contains("alloc::string::String"),
            "missing expected type: {msg}"
        );
        assert!(msg.contains("u32"), "missing actual type: {msg}");
        assert!(msg.contains("4 wire bytes"), "missing wire size: {msg}");
    }
}
