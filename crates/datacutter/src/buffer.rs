//! Fixed-size data buffers exchanged over streams.
//!
//! DataCutter streams move untyped fixed-size byte buffers. We keep the
//! untyped nature (filters are wired together without shared generics) but
//! skip actual serialization: a [`DataBuffer`] carries a type-erased
//! payload plus an explicit `wire_bytes` — the size the buffer *would*
//! occupy on the wire, which is what the network emulation charges.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::budget::{SpillRing, SpillTicket};

/// Framing overhead charged per buffer on top of its payload bytes.
pub const BUFFER_OVERHEAD_BYTES: u64 = 64;

/// Wire size of a demand-driven acknowledgment message.
pub const ACK_WIRE_BYTES: u64 = 64;

/// Wire size of an end-of-work marker message.
pub const EOW_WIRE_BYTES: u64 = 32;

/// Monomorphized replicator attached to replicable buffers: clones the
/// erased payload into a slab-recycled box so the lossless-recovery layer
/// can retain a replica without knowing the concrete type.
type ReplicateFn = fn(&(dyn Any + Send), &BufferSlab, u64) -> DataBuffer;

/// Serialization contract a payload must offer before the out-of-core
/// layer may spill it to the [`SpillRing`] and fault it back in.
///
/// The encoding is private to the spill path (it never crosses hosts or
/// versions), so implementations are free to pick the cheapest flat
/// representation; the only requirement is `decode(encode(x)) == x` at
/// the bit level — the framework's property tests check exactly that.
pub trait SpillCodec {
    /// Append this payload's encoded bytes to `out` (which arrives
    /// cleared but with its capacity intact).
    fn spill_encode(&self, out: &mut Vec<u8>);
    /// Rebuild a payload from `spill_encode`'s output.
    fn spill_decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

impl SpillCodec for Vec<u8> {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn spill_decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

/// Monomorphized encoder: appends the erased payload's spill bytes.
type SpillEncodeFn = fn(&(dyn Any + Send), &mut Vec<u8>);

/// Monomorphized decoder: rebuilds an equally spillable buffer from ring
/// bytes (box supplied by the slab), or `None` on corrupt input.
type SpillDecodeFn = fn(&[u8], &BufferSlab, u64) -> Option<DataBuffer>;

/// The spill/fault pair carried by buffers made via
/// [`BufferSlab::make_spillable`].
#[derive(Clone, Copy)]
struct SpillFns {
    encode: SpillEncodeFn,
    decode: SpillDecodeFn,
}

/// Placeholder payload installed while the real one is parked in the
/// spill ring.
struct SpilledPayload {
    ticket: SpillTicket,
    /// The ring holding the ticket — carried per payload so parked
    /// frames survive a storage-ladder ring re-creation (old tickets
    /// redeem against the retired ring they were written to, which the
    /// `Arc` keeps alive).
    ring: Arc<SpillRing>,
}

/// Tombstone installed when a spilled payload was lost to the storage
/// plane (corrupt frame, or read retries exhausted and the slot
/// discarded). The loss itself is accounted by the caller; the tombstone
/// just makes a second redeem/discard inert.
struct LostPayload;

/// A unit of data flowing on a stream.
pub struct DataBuffer {
    payload: Box<dyn Any + Send>,
    wire_bytes: u64,
    /// Name of the payload's concrete type, kept so a mis-wired downcast
    /// can say what the buffer actually holds.
    type_name: &'static str,
    /// Set on buffers made via [`BufferSlab::make_replicable`]; `None`
    /// means the payload cannot be replicated (no `Clone` was promised)
    /// and the recovery layer must account the buffer as unretainable.
    replicate: Option<ReplicateFn>,
    /// Set on buffers made via [`BufferSlab::make_spillable`]; carried
    /// through spill and fault so a faulted buffer can spill again.
    spill: Option<SpillFns>,
    /// True while the stream's budget ledger holds an outstanding charge
    /// for this resident payload — set by the write-side out-of-core step
    /// and consumed by exactly one matching discharge on the read side.
    /// Deliberately `false` on retention replicas and faulted-in rebuilds
    /// (fresh buffers from [`DataBuffer::replicate`] / the spill decode
    /// path), which were never charged: a replayed replica must not be
    /// discharged, or the ledger underflows.
    budget_charged: bool,
}

impl DataBuffer {
    /// Wrap `payload`, declaring its wire size (payload bytes only; framing
    /// overhead is added by the transport).
    pub fn new<T: Any + Send>(payload: T, wire_bytes: u64) -> Self {
        DataBuffer {
            payload: Box::new(payload),
            wire_bytes,
            type_name: std::any::type_name::<T>(),
            replicate: None,
            spill: None,
            budget_charged: false,
        }
    }

    /// Mark the stream-budget charge banked for this resident payload.
    pub(crate) fn set_budget_charged(&mut self) {
        self.budget_charged = true;
    }

    /// Take the outstanding-charge mark; true at most once per charge.
    pub(crate) fn take_budget_charged(&mut self) -> bool {
        std::mem::take(&mut self.budget_charged)
    }

    /// Clone this buffer's payload into a new, equally replicable buffer
    /// (box supplied by `slab`), or `None` when the buffer was not made
    /// replicable. Replicas of replicas work: the replicator travels with
    /// every copy, so a retained entry can itself be re-replicated when a
    /// second fault needs the same data again.
    pub fn replicate(&self, slab: &BufferSlab) -> Option<DataBuffer> {
        self.replicate
            .map(|f| f(self.payload.as_ref(), slab, self.wire_bytes))
    }

    /// True when [`replicate`](Self::replicate) would succeed.
    pub fn is_replicable(&self) -> bool {
        self.replicate.is_some()
    }

    /// Declared payload wire size.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Total bytes the transport charges for this buffer.
    pub fn transport_bytes(&self) -> u64 {
        self.wire_bytes + BUFFER_OVERHEAD_BYTES
    }

    /// Recover the payload. Panics with a descriptive message on a type
    /// mismatch — that is always a wiring bug, not a data condition.
    pub fn downcast<T: Any>(self) -> T {
        self.downcast_ctx("stream")
    }

    /// [`downcast`](Self::downcast) with a caller-supplied context (e.g.
    /// `"Ra filter input"`) so the mismatch panic names the mis-wired
    /// stream, what the buffer actually holds, and its declared wire size.
    pub fn downcast_ctx<T: Any>(self, ctx: &str) -> T {
        match self.payload.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "{ctx}: payload type mismatch: expected {}, buffer holds {} ({} wire bytes)",
                std::any::type_name::<T>(),
                self.type_name,
                self.wire_bytes,
            ),
        }
    }

    /// Inspect the payload without consuming the buffer.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// True when the payload carries a [`SpillCodec`] (made via
    /// [`BufferSlab::make_spillable`]) and may be parked in a spill ring.
    pub fn is_spillable(&self) -> bool {
        self.spill.is_some()
    }

    /// True while the payload is parked in a spill ring (a
    /// [`fault_in`](Self::fault_in) is required before it can be read).
    pub fn is_spilled(&self) -> bool {
        self.payload.is::<SpilledPayload>()
    }

    /// The parked payload's spill frame: the codec's encoding, sealed
    /// with the FNV-1a checksum trailer when `checksum` is set. `None` on
    /// non-spillable or already-spilled buffers. Encoding is separated
    /// from the ring write so the storage ladder can retry a failing
    /// write against the same frame without re-encoding.
    pub(crate) fn spill_frame(&self, checksum: bool) -> Option<Vec<u8>> {
        let fns = self.spill?;
        if self.is_spilled() {
            return None;
        }
        let mut bytes = Vec::new();
        (fns.encode)(self.payload.as_ref(), &mut bytes);
        if checksum {
            crate::storage::seal_frame(&mut bytes);
        }
        Some(bytes)
    }

    /// Park the payload: drop the in-memory box (that drop is the actual
    /// memory release the budget manager banks on) and install the ring
    /// ticket in its place.
    pub(crate) fn park(&mut self, ring: Arc<SpillRing>, ticket: SpillTicket) {
        self.payload = Box::new(SpilledPayload { ticket, ring });
    }

    /// Redeem a spilled payload from the ring it was parked in,
    /// rebuilding it through `slab` (slow path: the rebuild allocates
    /// unless the slab has a pooled box of the payload type). Returns the
    /// frame byte count read back; `Ok(0)` when the buffer is not
    /// spilled.
    ///
    /// `tamper` is the fault-injection seam: it mutates the raw frame
    /// between the physical read and verification, exactly where real
    /// bit-rot lands. With `checksum` set, a mismatching trailer — or an
    /// undecodable payload — fails with [`io::ErrorKind::InvalidData`];
    /// the ring slot was already freed by the read, so corruption is
    /// *not* retryable: the payload becomes a tombstone and the caller
    /// accounts the loss. A failed physical read (anything but
    /// `InvalidData`) leaves the ticket intact and may be retried.
    pub(crate) fn fault_in(
        &mut self,
        slab: &BufferSlab,
        checksum: bool,
        tamper: &dyn Fn(&mut Vec<u8>),
    ) -> io::Result<u64> {
        let Some(spilled) = self.payload.downcast_ref::<SpilledPayload>() else {
            return Ok(0);
        };
        let fns = self
            .spill
            .unwrap_or_else(|| unreachable!("spilled buffers keep their SpillFns"));
        let ticket = spilled.ticket;
        let ring = spilled.ring.clone();
        let mut bytes = ring.fault(ticket)?;
        tamper(&mut bytes);
        let decoded: Result<DataBuffer, String> = (|| {
            let payload: &[u8] = if checksum {
                crate::storage::open_frame(&bytes)?
            } else {
                &bytes
            };
            (fns.decode)(payload, slab, self.wire_bytes).ok_or_else(|| {
                format!(
                    "undecodable spilled payload ({} frame bytes)",
                    payload.len()
                )
            })
        })();
        match decoded {
            Ok(rebuilt) => {
                let n = bytes.len() as u64;
                *self = rebuilt;
                Ok(n)
            }
            Err(detail) => {
                // The slot is freed and the frame bytes are wrong: the
                // payload is gone for good. Tombstone it so discard and
                // repool paths stay inert.
                self.payload = Box::new(LostPayload);
                Err(io::Error::new(io::ErrorKind::InvalidData, detail))
            }
        }
    }

    /// Free a parked payload's ring slot without paying the read (a
    /// suppressed duplicate, or read retries exhausted) and tombstone
    /// the payload. `false` when the buffer was not spilled.
    pub(crate) fn discard_spilled(&mut self) -> bool {
        let Some(spilled) = self.payload.downcast_ref::<SpilledPayload>() else {
            return false;
        };
        spilled.ring.discard(spilled.ticket);
        self.payload = Box::new(LostPayload);
        true
    }
}

impl std::fmt::Debug for DataBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataBuffer")
            .field("wire_bytes", &self.wire_bytes)
            .finish()
    }
}

/// Recycles the heap boxes behind [`DataBuffer`] payloads across unit-of-work
/// cycles.
///
/// Every buffer a filter writes allocates a `Box<dyn Any + Send>`; in steady
/// state the pipeline creates and destroys one per delivered buffer. The slab
/// keeps the erased boxes of consumed buffers in per-type free lists so the
/// next `make` of the same payload type overwrites a recycled box in place
/// instead of allocating. Payload *contents* are still moved in/out normally
/// (so interior `Vec`s recycle through their own [`BufferPool`]s); only the
/// outer box round-trips through the slab.
///
/// Clones share the same free lists, so one slab created at run build time
/// can be handed to every filter copy. The slab is purely an allocation
/// cache: it never changes what a buffer holds or reports, so runs with and
/// without it are bit-identical.
#[derive(Clone, Default)]
pub struct BufferSlab {
    inner: Arc<Mutex<FreeLists>>,
    /// Boxes allocated because no recycled one was available.
    misses: Arc<AtomicU64>,
}

/// Per-payload-type free lists of erased boxes.
type FreeLists = HashMap<TypeId, Vec<Box<dyn Any + Send>>>;

impl BufferSlab {
    /// An empty slab (no recycled boxes yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap `payload` in a [`DataBuffer`], reusing a recycled box of the
    /// same payload type when one is available.
    pub fn make<T: Any + Send>(&self, payload: T, wire_bytes: u64) -> DataBuffer {
        let recycled = self
            .inner
            .lock()
            .get_mut(&TypeId::of::<T>())
            .and_then(Vec::pop);
        let payload: Box<dyn Any + Send> = match recycled {
            Some(bx) => {
                let mut bx = bx
                    .downcast::<T>()
                    .expect("slab free list keyed by TypeId holds matching boxes");
                *bx = payload;
                bx
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Box::new(payload)
            }
        };
        DataBuffer {
            payload,
            wire_bytes,
            type_name: std::any::type_name::<T>(),
            replicate: None,
            spill: None,
            budget_charged: false,
        }
    }

    /// [`make`](Self::make) for a `Clone` payload: the returned buffer
    /// additionally carries a monomorphized replicator, so the recovery
    /// layer can retain a slab-pooled replica of it while the original is
    /// in flight ([`DataBuffer::replicate`]). Costs nothing unless a
    /// replica is actually taken.
    pub fn make_replicable<T: Any + Send + Clone>(
        &self,
        payload: T,
        wire_bytes: u64,
    ) -> DataBuffer {
        fn replicate_impl<T: Any + Send + Clone>(
            payload: &(dyn Any + Send),
            slab: &BufferSlab,
            wire_bytes: u64,
        ) -> DataBuffer {
            let payload = payload
                .downcast_ref::<T>()
                .expect("replicator is monomorphized for its buffer's payload type")
                .clone();
            slab.make_replicable(payload, wire_bytes)
        }
        let mut buf = self.make(payload, wire_bytes);
        buf.replicate = Some(replicate_impl::<T>);
        buf
    }

    /// [`make_replicable`](Self::make_replicable) for a payload that also
    /// implements [`SpillCodec`]: the returned buffer can be parked in a
    /// [`SpillRing`] by the out-of-core layer and faulted back on demand.
    /// Replicas (and faulted-in rebuilds) are themselves spillable, so
    /// retention and spill compose. Costs nothing until a spill happens.
    pub fn make_spillable<T: Any + Send + Clone + SpillCodec>(
        &self,
        payload: T,
        wire_bytes: u64,
    ) -> DataBuffer {
        fn replicate_impl<T: Any + Send + Clone + SpillCodec>(
            payload: &(dyn Any + Send),
            slab: &BufferSlab,
            wire_bytes: u64,
        ) -> DataBuffer {
            let payload = payload
                .downcast_ref::<T>()
                .expect("replicator is monomorphized for its buffer's payload type")
                .clone();
            slab.make_spillable(payload, wire_bytes)
        }
        fn encode_impl<T: Any + Send + SpillCodec>(payload: &(dyn Any + Send), out: &mut Vec<u8>) {
            payload
                .downcast_ref::<T>()
                .expect("spill encoder is monomorphized for its buffer's payload type")
                .spill_encode(out);
        }
        fn decode_impl<T: Any + Send + Clone + SpillCodec>(
            bytes: &[u8],
            slab: &BufferSlab,
            wire_bytes: u64,
        ) -> Option<DataBuffer> {
            Some(slab.make_spillable(T::spill_decode(bytes)?, wire_bytes))
        }
        let mut buf = self.make(payload, wire_bytes);
        buf.replicate = Some(replicate_impl::<T>);
        buf.spill = Some(SpillFns {
            encode: encode_impl::<T>,
            decode: decode_impl::<T>,
        });
        buf
    }

    /// Return `buf`'s payload box to the free list without recovering the
    /// value — the type-erased counterpart of [`recycle`](Self::recycle),
    /// used where the concrete payload type is unknown (suppressed
    /// duplicate deliveries, evicted or settled retention entries). The
    /// box is keyed by the payload's runtime `TypeId`, so a later `make`
    /// of the same type reuses it; the stale contents are overwritten (and
    /// their interior resources dropped) at that point.
    pub fn repool(&self, buf: DataBuffer) {
        let tid = buf.payload.as_ref().type_id();
        self.inner.lock().entry(tid).or_default().push(buf.payload);
    }

    /// Consume `buf`, take its payload, and return the emptied box to the
    /// free list. The payload type must implement [`Default`] so the value
    /// can be moved out while the box stays allocated.
    pub fn recycle<T: Any + Send + Default>(&self, buf: DataBuffer) -> T {
        self.recycle_ctx(buf, "stream")
    }

    /// [`recycle`](Self::recycle) with a caller-supplied context for the
    /// mismatch panic, mirroring [`DataBuffer::downcast_ctx`].
    pub fn recycle_ctx<T: Any + Send + Default>(&self, buf: DataBuffer, ctx: &str) -> T {
        let mut bx = match buf.payload.downcast::<T>() {
            Ok(bx) => bx,
            Err(_) => panic!(
                "{ctx}: payload type mismatch: expected {}, buffer holds {} ({} wire bytes)",
                std::any::type_name::<T>(),
                buf.type_name,
                buf.wire_bytes,
            ),
        };
        let value = std::mem::take(&mut *bx);
        self.inner
            .lock()
            .entry(TypeId::of::<T>())
            .or_default()
            .push(bx as Box<dyn Any + Send>);
        value
    }

    /// Number of boxes allocated fresh (free list empty at `make` time).
    /// In steady state this stops growing: every `make` is fed by a prior
    /// `recycle`.
    pub fn allocated(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Boxes currently parked in free lists, across all payload types.
    pub fn idle(&self) -> usize {
        self.inner.lock().values().map(Vec::len).sum()
    }
}

impl std::fmt::Debug for BufferSlab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferSlab")
            .field("allocated", &self.allocated())
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_payload() {
        let b = DataBuffer::new(vec![1u32, 2, 3], 12);
        assert_eq!(b.wire_bytes(), 12);
        assert_eq!(b.transport_bytes(), 12 + BUFFER_OVERHEAD_BYTES);
        assert_eq!(b.downcast::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_consume() {
        let b = DataBuffer::new(String::from("hello"), 5);
        assert_eq!(b.peek::<String>().unwrap(), "hello");
        assert!(b.peek::<u32>().is_none());
        assert_eq!(b.downcast::<String>(), "hello");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn downcast_mismatch_panics() {
        let b = DataBuffer::new(1u32, 4);
        let _ = b.downcast::<String>();
    }

    #[test]
    fn slab_recycles_boxes_per_type() {
        let slab = BufferSlab::new();
        let b = slab.make(vec![1u32, 2, 3], 12);
        assert_eq!(slab.allocated(), 1);
        assert_eq!(b.wire_bytes(), 12);
        let v: Vec<u32> = slab.recycle(b);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(slab.idle(), 1);
        // Same type: the box is reused, no new allocation recorded.
        let b2 = slab.make(vec![9u32], 4);
        assert_eq!(slab.allocated(), 1);
        assert_eq!(slab.idle(), 0);
        assert_eq!(b2.downcast::<Vec<u32>>(), vec![9]);
        // Different type: fresh allocation, independent free list.
        let s = slab.make(String::from("x"), 1);
        assert_eq!(slab.allocated(), 2);
        let _: String = slab.recycle(s);
    }

    #[test]
    fn slab_made_buffers_keep_diagnostics() {
        let slab = BufferSlab::new();
        let b = slab.make(1u32, 4);
        let _: u32 = slab.recycle(b);
        let b = slab.make(2u32, 8);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.recycle_ctx::<String>(b, "M filter input")
        }))
        .expect_err("mismatched recycle must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("M filter input"), "missing context: {msg}");
        assert!(msg.contains("u32"), "missing actual type: {msg}");
        assert!(msg.contains("8 wire bytes"), "missing wire size: {msg}");
    }

    #[test]
    fn replicable_buffers_clone_through_the_slab() {
        let slab = BufferSlab::new();
        let b = slab.make_replicable(vec![1u32, 2, 3], 12);
        assert!(b.is_replicable());
        let r = b.replicate(&slab).expect("replicable");
        assert_eq!(r.wire_bytes(), 12);
        assert!(r.is_replicable(), "replicas can themselves replicate");
        let rr = r.replicate(&slab).expect("replica of replica");
        assert_eq!(rr.downcast::<Vec<u32>>(), vec![1, 2, 3]);
        assert_eq!(r.downcast::<Vec<u32>>(), vec![1, 2, 3]);
        assert_eq!(b.downcast::<Vec<u32>>(), vec![1, 2, 3]);
        // Plain buffers stay non-replicable.
        let p = slab.make(5u64, 8);
        assert!(!p.is_replicable());
        assert!(p.replicate(&slab).is_none());
    }

    #[test]
    fn repool_recycles_untyped_boxes() {
        let slab = BufferSlab::new();
        let b = slab.make(vec![1u8, 2], 2);
        assert_eq!(slab.allocated(), 1);
        slab.repool(b);
        assert_eq!(slab.idle(), 1);
        // The erased box feeds the next make of the same payload type.
        let b2 = slab.make(vec![9u8], 1);
        assert_eq!(slab.allocated(), 1, "repooled box must be reused");
        assert_eq!(b2.downcast::<Vec<u8>>(), vec![9]);
    }

    #[test]
    fn replicas_draw_boxes_from_the_free_list() {
        let slab = BufferSlab::new();
        let spare_a = slab.make_replicable(0u64, 8);
        let spare_b = slab.make_replicable(0u64, 8);
        slab.repool(spare_a);
        slab.repool(spare_b);
        let b = slab.make_replicable(7u64, 8);
        let baseline = slab.allocated();
        let r = b.replicate(&slab).expect("replicable");
        assert_eq!(
            slab.allocated(),
            baseline,
            "replica must reuse the pooled box"
        );
        assert_eq!(r.downcast::<u64>(), 7);
    }

    #[test]
    fn slab_clones_share_free_lists() {
        let slab = BufferSlab::new();
        let clone = slab.clone();
        let b = slab.make(7i64, 8);
        let _: i64 = clone.recycle(b);
        assert_eq!(slab.idle(), 1);
        let _ = clone.make(8i64, 8);
        assert_eq!(slab.allocated(), 1, "clone must reuse the shared box");
    }

    /// Test-side stand-in for the context's spill ladder: encode a frame
    /// (`checksum` framing optional), park it, return the frame bytes.
    fn spill(b: &mut DataBuffer, ring: &Arc<SpillRing>, checksum: bool) -> u64 {
        match b.spill_frame(checksum) {
            Some(frame) => {
                let t = ring.spill(&frame).expect("ring spill");
                b.park(ring.clone(), t);
                frame.len() as u64
            }
            None => 0,
        }
    }

    /// The inert tamper closure (fault-free fault-in).
    fn no_tamper(_: &mut Vec<u8>) {}

    #[test]
    fn spillable_buffers_roundtrip_through_the_ring() {
        let slab = BufferSlab::new();
        let ring = SpillRing::create().unwrap();
        let data: Vec<u8> = (0..64).map(|i| i * 3).collect();
        let mut b = slab.make_spillable(data.clone(), 64);
        assert!(b.is_spillable());
        assert!(!b.is_spilled());

        let wrote = spill(&mut b, &ring, false);
        assert_eq!(wrote, 64);
        assert!(b.is_spilled());
        assert!(b.peek::<Vec<u8>>().is_none(), "payload left memory");
        assert_eq!(b.wire_bytes(), 64, "wire size survives the spill");

        let read = b.fault_in(&slab, false, &no_tamper).unwrap();
        assert_eq!(read, 64);
        assert!(!b.is_spilled());
        assert!(b.is_spillable(), "faulted buffers can spill again");
        assert!(b.is_replicable(), "faulted buffers keep their replicator");
        assert_eq!(b.downcast::<Vec<u8>>(), data, "bit-identical round trip");
        assert_eq!((ring.spills(), ring.faults()), (1, 1));
    }

    #[test]
    fn checksummed_frames_roundtrip_and_detect_tampering() {
        let slab = BufferSlab::new();
        let ring = SpillRing::create().unwrap();
        let data: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        let mut b = slab.make_spillable(data.clone(), 100);
        let wrote = spill(&mut b, &ring, true);
        assert_eq!(wrote, 100 + 8, "sealed frame carries the trailer");
        let read = b.fault_in(&slab, true, &no_tamper).unwrap();
        assert_eq!(read, 100 + 8);
        assert_eq!(b.downcast::<Vec<u8>>(), data, "checksum costs no bits");

        // A flipped bit under the trailer is detected, the payload is
        // tombstoned, and the slot does not double-free.
        let mut c = slab.make_spillable(data.clone(), 100);
        spill(&mut c, &ring, true);
        let err = c
            .fault_in(&slab, true, &|frame| frame[13] ^= 0x20)
            .expect_err("tampered frame must fail verification");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("checksum mismatch"),
            "diagnostic names the mismatch: {err}"
        );
        assert!(!c.is_spilled(), "lost payload is tombstoned, not parked");
        assert!(!c.discard_spilled(), "discard after loss is inert");
    }

    #[test]
    fn spill_is_a_noop_on_plain_and_already_spilled_buffers() {
        let slab = BufferSlab::new();
        let ring = SpillRing::create().unwrap();
        let plain = slab.make(vec![1u8, 2], 2);
        assert!(plain.spill_frame(false).is_none());
        assert!(!plain.is_spilled());

        let mut b = slab.make_spillable(vec![5u8; 16], 16);
        assert_eq!(spill(&mut b, &ring, false), 16);
        assert!(b.spill_frame(false).is_none(), "second spill is a no-op");
        assert_eq!(ring.spills(), 1);
        // fault_in on a resident buffer is equally inert.
        let mut resident = slab.make_spillable(vec![7u8; 8], 8);
        assert_eq!(resident.fault_in(&slab, false, &no_tamper).unwrap(), 0);
    }

    #[test]
    fn replicas_of_spillable_buffers_are_spillable() {
        let slab = BufferSlab::new();
        let ring = SpillRing::create().unwrap();
        let b = slab.make_spillable(vec![9u8; 32], 32);
        let mut r = b.replicate(&slab).expect("spillable implies replicable");
        assert!(r.is_spillable());
        assert_eq!(spill(&mut r, &ring, false), 32);
        assert_eq!(r.fault_in(&slab, false, &no_tamper).unwrap(), 32);
        assert_eq!(r.downcast::<Vec<u8>>(), vec![9u8; 32]);
    }

    #[test]
    fn spilled_tickets_can_be_discarded_unread() {
        let slab = BufferSlab::new();
        let ring = SpillRing::create().unwrap();
        let mut b = slab.make_spillable(vec![3u8; 48], 48);
        spill(&mut b, &ring, false);
        assert!(b.discard_spilled(), "spilled buffer discards its slot");
        assert_eq!(ring.faults(), 0, "discard skips the read");
        // The freed slot is immediately reusable.
        let mut c = slab.make_spillable(vec![4u8; 48], 48);
        spill(&mut c, &ring, false);
        assert_eq!(ring.frontier_bytes(), 48, "slot reused, no growth");
    }

    #[test]
    fn mismatch_message_names_both_types_and_wire_size() {
        let b = DataBuffer::new(7u32, 4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.downcast_ctx::<String>("Ra filter input")
        }))
        .expect_err("mismatched downcast must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("Ra filter input"), "missing context: {msg}");
        assert!(
            msg.contains("alloc::string::String"),
            "missing expected type: {msg}"
        );
        assert!(msg.contains("u32"), "missing actual type: {msg}");
        assert!(msg.contains("4 wire bytes"), "missing wire size: {msg}");
    }
}
