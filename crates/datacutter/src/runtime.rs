//! Instantiates an [`AppGraph`] on a [`Topology`] and executes one unit of
//! work: spawns every transparent filter copy as an emulated process, wires
//! logical streams through per-copy-set shared queues, runs per-copy outbox
//! senders (so communication overlaps computation) and per-copy-set ack
//! couriers (so demand-driven acknowledgments travel the reverse network
//! path), then runs the simulation to completion and harvests metrics.
//!
//! End-of-work markers flow in-band: when a producer copy finishes its
//! work cycle, an EOW marker is broadcast to every consumer copy set; once
//! a copy set has seen the marker from every producer copy, each consumer
//! copy's next read returns `None`. Multi-UOW runs repeat the cycle with a
//! global barrier in between.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use hetsim::{DeadlineRecv, Env, SimDuration, SimTime, Simulation, Topology};
use parking_lot::Mutex;

use crate::buffer::{ACK_WIRE_BYTES, EOW_WIRE_BYTES};
use crate::context::{Envelope, FilterCtx, InputPort, OutMsg, OutputPort, UowGate};
use crate::fault::{abort_run, ErrorCell, FaultCtl, FaultOptions, KilledMarker, RunError};
use crate::filter::CopyInfo;
use crate::graph::{AppGraph, FilterId};
use crate::metrics::{
    CopyCell, CopyCounters, CopyReport, CopySetCell, FaultReport, RunReport, StreamReport,
};
use crate::policy::{AckHandle, CopySetInfo, WriterState};

/// Capacity of each per-copy outbox (models the kernel socket buffer that
/// lets a filter keep computing while a previous buffer is on the wire).
const OUTBOX_CAPACITY: usize = 2;

/// Capacity of ack courier queues; effectively unbounded so consumers never
/// block on acknowledging.
const COURIER_CAPACITY: usize = 1 << 16;

/// Back-off before re-sending a message the fault plan dropped.
const RETRANSMIT_DELAY: SimDuration = SimDuration::from_millis(1);

/// Execute one unit of work of `graph` on `topo`. Equivalent to
/// [`run_app_uows`] with a single cycle.
pub fn run_app(topo: &Topology, graph: AppGraph) -> Result<RunReport, RunError> {
    run_app_full(topo, graph, 1, None, None, |_| {})
}

/// Execute `uows` consecutive units of work. Every filter copy runs the
/// full `init` → `process` → `finalize` cycle once per UOW (selecting its
/// work via [`FilterCtx::uow`]); end-of-work markers flow in-band on the
/// streams, and a global barrier separates cycles (the next UOW starts
/// only after every copy finished the previous one, like the paper's
/// per-query execution).
pub fn run_app_uows(topo: &Topology, graph: AppGraph, uows: u32) -> Result<RunReport, RunError> {
    run_app_full(topo, graph, uows, None, None, |_| {})
}

/// Like [`run_app_uows`], recording per-copy compute and read-wait spans
/// into `trace` for timeline inspection.
pub fn run_app_traced(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    trace: hetsim::Trace,
) -> Result<RunReport, RunError> {
    run_app_full(topo, graph, uows, Some(trace), None, |_| {})
}

/// Like [`run_app_uows`], additionally letting the caller spawn auxiliary
/// processes into the pipeline's simulation before it starts — e.g. a
/// [`hetsim::spawn_load_generator`] storming a host *while the pipeline
/// runs*, the "varying resource availability" scenario of the paper.
///
/// Note: the run ends when every process — including auxiliaries — has
/// finished, so an auxiliary outliving the pipeline extends the reported
/// `elapsed`.
pub fn run_app_with(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    setup: impl FnOnce(&mut Simulation),
) -> Result<RunReport, RunError> {
    run_app_full(topo, graph, uows, None, None, setup)
}

/// Like [`run_app_uows`], injecting the faults scheduled in `opts` and
/// running the recovery machinery: liveness-timeout death detection,
/// writer-side eviction of dead consumer hosts, end-of-work accounting
/// that tolerates dead producer copies, and replay of unacknowledged
/// demand-driven buffers from dead copy sets to survivors. The returned
/// report's [`RunReport::faults`] records what was injected and repaired.
///
/// Two caveats on the reported `elapsed` under a plan with crashes: a
/// crash scheduled after the pipeline naturally finishes extends the run
/// to roughly the crash time (the reaper waits for it), and even a
/// triggered crash adds up to one liveness-timeout of teardown.
pub fn run_app_faulted(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    opts: FaultOptions,
) -> Result<RunReport, RunError> {
    run_app_full(topo, graph, uows, None, Some(opts), |_| {})
}

/// Salvages the copy-set queue of a host scheduled to crash: waits
/// (without consuming) until the crash, then drains the queue for the
/// rest of the run, replaying demand-driven buffers to surviving copy
/// sets and tallying unrecoverable ones as lost.
struct Reaper {
    ctl: Arc<FaultCtl>,
    errors: ErrorCell,
    rx: hetsim::Receiver<Envelope>,
    /// Replay targets: `(copyset_idx, sender)` for every set on the stream
    /// with *no* scheduled death. Holding senders keeps a channel open, so
    /// the reaper must not hold one to its own queue (it would never see
    /// it close) nor to another doomed set's (two reapers would keep each
    /// other alive); sets that die later just never receive replays.
    survivors: Vec<(usize, hetsim::Sender<Envelope>)>,
    sets: Vec<CopySetInfo>,
    t_death: SimTime,
    topo: Topology,
    stream: String,
    /// The dead set's own end-of-work gate: the reaper advances its cycle
    /// as salvage proceeds so live peer sets know when no more replays
    /// for a given UOW can arrive (see `FilterCtx::replays_settled`).
    gate: Arc<Mutex<UowGate>>,
    uows: u32,
}

impl Reaper {
    fn run(self, env: Env) {
        let tick = self.ctl.timeout;
        // Phase 1: wait for the crash without consuming anything the live
        // consumers should get; exit early if the stream drains and closes
        // first (crash scheduled past the end of the run).
        loop {
            let now = env.now();
            if now >= self.t_death {
                break;
            }
            if self.rx.is_closed() && self.rx.is_empty() {
                return;
            }
            let tick_end = now + tick;
            let next = if self.t_death < tick_end {
                self.t_death
            } else {
                tick_end
            };
            env.delay(next - now);
        }
        // Phase 2: the set's consumers are dead (they stop dequeuing at
        // the crash instant); everything still in — or still arriving on —
        // this queue is ours to salvage, until every producer-side sender
        // hangs up.
        loop {
            self.advance_gate(&env);
            let deadline = env.now() + tick;
            match self.rx.recv_deadline(&env, deadline) {
                DeadlineRecv::Closed => return,
                DeadlineRecv::TimedOut => continue,
                DeadlineRecv::Item(envelope) => self.salvage(&env, envelope),
            }
        }
    }

    /// Advance the dead set's gate through every end-of-work cycle whose
    /// producer markers have all been salvaged (dead producers excused).
    /// Because each producer's marker trails all of its data in the FIFO
    /// queue, a cycle counted here has had every salvageable buffer
    /// already forwarded to the survivors.
    fn advance_gate(&self, env: &Env) {
        let now = env.now();
        let mut g = self.gate.lock();
        while g.cycle() < self.uows {
            let cycle = g.cycle();
            if g.try_fire(cycle, Some(&self.ctl), now).is_none() {
                break;
            }
        }
    }

    fn salvage(&self, env: &Env, envelope: Envelope) {
        match envelope {
            Envelope::Data {
                buf,
                ack: Some(ack),
            } => {
                let alive: Vec<usize> = self.survivors.iter().map(|&(i, _)| i).collect();
                match ack.state.reroute(env, ack.copyset_idx, &alive) {
                    Some(new_idx) => {
                        // Replay: charge the retransmission from the
                        // producer to the surviving host, then re-enqueue
                        // with the ack handle re-addressed.
                        self.topo.transfer(
                            env,
                            ack.state.producer_host(),
                            self.sets[new_idx].host,
                            buf.transport_bytes(),
                        );
                        let bytes = buf.wire_bytes();
                        let replay = Envelope::Data {
                            buf,
                            ack: Some(AckHandle {
                                state: ack.state.clone(),
                                copyset_idx: new_idx,
                            }),
                        };
                        let tx = self
                            .survivors
                            .iter()
                            .find(|&&(i, _)| i == new_idx)
                            .map(|(_, tx)| tx)
                            .expect("reroute only picks from the survivor list");
                        if tx.send(env, replay).is_ok() {
                            let mut t = self.ctl.tallies.lock();
                            t.buffers_replayed += 1;
                            t.bytes_replayed += bytes;
                        } else {
                            self.lose(bytes);
                        }
                    }
                    None => self.lose(buf.wire_bytes()),
                }
            }
            // No ack handle (RR/WRR or content-routed `write_to`): the
            // producer's routing decision cannot be replayed safely.
            Envelope::Data { buf, ack: None } => self.lose(buf.wire_bytes()),
            // A producer's end-of-work marker: no consumer will act on it,
            // but it proves all of that producer's data for the cycle has
            // been salvaged — record it so the dead gate can advance.
            Envelope::Eow { producer } => {
                self.gate.lock().mark(producer);
                self.advance_gate(env);
            }
            Envelope::UowDone => {}
        }
    }

    fn lose(&self, bytes: u64) {
        {
            let mut t = self.ctl.tallies.lock();
            t.buffers_lost += 1;
            t.bytes_lost += bytes;
        }
        if !self.ctl.allow_degraded {
            abort_run(
                &self.errors,
                RunError::NoSurvivingConsumers {
                    stream: self.stream.clone(),
                },
            );
        }
    }
}

/// Keep the process-wide panic hook from printing "thread panicked"
/// noise for the runtime's two *sentinel* panics — the [`KilledMarker`]
/// unwinding a crashed filter copy (caught at the copy's spawn wrapper)
/// and the [`ABORT_MSG`] abort after a structured [`RunError`] was
/// recorded (mapped back to the cell's contents). Real panics still
/// reach the previous hook untouched.
fn silence_sentinel_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let sentinel = payload.is::<KilledMarker>()
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s == crate::fault::ABORT_MSG);
            if !sentinel {
                prev(info);
            }
        }));
    });
}

fn run_app_full(
    topo: &Topology,
    graph: AppGraph,
    uows: u32,
    trace: Option<hetsim::Trace>,
    faults: Option<FaultOptions>,
    setup: impl FnOnce(&mut Simulation),
) -> Result<RunReport, RunError> {
    assert!(uows >= 1, "at least one unit of work");
    silence_sentinel_panics();
    let graph = Arc::new(graph);
    let mut sim = Simulation::new();
    setup(&mut sim);
    let waker = sim.waker();

    let error_cell: ErrorCell = Arc::new(Mutex::new(None));
    let fault_ctl: Option<Arc<FaultCtl>> = faults.as_ref().map(FaultCtl::new);
    if let Some(ctl) = &fault_ctl {
        // Spawns the NIC-degradation drivers; crashes, stalls and drops
        // are pure time-indexed queries consulted by the machinery below.
        ctl.plan.install(&mut sim, topo);
    }

    // ---- per-stream wiring ------------------------------------------------
    struct StreamRt {
        sets: Vec<CopySetInfo>,
        data_txs: Vec<hetsim::Sender<Envelope>>,
        data_rxs: Vec<hetsim::Receiver<Envelope>>,
        courier_txs: Vec<hetsim::Sender<AckHandle>>,
        gates: Vec<Arc<Mutex<UowGate>>>,
        cells: Vec<CopySetCell>,
    }

    let mut streams_rt: Vec<StreamRt> = Vec::with_capacity(graph.streams.len());
    for spec in &graph.streams {
        let consumer = &graph.filters[spec.to.0 as usize];
        // Producer copy hosts in copy-index order: the end-of-work gate
        // tracks markers per producer copy so dead producers can be
        // excused without under- or over-counting.
        let producer_hosts: Vec<hetsim::HostId> = graph.filters[spec.from.0 as usize]
            .placement
            .per_host
            .iter()
            .flat_map(|&(h, n)| (0..n).map(move |_| h))
            .collect();
        let mut sets = Vec::new();
        let mut data_txs = Vec::new();
        let mut data_rxs = Vec::new();
        let mut courier_txs = Vec::new();
        let mut gates = Vec::new();
        let mut cells = Vec::new();
        for &(host, copies) in &consumer.placement.per_host {
            sets.push(CopySetInfo { host, copies });
            // Room for data plus the UowDone tokens injected at the end of
            // each cycle.
            let cap = spec.queue_capacity * copies as usize + copies as usize;
            let (tx, rx) = hetsim::channel(waker.clone(), cap.max(1));
            data_txs.push(tx);
            data_rxs.push(rx);
            gates.push(Arc::new(Mutex::new(UowGate::new(
                producer_hosts.clone(),
                copies,
            ))));
            let (ctx_tx, ctx_rx) = hetsim::channel::<AckHandle>(waker.clone(), COURIER_CAPACITY);
            courier_txs.push(ctx_tx);
            cells.push(CopySetCell::default());
            // Ack courier for this copy set: pays the reverse network path
            // for each acknowledgment, then credits the producer's window.
            let topo2 = topo.clone();
            sim.spawn(
                format!("courier:{}@h{}", spec.name, host.0),
                move |env: Env| {
                    while let Some(ack) = ctx_rx.recv(&env) {
                        topo2.transfer(&env, host, ack.state.producer_host(), ACK_WIRE_BYTES);
                        ack.state.ack(&env, ack.copyset_idx);
                    }
                },
            );
        }
        // One reaper per copy set whose host is scheduled to crash. The
        // reaper's receiver clone keeps the dead queue open so buffers
        // sent before writers notice the death are salvaged, not dropped.
        if let Some(ctl) = fault_ctl.as_ref().filter(|c| c.plan.has_crashes()) {
            for (set_idx, set) in sets.iter().enumerate() {
                let Some(t_death) = ctl.plan.host_death(set.host) else {
                    continue;
                };
                let reaper = Reaper {
                    ctl: ctl.clone(),
                    errors: error_cell.clone(),
                    rx: data_rxs[set_idx].clone(),
                    survivors: sets
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| ctl.plan.host_death(s.host).is_none())
                        .map(|(i, _)| (i, data_txs[i].clone()))
                        .collect(),
                    sets: sets.clone(),
                    t_death,
                    topo: topo.clone(),
                    stream: spec.name.clone(),
                    gate: gates[set_idx].clone(),
                    uows,
                };
                sim.spawn(
                    format!("reaper:{}@h{}", spec.name, set.host.0),
                    move |env: Env| reaper.run(env),
                );
            }
        }
        streams_rt.push(StreamRt {
            sets,
            data_txs,
            data_rxs,
            courier_txs,
            gates,
            cells,
        });
    }

    // ---- per-copy spawning ------------------------------------------------
    let all_copies: u32 = graph
        .filters
        .iter()
        .map(|f| f.placement.total_copies())
        .sum();
    let barrier = hetsim::Barrier::new(all_copies as usize);
    let uow_boundaries: Arc<Mutex<Vec<SimTime>>> = Arc::new(Mutex::new(Vec::new()));

    let mut copy_cells: Vec<(FilterId, String, usize, hetsim::HostId, CopyCell)> = Vec::new();
    for (fidx, fspec) in graph.filters.iter().enumerate() {
        let fid = FilterId(fidx as u32);
        let input_ids = graph.inputs_of(fid);
        let output_ids = graph.outputs_of(fid);
        let total_copies = fspec.placement.total_copies() as usize;

        let mut copy_index = 0usize;
        for (set_idx, &(host, copies)) in fspec.placement.per_host.iter().enumerate() {
            for _k in 0..copies {
                let cell: CopyCell = Arc::new(Mutex::new(CopyCounters::default()));
                copy_cells.push((fid, fspec.name.clone(), copy_index, host, cell.clone()));

                // Input ports: this copy shares its host's copy-set queue.
                let mut inputs = Vec::new();
                for &sid in &input_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    inputs.push(InputPort {
                        rx: rt.data_rxs[set_idx].clone(),
                        inject_tx: rt.data_txs[set_idx].clone(),
                        courier_tx: rt.courier_txs[set_idx].clone(),
                        gate: rt.gates[set_idx].clone(),
                        peer_gates: rt
                            .sets
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != set_idx)
                            .map(|(i, s)| (s.host, rt.gates[i].clone()))
                            .collect(),
                        copyset_counters: rt.cells[set_idx].clone(),
                    });
                }

                // Output ports: per-copy writer state + outbox sender.
                let mut outputs = Vec::new();
                for &sid in &output_ids {
                    let rt = &streams_rt[sid.0 as usize];
                    let spec = &graph.streams[sid.0 as usize];
                    let (outbox_tx, outbox_rx) =
                        hetsim::channel::<OutMsg>(waker.clone(), OUTBOX_CAPACITY);
                    let targets = rt.data_txs.clone();
                    let sets = rt.sets.clone();
                    let topo2 = topo.clone();
                    let sender_ctl = fault_ctl.clone();
                    // Seeded-drop key: unique per (stream, producer copy).
                    let drop_key = ((sid.0 as u64) << 32) | copy_index as u64;
                    sim.spawn(
                        format!("sender:{}#{}@h{}", spec.name, copy_index, host.0),
                        move |env: Env| {
                            let mut seq: u64 = 0;
                            while let Some(msg) = outbox_rx.recv(&env) {
                                match msg {
                                    OutMsg::Data {
                                        copyset_idx,
                                        envelope,
                                    } => {
                                        let bytes = match &envelope {
                                            Envelope::Data { buf, .. } => buf.transport_bytes(),
                                            _ => EOW_WIRE_BYTES,
                                        };
                                        let to = sets[copyset_idx].host;
                                        if let Some(ctl) =
                                            sender_ctl.as_ref().filter(|c| c.plan.has_drops())
                                        {
                                            if to != host {
                                                // Each dropped transmission
                                                // still occupied the wire: pay
                                                // for it, wait out the
                                                // retransmit timer, re-roll.
                                                let mut attempt = 0u64;
                                                while ctl.plan.should_drop(drop_key, seq, attempt) {
                                                    topo2.transfer(&env, host, to, bytes);
                                                    env.delay(RETRANSMIT_DELAY);
                                                    ctl.tallies.lock().retransmits += 1;
                                                    attempt += 1;
                                                }
                                            }
                                        }
                                        seq += 1;
                                        topo2.transfer(&env, host, to, bytes);
                                        if targets[copyset_idx].send(&env, envelope).is_err() {
                                            // Consumer gone: late buffer at
                                            // teardown; drop it.
                                            break;
                                        }
                                    }
                                    OutMsg::Eow => {
                                        for (i, tx) in targets.iter().enumerate() {
                                            topo2.transfer(
                                                &env,
                                                host,
                                                sets[i].host,
                                                EOW_WIRE_BYTES,
                                            );
                                            let _ = tx.send(
                                                &env,
                                                Envelope::Eow {
                                                    producer: copy_index,
                                                },
                                            );
                                        }
                                    }
                                }
                            }
                        },
                    );
                    outputs.push(OutputPort {
                        writer: WriterState::new_faulted(
                            spec.policy,
                            &rt.sets,
                            host,
                            fault_ctl.clone(),
                        ),
                        outbox_tx,
                        targets: rt.sets.len(),
                    });
                }

                let info = CopyInfo {
                    copy_index,
                    total_copies,
                    copyset_index: set_idx,
                    total_copysets: fspec.placement.per_host.len(),
                    host,
                };
                let topo2 = topo.clone();
                let graph2 = graph.clone();
                let barrier2 = barrier.clone();
                let barrier_out = barrier.clone();
                let boundaries2 = uow_boundaries.clone();
                let copy_name = format!("{}#{}@h{}", fspec.name, copy_index, host.0);
                let trace2 = trace.clone().map(|t| (t, copy_name.clone()));
                let fname = fspec.name.clone();
                let copy_ctl = fault_ctl.clone();
                let kill_ctl = fault_ctl.clone();
                let copy_errors = error_cell.clone();
                let my_death = fault_ctl.as_ref().and_then(|c| c.plan.host_death(host));
                sim.spawn(copy_name, move |env: Env| {
                    let env_out = env.clone();
                    let body = AssertUnwindSafe(move || {
                        let mut filter = (graph2.filters[fid.0 as usize].factory)(info);
                        let mut ctx = FilterCtx {
                            env,
                            topo: topo2,
                            info,
                            uow: 0,
                            inputs,
                            outputs,
                            metrics: cell,
                            trace: trace2,
                            faults: copy_ctl,
                            my_death,
                        };
                        for uow in 0..uows {
                            ctx.uow = uow;
                            filter.init(&mut ctx);
                            if let Err(e) = filter.process(&mut ctx) {
                                abort_run(
                                    &copy_errors,
                                    RunError::Filter {
                                        filter: fname.clone(),
                                        copy: info.copy_index,
                                        host,
                                        uow,
                                        message: e.to_string(),
                                    },
                                );
                            }
                            filter.finalize(&mut ctx);
                            ctx.emit_eow();
                            if uow + 1 < uows {
                                // Work cycles are separated by a global
                                // barrier, like the paper's per-query runs.
                                if barrier2.wait(ctx.env()) {
                                    boundaries2.lock().push(ctx.env().now());
                                }
                            }
                        }
                    });
                    if let Err(payload) = std::panic::catch_unwind(body) {
                        if payload.is::<KilledMarker>() {
                            // This copy's host crashed. Tally the death and
                            // withdraw from the inter-UOW barrier so the
                            // surviving copies are not stranded.
                            if let Some(ctl) = &kill_ctl {
                                ctl.tallies.lock().copies_killed += 1;
                            }
                            barrier_out.leave(&env_out);
                        } else {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
                copy_index += 1;
            }
        }
    }

    // Drop the wiring originals so channels close when the last real user
    // (sender process / filter copy) finishes.
    let harvest: Vec<(String, Vec<(hetsim::HostId, CopySetCell)>)> = streams_rt
        .iter()
        .map(|rt| {
            (
                String::new(),
                rt.sets
                    .iter()
                    .map(|s| s.host)
                    .zip(rt.cells.iter().cloned())
                    .collect(),
            )
        })
        .collect();
    drop(streams_rt);

    let stats = match sim.run() {
        Ok(stats) => stats,
        Err(e) => {
            // A process that recorded a structured error aborts the run
            // with a sentinel panic; surface the recorded error instead of
            // the raw simulation failure.
            if let Some(recorded) = error_cell.lock().take() {
                return Err(recorded);
            }
            return Err(RunError::Sim(e));
        }
    };

    let copies = copy_cells
        .into_iter()
        .map(|(filter, filter_name, copy_index, host, cell)| CopyReport {
            filter,
            filter_name,
            copy_index,
            host,
            counters: cell.lock().clone(),
        })
        .collect();

    let streams = harvest
        .into_iter()
        .enumerate()
        .map(|(i, (_, sets))| StreamReport {
            stream: crate::graph::StreamId(i as u32),
            stream_name: graph.streams[i].name.clone(),
            copysets: sets
                .into_iter()
                .map(|(h, c)| (h, c.lock().clone()))
                .collect(),
        })
        .collect();

    let mut boundaries = std::mem::take(&mut *uow_boundaries.lock());
    boundaries.sort_unstable();

    let faults_report = match &fault_ctl {
        Some(ctl) => {
            let t = ctl.tallies.lock();
            FaultReport {
                injected: ctl.plan.describe(),
                copies_killed: t.copies_killed,
                buffers_replayed: t.buffers_replayed,
                bytes_replayed: t.bytes_replayed,
                buffers_lost: t.buffers_lost,
                bytes_lost: t.bytes_lost,
                retransmits: t.retransmits,
                degraded: t.buffers_lost > 0,
            }
        }
        None => FaultReport::default(),
    };

    Ok(RunReport {
        elapsed: stats.end_time - SimTime::ZERO,
        events: stats.events,
        uow_boundaries: boundaries,
        copies,
        streams,
        faults: faults_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DataBuffer;
    use crate::filter::{Filter, FilterError};
    use crate::graph::{GraphBuilder, Placement};
    use crate::policy::WritePolicy;
    use hetsim::{ClusterSpec, HostId, HostSpec, SimDuration, TopologyBuilder};

    fn flat_topology(n: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster(ClusterSpec {
            name: "c".into(),
            nic_bandwidth_bps: 100.0e6,
            nic_latency: SimDuration::from_micros(50),
        });
        for i in 0..n {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1,
                    speed: 1.0,
                    mem_mb: 512,
                    disks: 1,
                    disk_bandwidth_bps: 50.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            );
        }
        b.build()
    }

    struct Source {
        n: u32,
    }
    impl Filter for Source {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            for i in 0..self.n {
                ctx.compute(SimDuration::from_millis(1));
                ctx.write(0, DataBuffer::new(i, 1024));
            }
            Ok(())
        }
    }

    struct Doubler {
        work: SimDuration,
    }
    impl Filter for Doubler {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                let v = b.downcast::<u32>();
                ctx.compute(self.work);
                ctx.write(0, DataBuffer::new(v * 2, 1024));
            }
            Ok(())
        }
    }

    struct Collect {
        out: Arc<Mutex<Vec<u32>>>,
    }
    impl Filter for Collect {
        fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
            while let Some(b) = ctx.read(0) {
                self.out.lock().push(b.downcast::<u32>());
            }
            Ok(())
        }
    }

    fn pipeline(
        topo: &Topology,
        policy: WritePolicy,
        n_items: u32,
        worker_hosts: &[HostId],
        worker_work_ms: u64,
    ) -> (RunReport, Vec<u32>) {
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), move |_| Source {
            n: n_items,
        });
        let work = SimDuration::from_millis(worker_work_ms);
        let dbl = g.add_filter("dbl", Placement::one_per_host(worker_hosts), move |_| {
            Doubler { work }
        });
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, dbl, policy);
        g.connect(dbl, snk, WritePolicy::RoundRobin);
        let report = run_app(topo, g.build()).unwrap();
        let v = out.lock().clone();
        (report, v)
    }

    #[test]
    fn linear_pipeline_delivers_everything() {
        let topo = flat_topology(3);
        let (report, mut got) = pipeline(
            &topo,
            WritePolicy::RoundRobin,
            20,
            &[HostId(1), HostId(2)],
            2,
        );
        got.sort_unstable();
        let want: Vec<u32> = (0..20).map(|i| i * 2).collect();
        assert_eq!(got, want);
        assert!(report.elapsed > SimDuration::ZERO);
        // Stream 0: 20 buffers, 10 per copy set under RR.
        let s = report.stream(crate::graph::StreamId(0));
        assert_eq!(s.total_buffers(), 20);
        for (_, c) in &s.copysets {
            assert_eq!(c.buffers_received, 10);
        }
    }

    #[test]
    fn wrr_respects_copy_weights() {
        let topo = flat_topology(3);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source {
            n: 30,
        });
        // Host1 gets 2 copies, host2 gets 1.
        let dbl = g.add_filter(
            "dbl",
            Placement {
                per_host: vec![(HostId(1), 2), (HostId(2), 1)],
            },
            |_| Doubler {
                work: SimDuration::from_millis(1),
            },
        );
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, dbl, WritePolicy::WeightedRoundRobin);
        g.connect(dbl, snk, WritePolicy::RoundRobin);
        let report = run_app(&topo, g.build()).unwrap();
        let s = report.stream(crate::graph::StreamId(0));
        assert_eq!(s.copysets[0].1.buffers_received, 20);
        assert_eq!(s.copysets[1].1.buffers_received, 10);
        assert_eq!(out.lock().len(), 30);
    }

    #[test]
    fn dd_shifts_load_away_from_slow_host() {
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster(ClusterSpec {
            name: "c".into(),
            nic_bandwidth_bps: 100.0e6,
            nic_latency: SimDuration::from_micros(50),
        });
        // Host 0: source+sink. Host 1: fast worker. Host 2: slow worker.
        for (i, speed) in [(0, 1.0f64), (1, 1.0), (2, 0.2)] {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1,
                    speed,
                    mem_mb: 512,
                    disks: 1,
                    disk_bandwidth_bps: 50.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            );
        }
        let topo = b.build();
        let (report, got) = pipeline(
            &topo,
            WritePolicy::demand_driven(),
            40,
            &[HostId(1), HostId(2)],
            4,
        );
        assert_eq!(got.len(), 40);
        let s = report.stream(crate::graph::StreamId(0));
        let fast = s.copysets[0].1.buffers_received;
        let slow = s.copysets[1].1.buffers_received;
        assert_eq!(fast + slow, 40);
        assert!(
            fast > slow * 2,
            "DD should favour the fast host: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn rr_vs_dd_completion_time_under_imbalance() {
        let mk = || {
            let mut b = TopologyBuilder::new();
            let c = b.add_cluster(ClusterSpec {
                name: "c".into(),
                nic_bandwidth_bps: 100.0e6,
                nic_latency: SimDuration::from_micros(50),
            });
            for (i, speed) in [(0, 1.0f64), (1, 1.0), (2, 0.25)] {
                b.add_host(
                    c,
                    HostSpec {
                        name: format!("h{i}"),
                        cores: 1,
                        speed,
                        mem_mb: 512,
                        disks: 1,
                        disk_bandwidth_bps: 50.0e6,
                        disk_seek: SimDuration::from_millis(5),
                    },
                );
            }
            b.build()
        };
        let topo = mk();
        let (rr, _) = pipeline(
            &topo,
            WritePolicy::RoundRobin,
            40,
            &[HostId(1), HostId(2)],
            4,
        );
        let topo = mk();
        let (dd, _) = pipeline(
            &topo,
            WritePolicy::demand_driven(),
            40,
            &[HostId(1), HostId(2)],
            4,
        );
        assert!(
            dd.elapsed < rr.elapsed,
            "DD ({}) should beat RR ({}) under heterogeneity",
            dd.elapsed,
            rr.elapsed
        );
    }

    #[test]
    fn copy_metrics_account_for_work() {
        let topo = flat_topology(3);
        let (report, _) = pipeline(
            &topo,
            WritePolicy::RoundRobin,
            10,
            &[HostId(1), HostId(2)],
            3,
        );
        let dbl = FilterId(1);
        // 10 buffers x 3 ms of work across copies.
        assert_eq!(report.filter_work(dbl).as_nanos(), 30_000_000);
        let copies = report.copies_of(dbl);
        assert_eq!(copies.len(), 2);
        let total_in: u64 = copies.iter().map(|c| c.counters.buffers_in).sum();
        assert_eq!(total_in, 10);
    }

    #[test]
    fn multiple_copies_share_one_copyset_queue() {
        let topo = flat_topology(2);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source {
            n: 24,
        });
        // 3 copies on one host: one copy set with demand-based sharing.
        let dbl = g.add_filter("dbl", Placement::on_host(HostId(1), 3), |_| Doubler {
            work: SimDuration::from_millis(2),
        });
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, dbl, WritePolicy::RoundRobin);
        g.connect(dbl, snk, WritePolicy::RoundRobin);
        let report = run_app(&topo, g.build()).unwrap();
        assert_eq!(out.lock().len(), 24);
        // All three copies did some of the work.
        for c in report.copies_of(FilterId(1)) {
            assert!(c.counters.buffers_in > 0, "idle copy {:?}", c.copy_index);
        }
        let _ = dbl;
        let _ = src;
        let _ = snk;
    }

    #[test]
    fn source_only_graph_runs() {
        let topo = flat_topology(1);
        let mut g = GraphBuilder::new();
        struct Quiet;
        impl Filter for Quiet {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                ctx.compute(SimDuration::from_millis(5));
                Ok(())
            }
        }
        g.add_filter("quiet", Placement::on_host(HostId(0), 1), |_| Quiet);
        let report = run_app(&topo, g.build()).unwrap();
        assert_eq!(report.elapsed.as_nanos(), 5_000_000);
    }

    #[test]
    fn filter_error_aborts_run() {
        let topo = flat_topology(1);
        let mut g = GraphBuilder::new();
        struct Bad;
        impl Filter for Bad {
            fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
                Err(FilterError("broken".into()))
            }
        }
        g.add_filter("bad", Placement::on_host(HostId(0), 1), |_| Bad);
        match run_app(&topo, g.build()) {
            Err(RunError::Filter {
                filter,
                copy,
                host,
                uow,
                message,
            }) => {
                assert_eq!(filter, "bad");
                assert_eq!(copy, 0);
                assert_eq!(host, HostId(0));
                assert_eq!(uow, 0);
                assert!(message.contains("broken"));
            }
            other => panic!("expected structured filter error, got {other:?}"),
        }
    }

    #[test]
    fn init_and_finalize_are_called() {
        let topo = flat_topology(1);
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        struct Lifecycle {
            log: Arc<Mutex<Vec<&'static str>>>,
        }
        impl Filter for Lifecycle {
            fn init(&mut self, _ctx: &mut FilterCtx) {
                self.log.lock().push("init");
            }
            fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
                self.log.lock().push("process");
                Ok(())
            }
            fn finalize(&mut self, _ctx: &mut FilterCtx) {
                self.log.lock().push("finalize");
            }
        }
        let mut g = GraphBuilder::new();
        let log2 = log.clone();
        g.add_filter("lc", Placement::on_host(HostId(0), 1), move |_| Lifecycle {
            log: log2.clone(),
        });
        run_app(&topo, g.build()).unwrap();
        assert_eq!(*log.lock(), vec!["init", "process", "finalize"]);
    }

    #[test]
    fn fan_out_filter_feeds_two_streams() {
        // One producer with two output ports feeding different consumers.
        let topo = flat_topology(3);
        struct Splitter;
        impl Filter for Splitter {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                assert_eq!(ctx.output_count(), 2);
                for i in 0..10u32 {
                    ctx.write((i % 2) as usize, DataBuffer::new(i, 64));
                }
                Ok(())
            }
        }
        let evens: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let odds: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let s = g.add_filter("split", Placement::on_host(HostId(0), 1), |_| Splitter);
        let e2 = evens.clone();
        let ce = g.add_filter("evens", Placement::on_host(HostId(1), 1), move |_| {
            Collect { out: e2.clone() }
        });
        let o2 = odds.clone();
        let co = g.add_filter("odds", Placement::on_host(HostId(2), 1), move |_| Collect {
            out: o2.clone(),
        });
        g.connect(s, ce, WritePolicy::RoundRobin); // port 0
        g.connect(s, co, WritePolicy::RoundRobin); // port 1
        run_app(&topo, g.build()).unwrap();
        assert_eq!(*evens.lock(), vec![0, 2, 4, 6, 8]);
        assert_eq!(*odds.lock(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fan_in_filter_reads_two_ports() {
        // Two producers into one consumer through separate input ports,
        // each with independent end-of-work.
        let topo = flat_topology(3);
        struct Fixed(u32, u32); // base, count
        impl Filter for Fixed {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                for i in 0..self.1 {
                    ctx.write(0, DataBuffer::new(self.0 + i, 64));
                }
                Ok(())
            }
        }
        struct Zip {
            out: Arc<Mutex<(Vec<u32>, Vec<u32>)>>,
        }
        impl Filter for Zip {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                assert_eq!(ctx.input_count(), 2);
                while let Some(b) = ctx.read(0) {
                    self.out.lock().0.push(b.downcast::<u32>());
                }
                while let Some(b) = ctx.read(1) {
                    self.out.lock().1.push(b.downcast::<u32>());
                }
                Ok(())
            }
        }
        let out: Arc<Mutex<(Vec<u32>, Vec<u32>)>> = Arc::default();
        let mut g = GraphBuilder::new();
        let a = g.add_filter("a", Placement::on_host(HostId(0), 1), |_| Fixed(100, 4));
        let b = g.add_filter("b", Placement::on_host(HostId(1), 1), |_| Fixed(200, 3));
        let o2 = out.clone();
        let z = g.add_filter("zip", Placement::on_host(HostId(2), 1), move |_| Zip {
            out: o2.clone(),
        });
        g.connect(a, z, WritePolicy::RoundRobin); // zip port 0
        g.connect(b, z, WritePolicy::RoundRobin); // zip port 1
        run_app(&topo, g.build()).unwrap();
        let v = out.lock().clone();
        assert_eq!(v.0, vec![100, 101, 102, 103]);
        assert_eq!(v.1, vec![200, 201, 202]);
    }

    #[test]
    fn traced_run_records_compute_and_wait_spans() {
        let topo = flat_topology(2);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| Source { n: 5 });
        let dbl = g.add_filter("dbl", Placement::on_host(HostId(1), 1), |_| Doubler {
            work: SimDuration::from_millis(2),
        });
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, dbl, WritePolicy::RoundRobin);
        g.connect(dbl, snk, WritePolicy::RoundRobin);
        let trace = hetsim::Trace::new();
        crate::runtime::run_app_traced(&topo, g.build(), 1, trace.clone()).unwrap();
        let busy = trace.busy_by_label();
        let labels: Vec<&str> = busy.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"compute"), "{labels:?}");
        assert!(labels.contains(&"read-wait"), "{labels:?}");
        // Doubler computed 5 x 2ms; source 5 x 1ms.
        let compute = busy.iter().find(|(l, _)| l == "compute").unwrap().1;
        assert!(compute.as_nanos() >= 15_000_000, "compute total {compute}");
        // Spans carry the copy identity.
        assert!(trace
            .timeline()
            .iter()
            .any(|s| s.detail.starts_with("dbl#0")));
    }

    #[test]
    fn write_to_targets_specific_copysets() {
        let topo = flat_topology(3);
        let out: Arc<Mutex<Vec<(hetsim::HostId, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        struct Router;
        impl Filter for Router {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                assert_eq!(ctx.consumer_copysets(0), 2);
                for i in 0..10u32 {
                    // Evens to set 0, odds to set 1.
                    ctx.write_to(0, (i % 2) as usize, DataBuffer::new(i, 64));
                }
                Ok(())
            }
        }
        struct Tagger {
            out: Arc<Mutex<Vec<(hetsim::HostId, u32)>>>,
        }
        impl Filter for Tagger {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                while let Some(b) = ctx.read(0) {
                    let host = ctx.host();
                    self.out.lock().push((host, b.downcast::<u32>()));
                }
                Ok(())
            }
        }
        let mut g = GraphBuilder::new();
        let r = g.add_filter("router", Placement::on_host(HostId(0), 1), |_| Router);
        let out2 = out.clone();
        let t = g.add_filter(
            "tagger",
            Placement::one_per_host(&[HostId(1), HostId(2)]),
            move |info| {
                // Copy-set identity is exposed to the factory.
                assert_eq!(info.total_copysets, 2);
                Tagger { out: out2.clone() }
            },
        );
        g.connect(r, t, WritePolicy::RoundRobin);
        run_app(&topo, g.build()).unwrap();
        let v = out.lock().clone();
        assert_eq!(v.len(), 10);
        for (host, val) in v {
            let expected = if val % 2 == 0 { HostId(1) } else { HostId(2) };
            assert_eq!(host, expected, "value {val} routed to wrong set");
        }
    }

    #[test]
    fn multi_uow_lifecycle_runs_per_cycle() {
        let topo = flat_topology(2);
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        struct Cycler {
            log: Arc<Mutex<Vec<String>>>,
        }
        impl Filter for Cycler {
            fn init(&mut self, ctx: &mut FilterCtx) {
                self.log.lock().push(format!("init{}", ctx.uow()));
            }
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                for i in 0..3u32 {
                    ctx.write(0, DataBuffer::new(ctx.uow() * 100 + i, 64));
                }
                Ok(())
            }
            fn finalize(&mut self, ctx: &mut FilterCtx) {
                self.log.lock().push(format!("fini{}", ctx.uow()));
            }
        }
        type UowLog = Arc<Mutex<Vec<(u32, Vec<u32>)>>>;
        let got: UowLog = Arc::new(Mutex::new(Vec::new()));
        struct PerUow {
            got: UowLog,
            current: Vec<u32>,
        }
        impl Filter for PerUow {
            fn init(&mut self, _ctx: &mut FilterCtx) {
                self.current.clear();
            }
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                while let Some(b) = ctx.read(0) {
                    self.current.push(b.downcast::<u32>());
                }
                Ok(())
            }
            fn finalize(&mut self, ctx: &mut FilterCtx) {
                self.got.lock().push((ctx.uow(), self.current.clone()));
            }
        }
        let mut g = GraphBuilder::new();
        let log2 = log.clone();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), move |_| Cycler {
            log: log2.clone(),
        });
        let got2 = got.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(1), 1), move |_| PerUow {
            got: got2.clone(),
            current: Vec::new(),
        });
        g.connect(src, snk, WritePolicy::RoundRobin);
        let report = run_app_uows(&topo, g.build(), 3).unwrap();

        // Lifecycle ran once per UOW on the source.
        let l = log.lock().clone();
        assert_eq!(
            l,
            vec!["init0", "fini0", "init1", "fini1", "init2", "fini2"]
        );
        // Each UOW's data stayed within its cycle.
        let v = got.lock().clone();
        assert_eq!(v.len(), 3);
        for (uow, items) in &v {
            let want: Vec<u32> = (0..3).map(|i| uow * 100 + i).collect();
            assert_eq!(items, &want, "uow {uow}");
        }
        // Two barrier boundaries, increasing, within the run.
        assert_eq!(report.uow_boundaries.len(), 2);
        assert!(report.uow_boundaries[0] < report.uow_boundaries[1]);
        assert_eq!(report.uow_elapsed().len(), 3);
        assert!(report.uow_elapsed().iter().all(|d| !d.is_zero()));
    }

    #[test]
    fn multi_uow_with_transparent_copies_is_complete() {
        // Copies + DD policy across 3 cycles: every item of every cycle is
        // delivered exactly once.
        let topo = flat_topology(3);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        struct UowSource;
        impl Filter for UowSource {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                for i in 0..12u32 {
                    ctx.compute(SimDuration::from_millis(1));
                    ctx.write(0, DataBuffer::new(ctx.uow() * 1000 + i, 256));
                }
                Ok(())
            }
        }
        let mut g = GraphBuilder::new();
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| UowSource);
        let dbl = g.add_filter(
            "dbl",
            Placement {
                per_host: vec![(HostId(1), 2), (HostId(2), 1)],
            },
            |_| Doubler {
                work: SimDuration::from_millis(2),
            },
        );
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(0), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, dbl, WritePolicy::demand_driven());
        g.connect(dbl, snk, WritePolicy::RoundRobin);
        run_app_uows(&topo, g.build(), 3).unwrap();
        let mut v = out.lock().clone();
        v.sort_unstable();
        let mut want: Vec<u32> = (0..3u32)
            .flat_map(|u| (0..12u32).map(move |i| (u * 1000 + i) * 2))
            .collect();
        want.sort_unstable();
        assert_eq!(v, want);
        let _ = (src, dbl, snk);
    }

    #[test]
    fn read_wait_is_recorded_for_starved_consumer() {
        let topo = flat_topology(2);
        let out: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut g = GraphBuilder::new();
        struct SlowSource;
        impl Filter for SlowSource {
            fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
                for i in 0..5u32 {
                    ctx.compute(SimDuration::from_millis(20));
                    ctx.write(0, DataBuffer::new(i, 100));
                }
                Ok(())
            }
        }
        let src = g.add_filter("src", Placement::on_host(HostId(0), 1), |_| SlowSource);
        let out2 = out.clone();
        let snk = g.add_filter("snk", Placement::on_host(HostId(1), 1), move |_| Collect {
            out: out2.clone(),
        });
        g.connect(src, snk, WritePolicy::RoundRobin);
        let report = run_app(&topo, g.build()).unwrap();
        let snk_copy = &report.copies_of(snk)[0];
        assert!(
            snk_copy.counters.read_wait.as_nanos() > 50_000_000,
            "sink should wait ~100ms, got {}",
            snk_copy.counters.read_wait
        );
        let _ = src;
    }
}
