//! Application graphs: filters, their placement, and the streams that
//! connect them.
//!
//! The application developer decides (1) the decomposition into filters,
//! (2) the placement of filter copies on hosts, and (3) how many
//! transparent copies of each filter to run — the three degrees of freedom
//! the paper enumerates. A [`GraphBuilder`] captures all three plus the
//! writer policy per stream.

use hetsim::HostId;

use crate::filter::{CopyInfo, Filter, FilterFactory};
use crate::policy::WritePolicy;

/// Identifies a filter within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(pub u32);

/// Identifies a stream within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Placement of a filter: copies per host. A host may appear once only;
/// its copies form that host's *copy set*.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// `(host, copies)` pairs; order defines copy-set indices.
    pub per_host: Vec<(HostId, u32)>,
}

impl Placement {
    /// One copy on each of `hosts`.
    pub fn one_per_host(hosts: &[HostId]) -> Self {
        Placement {
            per_host: hosts.iter().map(|&h| (h, 1)).collect(),
        }
    }

    /// `copies` copies on a single host.
    pub fn on_host(host: HostId, copies: u32) -> Self {
        Placement {
            per_host: vec![(host, copies)],
        }
    }

    /// Total copies across hosts.
    pub fn total_copies(&self) -> u32 {
        self.per_host.iter().map(|&(_, c)| c).sum()
    }

    /// Validate: at least one copy, no duplicate hosts.
    fn validate(&self, name: &str) {
        assert!(self.total_copies() >= 1, "filter '{name}' has no copies");
        let mut hosts: Vec<HostId> = self.per_host.iter().map(|&(h, _)| h).collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(
            hosts.len(),
            self.per_host.len(),
            "filter '{name}' lists a host twice in its placement"
        );
        assert!(
            self.per_host.iter().all(|&(_, c)| c >= 1),
            "filter '{name}' has a zero-copy host entry"
        );
    }
}

pub(crate) struct FilterSpec {
    pub name: String,
    pub placement: Placement,
    pub factory: FilterFactory,
}

pub(crate) struct StreamSpec {
    pub name: String,
    pub from: FilterId,
    pub to: FilterId,
    pub policy: WritePolicy,
    /// Queue capacity (buffers) of each consumer copy set.
    pub queue_capacity: usize,
}

/// A complete application graph ready to run.
pub struct AppGraph {
    pub(crate) filters: Vec<FilterSpec>,
    pub(crate) streams: Vec<StreamSpec>,
}

impl AppGraph {
    /// Number of filters.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Name of filter `id`.
    pub fn filter_name(&self, id: FilterId) -> &str {
        &self.filters[id.0 as usize].name
    }

    /// Name of stream `id`.
    pub fn stream_name(&self, id: StreamId) -> &str {
        &self.streams[id.0 as usize].name
    }

    /// Input streams of `filter`, in declaration order (these are the
    /// filter's read ports 0, 1, ...).
    pub fn inputs_of(&self, filter: FilterId) -> Vec<StreamId> {
        (0..self.streams.len())
            .filter(|&i| self.streams[i].to == filter)
            .map(|i| StreamId(i as u32))
            .collect()
    }

    /// Output streams of `filter`, in declaration order (write ports).
    pub fn outputs_of(&self, filter: FilterId) -> Vec<StreamId> {
        (0..self.streams.len())
            .filter(|&i| self.streams[i].from == filter)
            .map(|i| StreamId(i as u32))
            .collect()
    }
}

/// Default consumer copy-set queue capacity, in buffers.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4;

/// Builder for [`AppGraph`].
#[derive(Default)]
pub struct GraphBuilder {
    filters: Vec<FilterSpec>,
    streams: Vec<StreamSpec>,
}

impl GraphBuilder {
    /// Start an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a filter with the given placement. `factory` is called once per
    /// transparent copy.
    pub fn add_filter<F, M>(
        &mut self,
        name: impl Into<String>,
        placement: Placement,
        factory: M,
    ) -> FilterId
    where
        F: Filter + 'static,
        M: Fn(CopyInfo) -> F + Send + Sync + 'static,
    {
        let name = name.into();
        placement.validate(&name);
        let id = FilterId(self.filters.len() as u32);
        self.filters.push(FilterSpec {
            name,
            placement,
            factory: Box::new(move |info| Box::new(factory(info))),
        });
        id
    }

    /// Connect `from` → `to` with the given writer policy and the default
    /// queue capacity.
    pub fn connect(&mut self, from: FilterId, to: FilterId, policy: WritePolicy) -> StreamId {
        self.connect_with_capacity(from, to, policy, DEFAULT_QUEUE_CAPACITY)
    }

    /// Connect with an explicit consumer queue capacity (buffers per copy
    /// set).
    pub fn connect_with_capacity(
        &mut self,
        from: FilterId,
        to: FilterId,
        policy: WritePolicy,
        queue_capacity: usize,
    ) -> StreamId {
        assert!(
            (from.0 as usize) < self.filters.len(),
            "unknown producer filter"
        );
        assert!(
            (to.0 as usize) < self.filters.len(),
            "unknown consumer filter"
        );
        assert!(from != to, "a stream cannot connect a filter to itself");
        assert!(queue_capacity >= 1);
        let id = StreamId(self.streams.len() as u32);
        let name = format!(
            "{}->{}",
            self.filters[from.0 as usize].name, self.filters[to.0 as usize].name
        );
        self.streams.push(StreamSpec {
            name,
            from,
            to,
            policy,
            queue_capacity,
        });
        id
    }

    /// Finish the graph.
    pub fn build(self) -> AppGraph {
        AppGraph {
            filters: self.filters,
            streams: self.streams,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FilterCtx;
    use crate::filter::FilterError;

    struct Nop;
    impl Filter for Nop {
        fn process(&mut self, _ctx: &mut FilterCtx) -> Result<(), FilterError> {
            Ok(())
        }
    }

    #[test]
    fn build_linear_graph() {
        let mut g = GraphBuilder::new();
        let a = g.add_filter("a", Placement::on_host(HostId(0), 1), |_| Nop);
        let b = g.add_filter(
            "b",
            Placement::one_per_host(&[HostId(0), HostId(1)]),
            |_| Nop,
        );
        let s = g.connect(a, b, WritePolicy::RoundRobin);
        let graph = g.build();
        assert_eq!(graph.filter_count(), 2);
        assert_eq!(graph.stream_count(), 1);
        assert_eq!(graph.inputs_of(b), vec![s]);
        assert_eq!(graph.outputs_of(a), vec![s]);
        assert_eq!(graph.inputs_of(a), Vec::<StreamId>::new());
        assert_eq!(graph.stream_name(s), "a->b");
    }

    #[test]
    #[should_panic(expected = "lists a host twice")]
    fn duplicate_host_rejected() {
        let mut g = GraphBuilder::new();
        g.add_filter(
            "a",
            Placement {
                per_host: vec![(HostId(0), 1), (HostId(0), 2)],
            },
            |_| Nop,
        );
    }

    #[test]
    #[should_panic(expected = "cannot connect a filter to itself")]
    fn self_loop_rejected() {
        let mut g = GraphBuilder::new();
        let a = g.add_filter("a", Placement::on_host(HostId(0), 1), |_| Nop);
        g.connect(a, a, WritePolicy::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "has no copies")]
    fn empty_placement_rejected() {
        let mut g = GraphBuilder::new();
        g.add_filter("a", Placement::default(), |_| Nop);
    }

    #[test]
    fn placement_helpers() {
        let p = Placement::one_per_host(&[HostId(3), HostId(5)]);
        assert_eq!(p.total_copies(), 2);
        let p = Placement::on_host(HostId(1), 7);
        assert_eq!(p.total_copies(), 7);
    }
}
