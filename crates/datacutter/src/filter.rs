//! The filter interface: `init` / `process` / `finalize` callbacks, exactly
//! the contract the paper's Section 2 describes.

use crate::context::FilterCtx;

/// Error type filters may surface from `process`; aborts the run.
#[derive(Debug)]
pub struct FilterError(pub String);

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "filter error: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

/// A user-defined application component.
///
/// One instance exists per *transparent copy*; the filter is unaware of its
/// siblings (transparency). A work cycle runs `init`, then `process` —
/// which reads input streams until end-of-work and writes output streams —
/// then `finalize`.
pub trait Filter: Send {
    /// Pre-allocate resources for the coming unit of work.
    fn init(&mut self, _ctx: &mut FilterCtx) {}

    /// Consume input buffers and produce output buffers until end-of-work
    /// (reads return `None`).
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError>;

    /// Release per-UOW resources.
    fn finalize(&mut self, _ctx: &mut FilterCtx) {}
}

/// Information handed to filter factories when instantiating a copy.
#[derive(Debug, Clone, Copy)]
pub struct CopyInfo {
    /// Index of this copy among all copies of the filter (0-based).
    pub copy_index: usize,
    /// Total copies of the filter across all hosts.
    pub total_copies: usize,
    /// Index of this copy's copy set (= position of its host in the
    /// filter's placement); consumers at targeted-write streams are
    /// addressed by this index.
    pub copyset_index: usize,
    /// Total number of copy sets (hosts) the filter spans.
    pub total_copysets: usize,
    /// Host the copy is placed on.
    pub host: hetsim::HostId,
}

/// Factory producing one filter instance per transparent copy.
pub type FilterFactory = Box<dyn Fn(CopyInfo) -> Box<dyn Filter> + Send + Sync>;
