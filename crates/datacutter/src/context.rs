//! The runtime context handed to each filter copy: stream reads/writes,
//! CPU work, and disk I/O, all charged to the emulated cluster when the
//! run executes on the virtual-time simulator. On the native wall-clock
//! executor the same interface applies — reads and writes move real data
//! through real channels — but cost-charging operations (`compute`,
//! `disk_read`) only tally metrics, since there is no emulated hardware
//! to occupy.

use std::collections::VecDeque;
use std::sync::Arc;

use hetsim::{DeadlineRecv, Env, HostId, SimDuration, SimTime, Topology};
use parking_lot::Mutex;

use crate::budget::StreamOoc;
use crate::buffer::DataBuffer;
use crate::fault::{abort_run, raise_killed, CopyHealth, ErrorCell, FaultCtl, RunError};
use crate::filter::CopyInfo;
use crate::metrics::CopyCell;
use crate::policy::{AckHandle, CopySetInfo, WriterState};
use crate::runtime::delivery::{CourierMsg, Envelope, OutMsg};
use crate::runtime::eow::UowGate;
use crate::runtime::exec::DeadlineSend;
use crate::runtime::retain::{Dedup, Provenance, StreamRetention};
use crate::runtime::{ChanRx, ChanTx, ExecEnv};

pub(crate) struct InputPort {
    pub rx: ChanRx<Envelope>,
    pub inject_tx: ChanTx<Envelope>,
    pub courier_tx: ChanTx<CourierMsg>,
    pub gate: Arc<Mutex<UowGate>>,
    /// Gates of the *other* copy sets on this stream, with their set
    /// descriptions. When a peer set is dead its reaper may still be
    /// replaying salvaged buffers into this queue; this set must not
    /// declare end-of-work until the dead peer's gate has advanced past
    /// the current UOW (all its salvageable traffic for the cycle
    /// forwarded).
    pub peer_gates: Vec<(CopySetInfo, Arc<Mutex<UowGate>>)>,
    pub copyset_counters: crate::metrics::CopySetCell,
    /// Lossless recovery: the copy set's shared dedup table (`None` ⇒
    /// degraded mode, no recovery bookkeeping on the read path).
    pub dedup: Option<Arc<Dedup>>,
    /// Lossless recovery: the stream's retention, for re-fetching this
    /// copy's consumed-but-unflushed buffers after a supervised restart.
    pub retention: Option<Arc<StreamRetention>>,
    /// Provenances this copy consumed in the current UOW. Settled over
    /// the courier at clean end-of-work; harvested by
    /// [`FilterCtx::prepare_restart_replay`] when the copy restarts
    /// mid-UOW instead.
    pub journal: Vec<Provenance>,
    /// Replicas re-fetched for a restarted incarnation, served by `read`
    /// before the shared queue (bypassing queue capacity, so a rebuild
    /// can never deadlock on a full channel).
    pub replay: VecDeque<(Provenance, DataBuffer)>,
    /// The crashed incarnation had already consumed this UOW's
    /// end-of-work token; re-signal end-of-work once `replay` drains.
    pub replay_done: bool,
    /// Out-of-core state of this stream (`None` ⇒ no memory budget; the
    /// read path never touches the ledger or ring).
    pub ooc: Option<Arc<StreamOoc>>,
}

pub(crate) struct OutputPort {
    pub writer: WriterState,
    pub outbox_tx: ChanTx<OutMsg>,
    /// Number of consumer copy sets (valid `write_to` targets).
    pub targets: usize,
    /// Lossless recovery: the stream's retention — every replicable
    /// buffer written is stamped with a provenance and retained until
    /// the consumer settles it.
    pub retention: Option<Arc<StreamRetention>>,
    /// Out-of-core state of this stream (`None` ⇒ no memory budget; the
    /// write path never touches the ledger or ring).
    pub ooc: Option<Arc<StreamOoc>>,
}

/// Execution context of one filter copy. Provides the stream interface
/// (read / write with end-of-work), plus cost-charging compute and disk
/// operations.
pub struct FilterCtx {
    pub(crate) env: ExecEnv,
    pub(crate) topo: Topology,
    pub(crate) info: CopyInfo,
    pub(crate) uow: u32,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) outputs: Vec<OutputPort>,
    pub(crate) metrics: CopyCell,
    pub(crate) trace: Option<(hetsim::Trace, String)>,
    /// Fault control block when a plan is active (`None` ⇒ fault-free
    /// fast path, bit-identical to the pre-fault runtime).
    pub(crate) faults: Option<Arc<FaultCtl>>,
    /// This copy's scheduled crash time, if its host is on the plan.
    pub(crate) my_death: Option<SimTime>,
    /// Run-wide recycler for `DataBuffer` payload boxes; shared by every
    /// copy so boxes released by a consumer feed the next producer `make`.
    pub(crate) slab: crate::buffer::BufferSlab,
    /// Filter name (for structured errors).
    pub(crate) name: Arc<str>,
    /// Shared cell for the run's first structured error.
    pub(crate) errors: ErrorCell,
    /// Deadline for handing an acknowledgment to the courier queue; a
    /// full queue past this is a [`RunError::CourierStall`].
    pub(crate) courier_deadline: SimDuration,
    /// Heartbeat record scanned by the supervisor (supervised runs only).
    pub(crate) health: Option<Arc<CopyHealth>>,
    /// Per-port latch: `true` once `read` returned end-of-work for the
    /// current UOW. Keeps a supervised restart of the same UOW from
    /// blocking on a port whose (single) `UowDone` token it already
    /// consumed before panicking. Reset by [`begin_uow`](Self::begin_uow).
    pub(crate) port_done: Vec<bool>,
}

impl FilterCtx {
    /// Unwind this copy as crashed if its host's failure time has passed.
    /// Called at the fail-stop observation points: stream read and write
    /// boundaries.
    fn check_killed(&self) {
        if let Some(d) = self.my_death {
            if self.env.now() >= d {
                raise_killed();
            }
        }
    }

    /// Record a heartbeat (supervised runs; no-op otherwise).
    fn beat(&self) {
        if let Some(h) = &self.health {
            h.beat(self.env.now());
        }
    }

    /// Enter unit of work `uow`: advances the cycle counter and re-arms the
    /// per-port end-of-work latches. Called by the copy loop at each cycle
    /// start — and *not* on a supervised restart of the same UOW, so
    /// already-consumed `UowDone` tokens stay consumed.
    pub(crate) fn begin_uow(&mut self, uow: u32) {
        // Settle any journal the filter left behind (it finished the
        // cycle without draining the port to end-of-work) and drop stale
        // restart replicas — both belong to the finished UOW.
        for i in 0..self.inputs.len() {
            self.settle_port(i);
            while let Some((_, buf)) = self.inputs[i].replay.pop_front() {
                self.slab.repool(buf);
            }
            self.inputs[i].replay_done = false;
        }
        self.uow = uow;
        for d in self.port_done.iter_mut() {
            *d = false;
        }
    }

    /// Settle input `port`'s journal: report the provenances this copy
    /// consumed (and whose effects are now flushed) to the stream's
    /// retention over the courier reverse path, releasing the retained
    /// replicas. No-op in degraded mode or when nothing was journaled; a
    /// full courier queue past the deadline only postpones the GC to run
    /// teardown, so the result is ignored.
    pub(crate) fn settle_port(&mut self, port: usize) {
        let input = &mut self.inputs[port];
        if input.dedup.is_none() || input.journal.is_empty() {
            return;
        }
        let items = std::mem::take(&mut input.journal);
        let deadline = self.env.now() + self.courier_deadline;
        let _ = input
            .courier_tx
            .send_deadline(&self.env, CourierMsg::Settle { items }, deadline);
    }

    /// Rebuild a supervised restart's lost input state: the crashed
    /// incarnation's journaled (consumed-but-unflushed) buffers are
    /// un-claimed from the set's dedup table, re-fetched from the
    /// stream's retention, and queued on the port's local replay line so
    /// the fresh filter instance consumes them before the shared queue.
    /// Journal entries whose replicas were already evicted from the
    /// bounded retention ring are unrecoverable and tallied as lost.
    pub(crate) fn prepare_restart_replay(&mut self) {
        let Some(ctl) = self.faults.clone() else {
            return;
        };
        if !ctl.lossless() {
            return;
        }
        let uow = self.uow;
        let (mut refetched, mut refetched_bytes, mut evicted) = (0u64, 0u64, 0u64);
        for (i, input) in self.inputs.iter_mut().enumerate() {
            let (Some(dedup), Some(retention)) = (input.dedup.as_ref(), input.retention.as_ref())
            else {
                continue;
            };
            for p in std::mem::take(&mut input.journal) {
                dedup.forget(uow, p);
                match retention.fetch(p.copy, p.seq) {
                    Some(buf) => {
                        refetched += 1;
                        refetched_bytes += buf.wire_bytes();
                        input.replay.push_back((p, buf));
                    }
                    None => evicted += 1,
                }
            }
            if self.port_done[i] {
                self.port_done[i] = false;
                input.replay_done = true;
            }
        }
        if refetched > 0 || evicted > 0 {
            let mut t = ctl.tallies.lock();
            t.buffers_redelivered += refetched;
            t.bytes_redelivered += refetched_bytes;
            t.buffers_lost += evicted;
        }
    }

    /// True when no dead peer copy set can still replay buffers for the
    /// current UOW into `port`'s queue. A dead peer's reaper forwards
    /// salvaged buffers in FIFO order and advances the dead gate's cycle
    /// only after every producer's end-of-work marker (which trails all of
    /// that producer's data) has been salvaged, so `cycle > uow` proves
    /// all replays for `uow` have already been enqueued here.
    fn replays_settled(&self, port: usize) -> bool {
        let Some(ctl) = self.faults.as_ref().filter(|c| c.crashes_possible()) else {
            return true;
        };
        let now = self.env.now();
        self.inputs[port]
            .peer_gates
            .iter()
            .all(|(s, g)| !ctl.set_dead(s, now) || g.lock().cycle() > self.uow)
    }

    /// If this host is inside a scheduled stall window, sleep until the
    /// window ends (a transiently frozen host performs no work but does
    /// not lose state).
    fn stall_if_frozen(&self) {
        if let Some(ctl) = &self.faults {
            let now = self.env.now();
            if let Some(end) = ctl.plan.stall_end(self.info.host, now) {
                self.env.delay(end - now);
            }
        }
    }

    /// Charge `n` spill-ring bytes to this host's disk model (virtual
    /// time only), stretched by any active disk-degradation window: a
    /// disk at factor `f` takes `1/f` the healthy time, so the extra
    /// `elapsed · (1/f − 1)` is slept on top of the model's charge.
    fn charge_spill_disk(&self, n: u64, write: bool, storage: &crate::storage::StorageCtl) {
        if n == 0 {
            return;
        }
        if let ExecEnv::Sim(e) = &self.env {
            let host = self.topo.host(self.info.host);
            if let Some(d) = host.disks.first() {
                let t0 = e.now();
                if write {
                    d.write(e, n);
                } else {
                    d.read(e, n);
                }
                let f = storage.degrade_factor(self.info.host, t0);
                if f < 1.0 {
                    let spent = e.now() - t0;
                    e.delay(spent.mul_f64(1.0 / f - 1.0));
                }
            }
        }
    }

    /// Write-side out-of-core step for one outgoing buffer: charge the
    /// stream's budget share and, when the stream is over it, park the
    /// payload in the spill ring — *after* the retention stamp (the
    /// lossless-recovery replica is taken from the in-memory payload) and
    /// *before* the outbox send. The spill write is charged to this
    /// host's disk model under the virtual-time executor. Returns the
    /// spill's `(ring_bytes, elapsed)`, both zero when nothing spilled.
    ///
    /// This is the write side of the storage ladder: the frame is encoded
    /// (and checksummed) once; a transient write error — injected by the
    /// plan or real — is retried under seeded jittered backoff up to the
    /// storage retry budget; a write path still failing past the budget
    /// re-creates a wedged ring once; and a write that fails even then is
    /// *denied*, not fatal — the payload stays resident over budget with
    /// its charge riding on the buffer, which costs memory headroom but
    /// never bits or an abort.
    fn ooc_outgoing(&mut self, port: usize, buf: &mut DataBuffer) -> (u64, SimDuration) {
        let Some(ooc) = self.outputs[port].ooc.clone() else {
            return (0, SimDuration::ZERO);
        };
        if !buf.is_spillable() || buf.is_spilled() {
            return (0, SimDuration::ZERO);
        }
        let bytes = buf.wire_bytes();
        if !ooc.charge(bytes) {
            // Staying resident: the charge rides with the buffer until the
            // consumer claims it. The mark keeps charge/discharge paired —
            // replayed retention replicas (never charged) carry no mark and
            // must never be discharged.
            buf.set_budget_charged();
            return (0, SimDuration::ZERO);
        }
        let storage = ooc.storage.clone();
        let Some(frame) = buf.spill_frame(storage.checksum()) else {
            // Unreachable given the spillability checks above; degrade
            // safely rather than trusting it.
            buf.set_budget_charged();
            return (0, SimDuration::ZERO);
        };
        let t0 = self.env.now();
        let host = self.info.host;
        let op = storage.next_op();
        let mut attempt: u32 = 0;
        loop {
            let outcome = if storage.injected_disk_error(
                host,
                hetsim::DiskFaultKind::Write,
                self.env.now(),
                op,
                attempt as u64,
            ) {
                Err(crate::storage::StorageError::Io {
                    what: "spill write",
                    message: "injected disk write error".into(),
                })
            } else {
                storage.ring().and_then(|ring| match ring.spill(&frame) {
                    Ok(ticket) => Ok((ring, ticket)),
                    Err(e) => Err(crate::storage::StorageError::Io {
                        what: "spill write",
                        message: e.to_string(),
                    }),
                })
            };
            match outcome {
                Ok((ring, ticket)) => {
                    // The in-memory payload box drops here — that drop is
                    // the residency release the budget manager banks on.
                    buf.park(ring, ticket);
                    ooc.discharge(bytes);
                    let n = frame.len() as u64;
                    self.charge_spill_disk(n, true, &storage);
                    return (n, self.env.now() - t0);
                }
                Err(err) => {
                    if attempt < storage.retry_budget() {
                        storage.note_retry();
                        self.env.delay(storage.backoff(op, attempt));
                        attempt += 1;
                        continue;
                    }
                    // The retry budget is spent: the ring itself may be
                    // wedged (e.g. ENOSPC on the temp filesystem).
                    // Re-create it once and give the ladder one more rung
                    // — the attempt key advances, so a genuinely
                    // persistent error window denies this attempt too.
                    if storage.recreate_ring(host, self.env.now()) {
                        attempt += 1;
                        continue;
                    }
                    // Bottom of the ladder: deny the spill and keep the
                    // payload resident over budget. The charge rides with
                    // the buffer (conservation intact), the denial is
                    // tallied, and the run continues — degraded in memory
                    // headroom, identical in bits.
                    storage.note_spill_denied(host, self.env.now(), &err.to_string());
                    buf.set_budget_charged();
                    return (0, self.env.now() - t0);
                }
            }
        }
    }

    /// Read-side out-of-core step for one claimed incoming buffer: fault
    /// a spilled payload back in (charging the disk model for the read),
    /// or release a resident spillable payload's budget charge now that
    /// it left the stream queue.
    ///
    /// This is the read side of the storage ladder. Transient read
    /// errors (injected or real — a failed physical read leaves the ring
    /// ticket intact) are retried under seeded backoff; a detected
    /// corruption (checksum mismatch or undecodable frame — the slot is
    /// already freed, so there is nothing left to retry) or a read that
    /// fails past the budget falls back to loss-accounted recovery for
    /// this one buffer. Returns `false` when the buffer was lost that
    /// way (tallied; the caller suppresses it before any delivery
    /// counter moves, so `consumed + lost == produced` stays exact) —
    /// with no fault machinery active to account the loss, the run
    /// aborts with the structured storage error instead.
    fn ooc_incoming(&mut self, port: usize, buf: &mut DataBuffer) -> bool {
        let Some(ooc) = self.inputs[port].ooc.clone() else {
            return true;
        };
        if !buf.is_spilled() {
            if buf.take_budget_charged() {
                ooc.discharge(buf.wire_bytes());
            }
            return true;
        }
        let storage = ooc.storage.clone();
        let host = self.info.host;
        let t0 = self.env.now();
        let op = storage.next_op();
        let mut attempt: u32 = 0;
        let error = loop {
            if storage.injected_disk_error(
                host,
                hetsim::DiskFaultKind::Read,
                self.env.now(),
                op,
                attempt as u64,
            ) {
                if attempt < storage.retry_budget() {
                    storage.note_retry();
                    self.env.delay(storage.backoff(op, attempt));
                    attempt += 1;
                    continue;
                }
                break crate::storage::StorageError::Io {
                    what: "fault-in read",
                    message: "injected disk read error (retry budget exhausted)".into(),
                };
            }
            let now = self.env.now();
            let tamper = |frame: &mut Vec<u8>| {
                if let Some(bit) = storage.injected_corrupt_bit(
                    host,
                    now,
                    op,
                    attempt as u64,
                    frame.len() as u64 * 8,
                ) {
                    frame[(bit / 8) as usize] ^= 1 << (bit % 8);
                }
            };
            match buf.fault_in(&self.slab, storage.checksum(), &tamper) {
                Ok(n) => {
                    self.charge_spill_disk(n, false, &storage);
                    let mut m = self.metrics.lock();
                    m.disk_bytes += n;
                    m.disk_elapsed += self.env.now() - t0;
                    return true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // The frame read back is not the frame written. The
                    // ring slot is already freed and the payload
                    // tombstoned — corruption is detected, accounted,
                    // and final.
                    storage.note_corruption(host, self.env.now(), &e.to_string());
                    break crate::storage::StorageError::Corrupt {
                        what: "fault-in decode",
                        detail: e.to_string(),
                    };
                }
                Err(e) => {
                    if attempt < storage.retry_budget() {
                        storage.note_retry();
                        self.env.delay(storage.backoff(op, attempt));
                        attempt += 1;
                        continue;
                    }
                    // Unreadable past the budget: free the slot (the
                    // ticket is still valid after a failed physical
                    // read) and give the buffer up.
                    buf.discard_spilled();
                    break crate::storage::StorageError::Io {
                        what: "fault-in read",
                        message: e.to_string(),
                    };
                }
            }
        };
        match self.faults.as_ref() {
            Some(ctl) => {
                // Fall back to PR 5's loss-accounted recovery for this
                // one buffer: tally the loss here, before any delivery
                // counter moves, and let the caller suppress it.
                let mut t = ctl.tallies.lock();
                t.buffers_lost += 1;
                t.bytes_lost += buf.wire_bytes();
                false
            }
            None => abort_run(&self.errors, RunError::Storage { error }),
        }
    }

    /// This copy's identity (copy index, total copies, host).
    pub fn copy(&self) -> CopyInfo {
        self.info
    }

    /// True when the run executes under a fault plan that can kill hosts.
    /// Failure is fail-stop at the read boundary: whatever a copy holds in
    /// memory across buffers dies with it, and only buffers still queued
    /// (never dequeued, hence never acknowledged) are replayed. A filter
    /// that wants crash recovery to be lossless should therefore flush
    /// per input buffer while this returns true instead of batching
    /// output across buffers.
    pub fn fail_stop_active(&self) -> bool {
        self.faults.as_ref().is_some_and(|c| c.crashes_possible())
    }

    /// Index of the current unit of work (0-based). A work cycle runs
    /// `init` → `process` → `finalize` once per UOW; applications use this
    /// to select what the cycle operates on (e.g. which timestep to
    /// render).
    pub fn uow(&self) -> u32 {
        self.uow
    }

    /// The run-wide [`BufferSlab`](crate::buffer::BufferSlab). Filters that
    /// produce and consume buffers in steady state should build them with
    /// `slab.make` and unwrap them with `slab.recycle_ctx` so the payload
    /// boxes cycle instead of being reallocated per buffer.
    pub fn buffer_slab(&self) -> &crate::buffer::BufferSlab {
        &self.slab
    }

    /// Host this copy runs on.
    pub fn host(&self) -> HostId {
        self.info.host
    }

    /// Current time on the run's clock: virtual time under the simulator,
    /// wall-clock time since run start under the native executor.
    pub fn now(&self) -> hetsim::SimTime {
        self.env.now()
    }

    /// The simulation environment, when this copy runs on the virtual-time
    /// executor (for advanced filters spawning helper processes). `None`
    /// under the native executor, where there is no simulation to drive.
    pub fn sim_env(&self) -> Option<&Env> {
        self.env.sim()
    }

    /// The execution environment of this copy, whichever substrate it runs
    /// on.
    pub fn exec_env(&self) -> &ExecEnv {
        &self.env
    }

    /// Number of input streams (read ports).
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output streams (write ports).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Read the next buffer from input `port`. Returns `None` at
    /// end-of-work for the current unit of work (all upstream copies
    /// finished and the queue drained). Acknowledges demand-driven buffers
    /// as they are dequeued — "the buffer is now being processed", as the
    /// paper puts it.
    pub fn read(&mut self, port: usize) -> Option<DataBuffer> {
        if let Some((p, buf)) = self.inputs[port].replay.pop_front() {
            // Restart rebuild: serve the re-fetched replicas of the
            // crashed incarnation's consumed buffers before touching the
            // shared queue. Re-claim and re-journal each one — it is
            // being processed again, and its replica must be settled (or
            // re-fetched on a second crash) like any first delivery.
            // Deliberately not counted in stream/copy metrics: the
            // original delivery was already counted by this copy.
            if let Some(d) = self.inputs[port].dedup.as_ref() {
                let _ = d.claim(self.uow, p);
            }
            self.inputs[port].journal.push(p);
            return Some(buf);
        }
        if self.inputs[port].replay_done {
            // The crashed incarnation had consumed this UOW's (single)
            // end-of-work token before dying; now that the rebuild has
            // drained, re-signal end-of-work from the latch.
            self.inputs[port].replay_done = false;
            self.port_done[port] = true;
            self.settle_port(port);
            return None;
        }
        if self.port_done[port] {
            // A restarted copy re-reading a port whose end-of-work it
            // already consumed this UOW: the token is gone, so answer
            // from the latch instead of blocking on an empty queue.
            return None;
        }
        loop {
            self.check_killed();
            self.beat();
            let span = self.trace.as_ref().map(|(t, who)| {
                (
                    t.clone(),
                    t.begin_at(self.env.now(), "read-wait", who.clone()),
                )
            });
            let t0 = self.env.now();
            let liveness = self
                .faults
                .as_ref()
                .filter(|c| c.crashes_possible())
                .cloned();
            let got = if let Some(ctl) = liveness {
                // Liveness-aware receive: wake every `timeout` to probe the
                // gate for dead producers (and to observe our own death).
                let tick = t0 + ctl.timeout;
                let deadline = match self.my_death {
                    Some(d) if d < tick => d,
                    _ => tick,
                };
                match self.inputs[port].rx.recv_deadline(&self.env, deadline) {
                    DeadlineRecv::Item(e) => Some(e),
                    DeadlineRecv::Closed => None,
                    DeadlineRecv::TimedOut => {
                        self.metrics.lock().read_wait += self.env.now() - t0;
                        if let Some((t, s)) = span {
                            t.end_at(self.env.now(), s);
                        }
                        self.check_killed();
                        let fired = if self.replays_settled(port) {
                            let mut g = self.inputs[port].gate.lock();
                            g.try_fire(self.uow, Some(&ctl), self.env.now())
                        } else {
                            None
                        };
                        if let Some(copies) = fired {
                            for _ in 0..copies {
                                let _ = self.inputs[port]
                                    .inject_tx
                                    .send(&self.env, Envelope::UowDone);
                            }
                        }
                        continue;
                    }
                }
            } else {
                self.inputs[port].rx.recv(&self.env)
            };
            let waited = self.env.now() - t0;
            {
                let mut m = self.metrics.lock();
                m.read_wait += waited;
            }
            if let Some((t, s)) = span {
                t.end_at(self.env.now(), s);
            }
            match got {
                Some(Envelope::Data { mut buf, ack, prov }) => {
                    if let Some(ack) = ack {
                        // Hand to the ack courier; the courier pays the
                        // reverse network path so this copy keeps working.
                        // The handoff is bounded: a courier queue full past
                        // the deadline means the courier is wedged, and
                        // blocking indefinitely would wedge this copy too.
                        // Credited even for a duplicate about to be
                        // suppressed — the buffer was dequeued either way.
                        let deadline = self.env.now() + self.courier_deadline;
                        match self.inputs[port].courier_tx.send_deadline(
                            &self.env,
                            CourierMsg::Ack(ack),
                            deadline,
                        ) {
                            DeadlineSend::Sent | DeadlineSend::Closed => {}
                            DeadlineSend::TimedOut => {
                                abort_run(
                                    &self.errors,
                                    RunError::CourierStall {
                                        filter: self.name.to_string(),
                                        copy: self.info.copy_index,
                                        host: self.info.host,
                                        waited: self.courier_deadline,
                                    },
                                );
                            }
                        }
                    }
                    let claimed = match (self.inputs[port].dedup.as_ref(), prov) {
                        (Some(d), Some(p)) => d.claim(self.uow, p),
                        _ => true,
                    };
                    if !claimed {
                        // A copy of this set already processed this
                        // provenance — an original racing its own
                        // redelivered replica. Suppress it: recycle the
                        // payload box and read on. Not counted in
                        // stream/copy metrics (the claimed delivery was).
                        // A spilled duplicate's ring slot is freed without
                        // paying the read; a resident spillable one
                        // releases its budget charge.
                        if let Some(ooc) = self.inputs[port].ooc.as_ref() {
                            if !buf.discard_spilled() && buf.take_budget_charged() {
                                ooc.discharge(buf.wire_bytes());
                            }
                        }
                        self.slab.repool(buf);
                        if let Some(ctl) = &self.faults {
                            ctl.tallies.lock().duplicates_suppressed += 1;
                        }
                        continue;
                    }
                    if let Some(p) = prov {
                        if self.inputs[port].dedup.is_some() {
                            self.inputs[port].journal.push(p);
                        }
                    }
                    if !self.ooc_incoming(port, &mut buf) {
                        // The storage plane lost this buffer (corrupt or
                        // unreadable spill frame); the loss is already
                        // tallied. Recycle the box and read on — none of
                        // the delivery counters below move, so
                        // `consumed + lost == produced` stays exact.
                        self.slab.repool(buf);
                        continue;
                    }
                    {
                        let mut m = self.metrics.lock();
                        m.buffers_in += 1;
                        m.bytes_in += buf.wire_bytes();
                    }
                    {
                        let mut c = self.inputs[port].copyset_counters.lock();
                        c.buffers_received += 1;
                        c.bytes_received += buf.wire_bytes();
                    }
                    return Some(buf);
                }
                Some(Envelope::Eow { producer }) => {
                    // One producer copy finished this UOW. When the whole
                    // producer side is done (dead producers counted done)
                    // and no dead peer set can still replay into us,
                    // release every copy in the set. If replays are still
                    // pending, the next liveness probe retries the fire.
                    let settled = self.replays_settled(port);
                    let complete = {
                        let mut g = self.inputs[port].gate.lock();
                        g.mark(producer);
                        if settled {
                            g.try_fire(self.uow, self.faults.as_deref(), self.env.now())
                        } else {
                            None
                        }
                    };
                    if let Some(copies) = complete {
                        for _ in 0..copies {
                            let _ = self.inputs[port]
                                .inject_tx
                                .send(&self.env, Envelope::UowDone);
                        }
                    }
                }
                Some(Envelope::UowDone) | None => {
                    self.port_done[port] = true;
                    // Clean end-of-work: everything journaled this UOW is
                    // flushed downstream, so its retained replicas can go.
                    self.settle_port(port);
                    return None;
                }
            }
        }
    }

    /// Write `buf` to output `port`. The writer policy picks the consumer
    /// copy set (demand-driven writers may block here for window credit);
    /// the transfer itself is overlapped via a per-copy outbox.
    ///
    /// Deliberately *no* crash check here: failure is fail-stop at the
    /// read boundary. A demand-driven buffer is acknowledged when it is
    /// dequeued ("the buffer is now being processed"), so killing a copy
    /// between dequeue and write would lose acknowledged work that replay
    /// can never restore. Letting the in-flight unit flush keeps a
    /// demand-driven run bit-identical after recovery.
    pub fn write(&mut self, port: usize, mut buf: DataBuffer) {
        self.beat();
        let t0 = self.env.now();
        let copy = self.info.copy_index;
        let out = &mut self.outputs[port];
        let idx = out.writer.select(&self.env);
        let ack = out.writer.demand_state().map(|state| AckHandle {
            state,
            copyset_idx: idx,
        });
        let prov = out
            .retention
            .as_ref()
            .and_then(|r| r.stamp(copy, idx, &buf));
        let bytes = buf.wire_bytes();
        let (spill_bytes, spill_elapsed) = self.ooc_outgoing(port, &mut buf);
        if self.outputs[port]
            .outbox_tx
            .send(
                &self.env,
                OutMsg::Data {
                    copyset_idx: idx,
                    envelope: Envelope::Data { buf, ack, prov },
                },
            )
            .is_err()
        {
            abort_run(
                &self.errors,
                RunError::ChannelClosed {
                    filter: self.name.to_string(),
                    copy: self.info.copy_index,
                    host: self.info.host,
                    what: "outbox",
                },
            );
        }
        let waited = self.env.now() - t0 - spill_elapsed;
        let mut m = self.metrics.lock();
        m.buffers_out += 1;
        m.bytes_out += bytes;
        m.write_wait += waited;
        m.disk_bytes += spill_bytes;
        m.disk_elapsed += spill_elapsed;
    }

    /// Write `buf` to output `port` addressed to a *specific* consumer
    /// copy set (by its copy-set index), bypassing the stream's writer
    /// policy. Used for content-based routing — e.g. image-partitioned
    /// rendering, where a triangle must go to the raster copy set owning
    /// its screen region. No demand-driven acknowledgment is generated.
    pub fn write_to(&mut self, port: usize, copyset_idx: usize, mut buf: DataBuffer) {
        self.beat();
        let t0 = self.env.now();
        let copy = self.info.copy_index;
        let out = &mut self.outputs[port];
        let prov = out
            .retention
            .as_ref()
            .and_then(|r| r.stamp(copy, copyset_idx, &buf));
        let bytes = buf.wire_bytes();
        let (spill_bytes, spill_elapsed) = self.ooc_outgoing(port, &mut buf);
        if self.outputs[port]
            .outbox_tx
            .send(
                &self.env,
                OutMsg::Data {
                    copyset_idx,
                    envelope: Envelope::Data {
                        buf,
                        ack: None,
                        prov,
                    },
                },
            )
            .is_err()
        {
            abort_run(
                &self.errors,
                RunError::ChannelClosed {
                    filter: self.name.to_string(),
                    copy: self.info.copy_index,
                    host: self.info.host,
                    what: "outbox",
                },
            );
        }
        let waited = self.env.now() - t0 - spill_elapsed;
        let mut m = self.metrics.lock();
        m.buffers_out += 1;
        m.bytes_out += bytes;
        m.write_wait += waited;
        m.disk_bytes += spill_bytes;
        m.disk_elapsed += spill_elapsed;
    }

    /// Write `buf` to output `port` addressed to the copy set *owning*
    /// tile `tile` under the stream's tile-hash mapping (`tile mod sets`,
    /// falling through detectably-dead sets deterministically). This is
    /// the producer half of [`WritePolicy::TileHash`]: the writer stamps
    /// each buffer with the tile it belongs to and delivery becomes
    /// content-addressed. Like [`write_to`](Self::write_to), no
    /// demand-driven acknowledgment is generated.
    ///
    /// [`WritePolicy::TileHash`]: crate::WritePolicy::TileHash
    pub fn write_tile(&mut self, port: usize, tile: u64, buf: DataBuffer) {
        let idx = self.outputs[port].writer.select_tile(&self.env, tile);
        self.write_to(port, idx, buf);
    }

    /// Number of consumer copy sets on output `port` (the valid targets
    /// for [`write_to`](Self::write_to)).
    pub fn consumer_copysets(&self, port: usize) -> usize {
        self.outputs[port].targets
    }

    /// Emit end-of-work markers on every output stream (runtime use, at
    /// the end of each work cycle).
    pub(crate) fn emit_eow(&mut self) {
        for out in &mut self.outputs {
            let _ = out.outbox_tx.send(&self.env, OutMsg::Eow);
        }
    }

    /// Charge `work` seconds of reference-speed computation to this host's
    /// CPU (subject to its speed factor, other filter copies, and
    /// background jobs). On the native executor there is no emulated CPU
    /// to occupy: the call only tallies the work in the copy's metrics.
    pub fn compute(&mut self, work: SimDuration) {
        self.beat();
        self.stall_if_frozen();
        let span = self.trace.as_ref().map(|(t, who)| {
            (
                t.clone(),
                t.begin_at(self.env.now(), "compute", who.clone()),
            )
        });
        let t0 = self.env.now();
        if let ExecEnv::Sim(e) = &self.env {
            self.topo.host(self.info.host).cpu.compute(e, work);
        }
        let elapsed = self.env.now() - t0;
        {
            let mut m = self.metrics.lock();
            m.work += work;
            m.compute_elapsed += elapsed;
        }
        if let Some((t, s)) = span {
            t.end_at(self.env.now(), s);
        }
    }

    /// Read `bytes` from local disk `disk_index` (modulo the host's disk
    /// count), blocking for queueing + service time. `sequential` skips
    /// most of the positioning overhead (continuation of a file scan). On
    /// the native executor the emulated disk is not charged; only the
    /// byte tally is recorded.
    pub fn disk_read(&mut self, disk_index: usize, bytes: u64, sequential: bool) {
        // Source filters have no stream-read boundary, so a crashed host
        // is observed here — before new data is produced, never between
        // a dequeue and the flush of its results.
        self.check_killed();
        self.beat();
        self.stall_if_frozen();
        let host = self.topo.host(self.info.host);
        assert!(
            !host.disks.is_empty(),
            "host {:?} has no disks",
            self.info.host
        );
        let t0 = self.env.now();
        if let ExecEnv::Sim(e) = &self.env {
            let disk = &host.disks[disk_index % host.disks.len()];
            if sequential {
                disk.read_seq(e, bytes);
            } else {
                disk.read(e, bytes);
            }
        }
        let elapsed = self.env.now() - t0;
        let mut m = self.metrics.lock();
        m.disk_bytes += bytes;
        m.disk_elapsed += elapsed;
    }

    /// Record `bytes` of disk traffic performed on this copy's behalf by
    /// a helper process that charged the disk model itself (e.g. a
    /// read-ahead prefetcher spawned on the simulation clock): tallies
    /// the copy's disk byte counter without touching the disk model or
    /// blocking the copy.
    pub fn note_disk_bytes(&mut self, bytes: u64) {
        let mut m = self.metrics.lock();
        m.disk_bytes += bytes;
    }

    /// The cluster topology (placement-aware filters may inspect it).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}
