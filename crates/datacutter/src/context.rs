//! The runtime context handed to each filter copy: stream reads/writes,
//! CPU work, and disk I/O, all charged to the emulated cluster.

use std::sync::Arc;

use hetsim::{Env, HostId, Receiver, Sender, SimDuration, Topology};
use parking_lot::Mutex;

use crate::buffer::DataBuffer;
use crate::filter::CopyInfo;
use crate::metrics::CopyCell;
use crate::policy::{AckHandle, WriterState};

/// A message on a copy-set queue.
pub(crate) enum Envelope {
    /// A data buffer with its (optional) demand-driven ack handle.
    Data {
        buf: DataBuffer,
        ack: Option<AckHandle>,
    },
    /// In-band end-of-work marker from one producer copy.
    Eow,
    /// Injected once per consumer copy when all producers' markers for the
    /// current unit of work have been seen.
    UowDone,
}

/// Message from a filter copy to its per-stream outbox sender process.
pub(crate) enum OutMsg {
    /// Route one data envelope to the chosen copy set.
    Data {
        copyset_idx: usize,
        envelope: Envelope,
    },
    /// Broadcast an end-of-work marker to every copy set.
    Eow,
}

/// Per-copy-set end-of-work accounting: when markers from all producer
/// copies have been seen for the current UOW, each consumer copy in the
/// set gets one `UowDone`.
pub(crate) struct UowGate {
    pub producers: u32,
    pub copies: u32,
    pub eows: u32,
}

pub(crate) struct InputPort {
    pub rx: Receiver<Envelope>,
    pub inject_tx: Sender<Envelope>,
    pub courier_tx: Sender<AckHandle>,
    pub gate: Arc<Mutex<UowGate>>,
    pub copyset_counters: crate::metrics::CopySetCell,
}

pub(crate) struct OutputPort {
    pub writer: WriterState,
    pub outbox_tx: Sender<OutMsg>,
    /// Number of consumer copy sets (valid `write_to` targets).
    pub targets: usize,
}

/// Execution context of one filter copy. Provides the stream interface
/// (read / write with end-of-work), plus cost-charging compute and disk
/// operations.
pub struct FilterCtx {
    pub(crate) env: Env,
    pub(crate) topo: Topology,
    pub(crate) info: CopyInfo,
    pub(crate) uow: u32,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) outputs: Vec<OutputPort>,
    pub(crate) metrics: CopyCell,
    pub(crate) trace: Option<(hetsim::Trace, String)>,
}

impl FilterCtx {
    /// This copy's identity (copy index, total copies, host).
    pub fn copy(&self) -> CopyInfo {
        self.info
    }

    /// Index of the current unit of work (0-based). A work cycle runs
    /// `init` → `process` → `finalize` once per UOW; applications use this
    /// to select what the cycle operates on (e.g. which timestep to
    /// render).
    pub fn uow(&self) -> u32 {
        self.uow
    }

    /// Host this copy runs on.
    pub fn host(&self) -> HostId {
        self.info.host
    }

    /// Current virtual time.
    pub fn now(&self) -> hetsim::SimTime {
        self.env.now()
    }

    /// The simulation environment (for advanced filters spawning helpers).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Number of input streams (read ports).
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output streams (write ports).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Read the next buffer from input `port`. Returns `None` at
    /// end-of-work for the current unit of work (all upstream copies
    /// finished and the queue drained). Acknowledges demand-driven buffers
    /// as they are dequeued — "the buffer is now being processed", as the
    /// paper puts it.
    pub fn read(&mut self, port: usize) -> Option<DataBuffer> {
        loop {
            let span = self
                .trace
                .as_ref()
                .map(|(t, who)| (t.clone(), t.begin(&self.env, "read-wait", who.clone())));
            let t0 = self.env.now();
            let got = self.inputs[port].rx.recv(&self.env);
            let waited = self.env.now() - t0;
            {
                let mut m = self.metrics.lock();
                m.read_wait += waited;
            }
            if let Some((t, s)) = span {
                t.end(&self.env, s);
            }
            match got {
                Some(Envelope::Data { buf, ack }) => {
                    {
                        let mut m = self.metrics.lock();
                        m.buffers_in += 1;
                        m.bytes_in += buf.wire_bytes();
                    }
                    {
                        let mut c = self.inputs[port].copyset_counters.lock();
                        c.buffers_received += 1;
                        c.bytes_received += buf.wire_bytes();
                    }
                    if let Some(ack) = ack {
                        // Hand to the ack courier; the courier pays the
                        // reverse network path so this copy keeps working.
                        let _ = self.inputs[port].courier_tx.send(&self.env, ack);
                    }
                    return Some(buf);
                }
                Some(Envelope::Eow) => {
                    // One producer copy finished this UOW. When the whole
                    // producer side is done, release every copy in the set.
                    let complete = {
                        let mut g = self.inputs[port].gate.lock();
                        g.eows += 1;
                        if g.eows == g.producers {
                            g.eows = 0;
                            Some(g.copies)
                        } else {
                            None
                        }
                    };
                    if let Some(copies) = complete {
                        for _ in 0..copies {
                            let _ = self.inputs[port]
                                .inject_tx
                                .send(&self.env, Envelope::UowDone);
                        }
                    }
                }
                Some(Envelope::UowDone) | None => return None,
            }
        }
    }

    /// Write `buf` to output `port`. The writer policy picks the consumer
    /// copy set (demand-driven writers may block here for window credit);
    /// the transfer itself is overlapped via a per-copy outbox.
    pub fn write(&mut self, port: usize, buf: DataBuffer) {
        let t0 = self.env.now();
        let out = &mut self.outputs[port];
        let idx = out.writer.select(&self.env);
        let ack = out.writer.demand_state().map(|state| AckHandle {
            state,
            copyset_idx: idx,
        });
        let bytes = buf.wire_bytes();
        out.outbox_tx
            .send(
                &self.env,
                OutMsg::Data {
                    copyset_idx: idx,
                    envelope: Envelope::Data { buf, ack },
                },
            )
            .unwrap_or_else(|_| panic!("outbox closed while filter still writing"));
        let waited = self.env.now() - t0;
        let mut m = self.metrics.lock();
        m.buffers_out += 1;
        m.bytes_out += bytes;
        m.write_wait += waited;
    }

    /// Write `buf` to output `port` addressed to a *specific* consumer
    /// copy set (by its copy-set index), bypassing the stream's writer
    /// policy. Used for content-based routing — e.g. image-partitioned
    /// rendering, where a triangle must go to the raster copy set owning
    /// its screen region. No demand-driven acknowledgment is generated.
    pub fn write_to(&mut self, port: usize, copyset_idx: usize, buf: DataBuffer) {
        let t0 = self.env.now();
        let out = &mut self.outputs[port];
        let bytes = buf.wire_bytes();
        out.outbox_tx
            .send(
                &self.env,
                OutMsg::Data {
                    copyset_idx,
                    envelope: Envelope::Data { buf, ack: None },
                },
            )
            .unwrap_or_else(|_| panic!("outbox closed while filter still writing"));
        let waited = self.env.now() - t0;
        let mut m = self.metrics.lock();
        m.buffers_out += 1;
        m.bytes_out += bytes;
        m.write_wait += waited;
    }

    /// Number of consumer copy sets on output `port` (the valid targets
    /// for [`write_to`](Self::write_to)).
    pub fn consumer_copysets(&self, port: usize) -> usize {
        self.outputs[port].targets
    }

    /// Emit end-of-work markers on every output stream (runtime use, at
    /// the end of each work cycle).
    pub(crate) fn emit_eow(&mut self) {
        for out in &mut self.outputs {
            let _ = out.outbox_tx.send(&self.env, OutMsg::Eow);
        }
    }

    /// Charge `work` seconds of reference-speed computation to this host's
    /// CPU (subject to its speed factor, other filter copies, and
    /// background jobs).
    pub fn compute(&mut self, work: SimDuration) {
        let span = self
            .trace
            .as_ref()
            .map(|(t, who)| (t.clone(), t.begin(&self.env, "compute", who.clone())));
        let t0 = self.env.now();
        self.topo.host(self.info.host).cpu.compute(&self.env, work);
        let elapsed = self.env.now() - t0;
        {
            let mut m = self.metrics.lock();
            m.work += work;
            m.compute_elapsed += elapsed;
        }
        if let Some((t, s)) = span {
            t.end(&self.env, s);
        }
    }

    /// Read `bytes` from local disk `disk_index` (modulo the host's disk
    /// count), blocking for queueing + service time. `sequential` skips
    /// most of the positioning overhead (continuation of a file scan).
    pub fn disk_read(&mut self, disk_index: usize, bytes: u64, sequential: bool) {
        let host = self.topo.host(self.info.host);
        assert!(
            !host.disks.is_empty(),
            "host {:?} has no disks",
            self.info.host
        );
        let t0 = self.env.now();
        let disk = &host.disks[disk_index % host.disks.len()];
        if sequential {
            disk.read_seq(&self.env, bytes);
        } else {
            disk.read(&self.env, bytes);
        }
        let elapsed = self.env.now() - t0;
        let mut m = self.metrics.lock();
        m.disk_bytes += bytes;
        m.disk_elapsed += elapsed;
    }

    /// The cluster topology (placement-aware filters may inspect it).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}
