//! Camera: world → screen transform for the raster filters.

use serde::{Deserialize, Serialize};

use crate::math::{vec3, Mat4, Vec3};

/// A perspective camera with an integer viewport.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Camera {
    /// Eye position, world coordinates.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view, degrees.
    pub fovy_deg: f32,
    /// Output width in pixels.
    pub width: u32,
    /// Output height in pixels.
    pub height: u32,
    /// Near-plane distance; geometry closer than this is rejected.
    pub near: f32,
}

/// A vertex after projection: screen position plus view-space depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenVertex {
    /// Screen x, pixels (may fall outside the viewport before clipping).
    pub x: f32,
    /// Screen y, pixels (y grows downward).
    pub y: f32,
    /// View-space depth (distance along the view axis; larger = farther).
    pub depth: f32,
}

impl Camera {
    /// A camera looking at the center of a `dims`-point grid from a
    /// three-quarter direction, framed to contain the whole volume. The
    /// standard viewpoint for the experiments.
    pub fn framing(dims: volume::Dims, width: u32, height: u32) -> Camera {
        let c = vec3(
            (dims.nx - 1) as f32 / 2.0,
            (dims.ny - 1) as f32 / 2.0,
            (dims.nz - 1) as f32 / 2.0,
        );
        let radius = c.length(); // half-diagonal
        let dir = vec3(1.0, 0.8, 1.2).normalized();
        // Distance such that the bounding sphere fits a 30-degree fov:
        // r / tan(15 deg) ~= 3.73 r, plus margin.
        Camera {
            eye: c + dir * (radius * 4.0),
            target: c,
            up: vec3(0.0, 1.0, 0.0),
            fovy_deg: 30.0,
            width,
            height,
            near: 0.1,
        }
    }

    /// The world → view matrix.
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    /// Precompute the projection constants used by
    /// [`Projector::project`].
    pub fn projector(&self) -> Projector {
        let f = 1.0 / (self.fovy_deg.to_radians() / 2.0).tan();
        Projector {
            view: self.view_matrix(),
            fx: f * self.height as f32 / 2.0, // square pixels
            fy: f * self.height as f32 / 2.0,
            cx: self.width as f32 / 2.0,
            cy: self.height as f32 / 2.0,
            near: self.near,
        }
    }
}

/// Cached world→screen projection.
#[derive(Debug, Clone, Copy)]
pub struct Projector {
    view: Mat4,
    fx: f32,
    fy: f32,
    cx: f32,
    cy: f32,
    near: f32,
}

impl Projector {
    /// Project a world-space point; `None` when at/behind the near plane.
    pub fn project(&self, p: Vec3) -> Option<ScreenVertex> {
        let v = self.view.transform_point(p);
        let depth = -v.z; // camera looks down -z in view space
        if depth < self.near {
            return None;
        }
        Some(ScreenVertex {
            x: self.cx + self.fx * v.x / depth,
            y: self.cy - self.fy * v.y / depth,
            depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volume::Dims;

    fn cam() -> Camera {
        Camera {
            eye: vec3(0.0, 0.0, 10.0),
            target: Vec3::ZERO,
            up: vec3(0.0, 1.0, 0.0),
            fovy_deg: 90.0,
            width: 200,
            height: 100,
            near: 0.1,
        }
    }

    #[test]
    fn target_projects_to_center() {
        let p = cam().projector();
        let s = p.project(Vec3::ZERO).unwrap();
        assert!((s.x - 100.0).abs() < 1e-3);
        assert!((s.y - 50.0).abs() < 1e-3);
        assert!((s.depth - 10.0).abs() < 1e-4);
    }

    #[test]
    fn behind_camera_is_rejected() {
        let p = cam().projector();
        assert!(p.project(vec3(0.0, 0.0, 20.0)).is_none());
        assert!(p.project(vec3(0.0, 0.0, 9.85)).is_some()); // 0.15 > near
        assert!(p.project(vec3(0.0, 0.0, 9.95)).is_none()); // 0.05 < near
    }

    #[test]
    fn up_is_up_on_screen() {
        let p = cam().projector();
        let above = p.project(vec3(0.0, 1.0, 0.0)).unwrap();
        let below = p.project(vec3(0.0, -1.0, 0.0)).unwrap();
        assert!(above.y < below.y, "screen y grows downward");
    }

    #[test]
    fn right_is_right_on_screen() {
        let p = cam().projector();
        // Camera at +z looking at the origin with +y up: world +x appears
        // to the right.
        let right = p.project(vec3(1.0, 0.0, 0.0)).unwrap();
        let left = p.project(vec3(-1.0, 0.0, 0.0)).unwrap();
        assert!(right.x > left.x);
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let p = cam().projector();
        let near = p.project(vec3(0.0, 0.0, 5.0)).unwrap();
        let far = p.project(vec3(0.0, 0.0, -5.0)).unwrap();
        assert!(near.depth < far.depth);
    }

    #[test]
    fn framing_contains_volume_corners() {
        let dims = Dims::new(33, 33, 65);
        let cam = Camera::framing(dims, 256, 256);
        let p = cam.projector();
        for &corner in &[
            vec3(0.0, 0.0, 0.0),
            vec3(32.0, 0.0, 0.0),
            vec3(0.0, 32.0, 0.0),
            vec3(0.0, 0.0, 64.0),
            vec3(32.0, 32.0, 64.0),
        ] {
            let s = p.project(corner).expect("corner in front of camera");
            assert!(s.x >= 0.0 && s.x <= 256.0, "x {} out of frame", s.x);
            assert!(s.y >= 0.0 && s.y <= 256.0, "y {} out of frame", s.y);
        }
    }

    #[test]
    fn perspective_shrinks_with_distance() {
        let p = cam().projector();
        let near_span =
            p.project(vec3(1.0, 0.0, 5.0)).unwrap().x - p.project(vec3(-1.0, 0.0, 5.0)).unwrap().x;
        let far_span = p.project(vec3(1.0, 0.0, -5.0)).unwrap().x
            - p.project(vec3(-1.0, 0.0, -5.0)).unwrap().x;
        assert!(near_span > far_span);
    }
}
