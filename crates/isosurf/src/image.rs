//! RGB images and PPM output.

/// A simple row-major RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGB data.
    pub data: Vec<[u8; 3]>,
}

impl Image {
    /// A solid-color image.
    pub fn new(width: u32, height: u32, fill: [u8; 3]) -> Self {
        Image {
            width,
            height,
            data: vec![fill; width as usize * height as usize],
        }
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn at(&self, x: u32, y: u32) -> [u8; 3] {
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Set pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        let w = self.width as usize;
        self.data[y as usize * w + x as usize] = rgb;
    }

    /// Number of pixels differing from `other` (same size required).
    pub fn diff_pixels(&self, other: &Image) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "size mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .filter(|(a, b)| a != b)
            .count() as u64
    }

    /// Number of pixels not equal to `background`.
    pub fn coverage(&self, background: [u8; 3]) -> u64 {
        self.data.iter().filter(|&&p| p != background).count() as u64
    }

    /// Encode as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.data.len() * 3);
        for px in &self.data {
            out.extend_from_slice(px);
        }
        out
    }

    /// Write a PPM file.
    pub fn save_ppm(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_ppm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut img = Image::new(4, 3, [0, 0, 0]);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.at(2, 1), [10, 20, 30]);
        assert_eq!(img.at(0, 0), [0, 0, 0]);
    }

    #[test]
    fn diff_counts_changed_pixels() {
        let a = Image::new(2, 2, [0, 0, 0]);
        let mut b = a.clone();
        assert_eq!(a.diff_pixels(&b), 0);
        b.set(0, 0, [1, 1, 1]);
        b.set(1, 1, [2, 2, 2]);
        assert_eq!(a.diff_pixels(&b), 2);
    }

    #[test]
    fn coverage_ignores_background() {
        let mut img = Image::new(2, 2, [9, 9, 9]);
        assert_eq!(img.coverage([9, 9, 9]), 0);
        img.set(0, 1, [1, 2, 3]);
        assert_eq!(img.coverage([9, 9, 9]), 1);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2, [1, 2, 3]);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 18);
    }
}
