//! Whole-pipeline sequential rendering: the ground truth the distributed
//! pipelines (DataCutter and ADR) are checked against.

use volume::RectGrid;

use crate::active::{merge_batch, ActivePixelBuffer};
use crate::camera::Camera;
use crate::image::Image;
use crate::mc::{extract, Triangle};
use crate::raster::raster_triangle;
use crate::shade::Material;
use crate::zbuf::ZBuffer;

/// Background color of rendered images.
pub const BACKGROUND: [u8; 3] = [12, 12, 24];

/// Render `field` at isovalue `iso` sequentially with the dense z-buffer
/// algorithm. Reference implementation: single pass, no distribution.
pub fn render_zbuffer(field: &RectGrid, camera: &Camera, iso: f32, material: &Material) -> Image {
    let mut tris = Vec::new();
    extract(field, (0, 0, 0), iso, &mut tris);
    let mut zb = ZBuffer::new(camera.width, camera.height);
    raster_into_zbuffer(&tris, camera, material, &mut zb);
    zb.to_image(BACKGROUND)
}

/// Render `field` sequentially with the active-pixel algorithm (WPA
/// batches merged into a final buffer), with `wpa_capacity` entries per
/// batch. Must produce the same image as [`render_zbuffer`].
pub fn render_active_pixel(
    field: &RectGrid,
    camera: &Camera,
    iso: f32,
    material: &Material,
    wpa_capacity: usize,
) -> Image {
    let mut tris = Vec::new();
    extract(field, (0, 0, 0), iso, &mut tris);
    let proj = camera.projector();
    let mut ap = ActivePixelBuffer::new(camera.width, wpa_capacity);
    let mut target = ZBuffer::new(camera.width, camera.height);
    {
        let mut sink = |batch: Vec<crate::active::WinningPixel>| {
            merge_batch(&mut target, &batch);
        };
        for t in &tris {
            let _ = raster_triangle(
                &proj,
                camera.width,
                camera.height,
                material,
                t,
                |x, y, d, rgb| {
                    ap.plot(x, y, d, rgb, &mut sink);
                },
            );
        }
        ap.force_flush(&mut sink);
    }
    target.to_image(BACKGROUND)
}

/// [`render_zbuffer`] on an explicit pool: extraction is slab-parallel,
/// rasterization splits the triangle stream into contiguous per-lane
/// ranges landing in per-lane z-buffers, and the partial buffers
/// composite through the index-ordered tree reduction
/// ([`crate::zbuf::merge_many_with`]). Every depth test is a strict `<`
/// that keeps the earlier candidate, and lane ranges / reduction order
/// follow triangle stream order, so ties resolve exactly as in the
/// sequential renderer: the image is bit-identical.
pub fn render_zbuffer_with(
    pool: &crate::par::ThreadPool,
    field: &RectGrid,
    camera: &Camera,
    iso: f32,
    material: &Material,
) -> Image {
    let mut scratch = crate::mc::ExtractScratch::default();
    let mut tris = Vec::new();
    crate::mc::extract_with(pool, &mut scratch, field, (0, 0, 0), iso, &mut tris);
    let mut bufs: Vec<ZBuffer> = (0..pool.threads())
        .map(|_| ZBuffer::new(camera.width, camera.height))
        .collect();
    let proj = camera.projector();
    let ptr = crate::par::SendPtr::new(bufs.as_mut_ptr());
    crate::par::for_each_band(pool, tris.len(), &|lane, range| {
        // SAFETY: lane indices are distinct per broadcast, so each lane
        // writes only its own buffer.
        let zb = unsafe { &mut *ptr.get().add(lane) };
        for t in &tris[range] {
            let _ = raster_triangle(
                &proj,
                camera.width,
                camera.height,
                material,
                t,
                |x, y, d, rgb| {
                    zb.plot(x, y, d, rgb);
                },
            );
        }
    });
    crate::zbuf::merge_many_with(pool, &mut bufs);
    bufs[0].to_image(BACKGROUND)
}

/// Rasterize a triangle batch into an existing z-buffer (the z-buffer
/// raster filter's inner loop). Returns pixels generated.
pub fn raster_into_zbuffer(
    tris: &[Triangle],
    camera: &Camera,
    material: &Material,
    zb: &mut ZBuffer,
) -> u64 {
    let proj = camera.projector();
    let mut pixels = 0;
    for t in tris {
        if let Some(p) = raster_triangle(
            &proj,
            camera.width,
            camera.height,
            material,
            t,
            |x, y, d, rgb| {
                zb.plot(x, y, d, rgb);
            },
        ) {
            pixels += p;
        }
    }
    pixels
}

#[cfg(test)]
mod tests {
    use super::*;
    use volume::Dims;

    fn sphere(n: u32, r: f32) -> RectGrid {
        let c = (n - 1) as f32 / 2.0;
        RectGrid::from_fn(Dims::new(n, n, n), |x, y, z| {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            let dz = z as f32 - c;
            r - (dx * dx + dy * dy + dz * dz).sqrt()
        })
    }

    #[test]
    fn zbuffer_renders_something() {
        let f = sphere(17, 5.0);
        let cam = Camera::framing(f.dims, 96, 96);
        let img = render_zbuffer(&f, &cam, 0.0, &Material::default());
        assert!(
            img.coverage(BACKGROUND) > 100,
            "coverage {}",
            img.coverage(BACKGROUND)
        );
    }

    #[test]
    fn active_pixel_matches_zbuffer_exactly() {
        let f = sphere(17, 5.0);
        let cam = Camera::framing(f.dims, 96, 96);
        let m = Material::default();
        let zi = render_zbuffer(&f, &cam, 0.0, &m);
        for cap in [7usize, 64, 4096] {
            let ai = render_active_pixel(&f, &cam, 0.0, &m, cap);
            assert_eq!(zi.diff_pixels(&ai), 0, "wpa capacity {cap}");
        }
    }

    #[test]
    fn parallel_render_is_bit_identical_to_sequential() {
        let f = sphere(21, 6.5);
        let cam = Camera::framing(f.dims, 80, 80);
        let m = Material::default();
        let seq = render_zbuffer(&f, &cam, 0.0, &m);
        for threads in [1usize, 2, 3, 4] {
            let pool = crate::par::ThreadPool::new(threads);
            let par = render_zbuffer_with(&pool, &f, &cam, 0.0, &m);
            assert_eq!(seq.diff_pixels(&par), 0, "{threads} threads");
        }
    }

    #[test]
    fn sphere_image_is_roughly_round() {
        let f = sphere(25, 8.0);
        let cam = Camera::framing(f.dims, 128, 128);
        let img = render_zbuffer(&f, &cam, 0.0, &Material::default());
        let cov = img.coverage(BACKGROUND) as f64;
        // Projected disk should fill a plausible fraction of the frame.
        assert!(cov > 500.0 && cov < 128.0 * 128.0 * 0.9, "coverage {cov}");
    }
}
