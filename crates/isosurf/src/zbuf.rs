//! Dense z-buffer hidden-surface removal (the paper's **Z-buffer
//! rendering** algorithm).
//!
//! Each entry stores `(depth, color)` for one pixel of the image plane.
//! Raster filter copies each hold a full z-buffer, flush it wholesale at
//! end-of-work, and the merge filter folds incoming buffers in with a
//! per-pixel depth test. Merging is commutative and associative, so the
//! final image is independent of copy count and arrival order — the
//! "generalized reduction" property.

use crate::image::Image;

/// Wire bytes per z-buffer entry when shipped to the merge filter
/// (f32 depth + RGB color + pad), matching the paper's observation that
/// z-buffer merging transmits *every* pixel location, active or not.
pub const ZBUF_ENTRY_WIRE_BYTES: u64 = 8;

/// Depth value of an untouched (inactive) pixel.
pub const EMPTY_DEPTH: f32 = f32::INFINITY;

/// Pixels below which [`ZBuffer::merge`] stays serial (band fan-out costs
/// more than the fold on small images).
const PAR_MIN_PIXELS: usize = 64 * 1024;

/// A dense depth+color buffer over the whole image plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ZBuffer {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Per-pixel depth, row-major; `EMPTY_DEPTH` marks inactive pixels.
    pub depth: Vec<f32>,
    /// Per-pixel color, row-major.
    pub color: Vec<[u8; 3]>,
}

impl ZBuffer {
    /// An empty buffer (all pixels inactive).
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        ZBuffer {
            width,
            height,
            depth: vec![EMPTY_DEPTH; n],
            color: vec![[0, 0, 0]; n],
        }
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Depth-test-and-set one pixel; keeps the nearest surface. Returns
    /// whether the candidate won.
    #[inline]
    pub fn plot(&mut self, x: u32, y: u32, depth: f32, rgb: [u8; 3]) -> bool {
        let i = self.idx(x, y);
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.color[i] = rgb;
            true
        } else {
            false
        }
    }

    /// Fold `other` into `self`, keeping the nearest surface per pixel.
    ///
    /// With the default-on `parallel` feature, large buffers merge in
    /// row bands on the [global pool](crate::par::ThreadPool::global);
    /// the depth test is element-wise, so the result is bit-identical to
    /// [`merge_serial`](Self::merge_serial).
    pub fn merge(&mut self, other: &ZBuffer) {
        #[cfg(feature = "parallel")]
        {
            let pool = crate::par::ThreadPool::global();
            if pool.threads() > 1 && self.depth.len() >= PAR_MIN_PIXELS {
                return self.merge_with(pool, other);
            }
        }
        self.merge_serial(other);
    }

    /// Serial reference merge; always available.
    pub fn merge_serial(&mut self, other: &ZBuffer) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "size mismatch"
        );
        for i in 0..self.depth.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.color[i] = other.color[i];
            }
        }
    }

    /// [`merge`](Self::merge) on an explicit pool: each lane folds one
    /// contiguous band of pixels. Ties keep `self` (strict `<` test), same
    /// as the serial kernel, and bands are disjoint, so the result is
    /// bit-identical regardless of thread count.
    pub fn merge_with(&mut self, pool: &crate::par::ThreadPool, other: &ZBuffer) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "size mismatch"
        );
        if pool.threads() <= 1 {
            return self.merge_serial(other);
        }
        let len = self.depth.len();
        let depth = crate::par::SendPtr::new(self.depth.as_mut_ptr());
        let color = crate::par::SendPtr::new(self.color.as_mut_ptr());
        let od = &other.depth[..len];
        let oc = &other.color[..len];
        crate::par::for_each_band(pool, len, &|_, band| {
            // SAFETY: bands are disjoint index ranges of `self`'s buffers,
            // so each element is written by at most one lane.
            let d =
                unsafe { std::slice::from_raw_parts_mut(depth.get().add(band.start), band.len()) };
            let c =
                unsafe { std::slice::from_raw_parts_mut(color.get().add(band.start), band.len()) };
            for (k, j) in band.enumerate() {
                if od[j] < d[k] {
                    d[k] = od[j];
                    c[k] = oc[j];
                }
            }
        });
    }

    /// Number of active (written) pixels.
    pub fn active_pixels(&self) -> u64 {
        self.depth.iter().filter(|&&d| d != EMPTY_DEPTH).count() as u64
    }

    /// Total wire bytes to ship this buffer (dense: every pixel).
    pub fn wire_bytes(&self) -> u64 {
        self.depth.len() as u64 * ZBUF_ENTRY_WIRE_BYTES
    }

    /// Extract the final image over `background`.
    pub fn to_image(&self, background: [u8; 3]) -> Image {
        let mut img = Image::new(self.width, self.height, background);
        for (i, &d) in self.depth.iter().enumerate() {
            if d != EMPTY_DEPTH {
                img.data[i] = self.color[i];
            }
        }
        img
    }
}

/// Reduce `bufs` into `bufs[0]`, keeping the nearest surface per pixel.
///
/// This is a plain serial left-to-right fold. An earlier revision
/// auto-dispatched large inputs to the [`merge_many_with`] tree reduction,
/// but BENCH_kernels.json showed the tree *regressing* the fold at every
/// thread count tried (2–8 threads ≈ 36 ms vs ≈ 23 ms serial on the bench
/// image): the kernel is memory-bound and the tree touches every
/// intermediate buffer once per round instead of streaming each buffer
/// through the single destination exactly once. The auto-dispatch (and its
/// threshold plumbing) is retired; callers that really want the tree on an
/// explicit pool can still call [`merge_many_with`] directly. The preferred
/// way to parallelize merging is across *tiles* (disjoint image regions),
/// not across buffers — see the tile-hash compositing pipeline in `dcapp`.
pub fn merge_many(bufs: &mut [ZBuffer]) {
    merge_many_serial(bufs);
}

/// Serial left-to-right fold of `bufs` into `bufs[0]`; always available.
pub fn merge_many_serial(bufs: &mut [ZBuffer]) {
    if bufs.is_empty() {
        return;
    }
    let (dst, rest) = bufs.split_at_mut(1);
    for b in rest {
        dst[0].merge_serial(b);
    }
}

/// [`merge_many`] on an explicit pool: a binary tree reduction with the
/// pairs of each round merged concurrently (each pair serially). Round
/// `g` merges buffer `i + g` into buffer `i` for `i ≡ 0 (mod 2g)`; the
/// destination always has the lower index, so ties resolve exactly as in
/// the serial fold.
pub fn merge_many_with(pool: &crate::par::ThreadPool, bufs: &mut [ZBuffer]) {
    let n = bufs.len();
    if n < 2 {
        return;
    }
    if pool.threads() <= 1 {
        return merge_many_serial(bufs);
    }
    let ptr = crate::par::SendPtr::new(bufs.as_mut_ptr());
    let mut gap = 1usize;
    while gap < n {
        let pairs: Vec<usize> = (0..n).step_by(2 * gap).filter(|i| i + gap < n).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        pool.broadcast(&|_| loop {
            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k >= pairs.len() {
                break;
            }
            let i = pairs[k];
            // SAFETY: within a round, pair (i, i+gap) index sets are
            // disjoint across pairs, so each buffer is touched by exactly
            // one lane.
            let dst = unsafe { &mut *ptr.get().add(i) };
            let src = unsafe { &*ptr.get().add(i + gap) };
            dst.merge_serial(src);
        });
        gap *= 2;
    }
}

/// Composite a row-major `(depth, color)` span into `dst` starting at row
/// `row0` *of `dst`*, keeping the nearest surface per pixel (strict `<`,
/// ties keep `dst` — the same test every other merge kernel applies, so
/// tile-local compositing stays bit-identical to a whole-image fold).
///
/// This is the band kernel of tile-owned compositing: a merge copy holds
/// one small [`ZBuffer`] per owned tile and folds incoming row-strip
/// fragments at their tile-local offset. The span must be whole rows
/// (`depth.len()` a multiple of `dst.width`).
pub fn merge_rows(dst: &mut ZBuffer, row0: u32, depth: &[f32], color: &[[u8; 3]]) {
    assert_eq!(depth.len(), color.len(), "span length mismatch");
    assert!(
        depth.len().is_multiple_of(dst.width.max(1) as usize),
        "span must be whole rows"
    );
    let base = row0 as usize * dst.width as usize;
    assert!(
        base + depth.len() <= dst.depth.len(),
        "span exceeds destination"
    );
    for (i, &d) in depth.iter().enumerate() {
        if d != EMPTY_DEPTH && d < dst.depth[base + i] {
            dst.depth[base + i] = d;
            dst.color[base + i] = color[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_keeps_nearest() {
        let mut zb = ZBuffer::new(4, 4);
        assert!(zb.plot(1, 1, 5.0, [10, 0, 0]));
        assert!(!zb.plot(1, 1, 7.0, [0, 20, 0])); // farther: rejected
        assert!(zb.plot(1, 1, 3.0, [0, 0, 30])); // nearer: wins
        assert_eq!(zb.color[5], [0, 0, 30]);
        assert_eq!(zb.active_pixels(), 1);
    }

    #[test]
    fn merge_keeps_nearest_per_pixel() {
        let mut a = ZBuffer::new(2, 1);
        let mut b = ZBuffer::new(2, 1);
        a.plot(0, 0, 1.0, [1, 1, 1]);
        a.plot(1, 0, 9.0, [9, 9, 9]);
        b.plot(0, 0, 5.0, [5, 5, 5]);
        b.plot(1, 0, 2.0, [2, 2, 2]);
        a.merge(&b);
        assert_eq!(a.color[0], [1, 1, 1]);
        assert_eq!(a.color[1], [2, 2, 2]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ZBuffer::new(3, 3);
        let mut b = ZBuffer::new(3, 3);
        a.plot(0, 0, 1.0, [1, 0, 0]);
        a.plot(1, 1, 4.0, [2, 0, 0]);
        b.plot(1, 1, 3.0, [3, 0, 0]);
        b.plot(2, 2, 7.0, [4, 0, 0]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let mut bufs: Vec<ZBuffer> = (0..3).map(|_| ZBuffer::new(2, 2)).collect();
        bufs[0].plot(0, 0, 3.0, [1, 0, 0]);
        bufs[1].plot(0, 0, 2.0, [2, 0, 0]);
        bufs[2].plot(0, 0, 1.0, [3, 0, 0]);
        bufs[1].plot(1, 1, 5.0, [4, 0, 0]);

        let mut left = bufs[0].clone();
        left.merge(&bufs[1]);
        left.merge(&bufs[2]);

        let mut right = bufs[1].clone();
        right.merge(&bufs[2]);
        let mut right_total = bufs[0].clone();
        right_total.merge(&right);

        assert_eq!(left, right_total);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_size_mismatch_panics() {
        let mut a = ZBuffer::new(2, 2);
        let b = ZBuffer::new(3, 2);
        a.merge(&b);
    }

    #[test]
    fn to_image_uses_background_for_inactive() {
        let mut zb = ZBuffer::new(2, 1);
        zb.plot(0, 0, 1.0, [255, 0, 0]);
        let img = zb.to_image([7, 8, 9]);
        assert_eq!(img.data[0], [255, 0, 0]);
        assert_eq!(img.data[1], [7, 8, 9]);
    }

    /// Deterministic pseudo-random buffer with duplicate depths so ties
    /// actually occur.
    fn noisy(w: u32, h: u32, seed: u64) -> ZBuffer {
        let mut zb = ZBuffer::new(w, h);
        let mut s = seed;
        for i in 0..zb.depth.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (s >> 33) as u32;
            if !r.is_multiple_of(3) {
                // Coarse depth quantization → plenty of exact ties.
                zb.depth[i] = (r % 16) as f32;
                zb.color[i] = [(r >> 8) as u8, (r >> 16) as u8, (r >> 24) as u8];
            }
        }
        zb
    }

    #[test]
    fn parallel_merge_is_bit_identical_to_serial() {
        let base = noisy(256, 300, 1); // ≥ PAR_MIN_PIXELS
        let other = noisy(256, 300, 2);
        let mut serial = base.clone();
        serial.merge_serial(&other);
        for threads in [1usize, 2, 3, 4] {
            let pool = crate::par::ThreadPool::new(threads);
            let mut par = base.clone();
            par.merge_with(&pool, &other);
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn merge_many_tree_matches_serial_fold() {
        for n in [1usize, 2, 3, 5, 8, 9] {
            let bufs: Vec<ZBuffer> = (0..n).map(|i| noisy(64, 64, i as u64 + 10)).collect();
            let mut serial = bufs.clone();
            merge_many_serial(&mut serial);
            for threads in [2usize, 4] {
                let pool = crate::par::ThreadPool::new(threads);
                let mut tree = bufs.clone();
                merge_many_with(&pool, &mut tree);
                assert_eq!(serial[0], tree[0], "n={n} threads={threads}");
            }
            // `merge_many` is the serial fold by definition now; keep the
            // assertion so a future re-dispatch must stay bit-identical.
            let mut auto = bufs.clone();
            merge_many(&mut auto);
            assert_eq!(serial[0], auto[0], "n={n} auto");
        }
    }

    #[test]
    fn merge_many_ties_keep_lowest_buffer_index() {
        // All buffers plot the same pixel at the same depth; the serial
        // fold keeps buffer 0, and the tree reduction must agree.
        let mut bufs: Vec<ZBuffer> = (0..6)
            .map(|i| {
                let mut z = ZBuffer::new(4, 4);
                z.plot(2, 2, 1.0, [i as u8, 0, 0]);
                z
            })
            .collect();
        let pool = crate::par::ThreadPool::new(4);
        merge_many_with(&pool, &mut bufs);
        assert_eq!(bufs[0].color[2 * 4 + 2], [0, 0, 0]);
    }

    #[test]
    fn merge_rows_matches_whole_buffer_merge() {
        // Splitting a buffer into row strips and compositing each strip at
        // its offset must equal merging the whole buffer at once.
        let base = noisy(16, 12, 40);
        let other = noisy(16, 12, 41);
        let mut whole = base.clone();
        whole.merge_serial(&other);
        for strip in [1u32, 3, 5, 12] {
            let mut tiled = base.clone();
            let mut y = 0u32;
            while y < 12 {
                let rows = strip.min(12 - y);
                let a = y as usize * 16;
                let b = (y + rows) as usize * 16;
                merge_rows(&mut tiled, y, &other.depth[a..b], &other.color[a..b]);
                y += rows;
            }
            assert_eq!(whole, tiled, "strip={strip}");
        }
    }

    #[test]
    fn merge_rows_ties_keep_destination() {
        let mut dst = ZBuffer::new(2, 2);
        dst.plot(0, 1, 4.0, [1, 1, 1]);
        let depth = [4.0, EMPTY_DEPTH];
        let color = [[9, 9, 9], [0, 0, 0]];
        merge_rows(&mut dst, 1, &depth, &color);
        assert_eq!(dst.color[2], [1, 1, 1], "equal depth keeps destination");
    }

    #[test]
    fn wire_bytes_are_dense() {
        let zb = ZBuffer::new(16, 16);
        assert_eq!(zb.wire_bytes(), 256 * ZBUF_ENTRY_WIRE_BYTES);
        // Independent of activity:
        let mut zb2 = ZBuffer::new(16, 16);
        zb2.plot(0, 0, 1.0, [1, 1, 1]);
        assert_eq!(zb2.wire_bytes(), zb.wire_bytes());
    }
}
