//! Dense z-buffer hidden-surface removal (the paper's **Z-buffer
//! rendering** algorithm).
//!
//! Each entry stores `(depth, color)` for one pixel of the image plane.
//! Raster filter copies each hold a full z-buffer, flush it wholesale at
//! end-of-work, and the merge filter folds incoming buffers in with a
//! per-pixel depth test. Merging is commutative and associative, so the
//! final image is independent of copy count and arrival order — the
//! "generalized reduction" property.

use crate::image::Image;

/// Wire bytes per z-buffer entry when shipped to the merge filter
/// (f32 depth + RGB color + pad), matching the paper's observation that
/// z-buffer merging transmits *every* pixel location, active or not.
pub const ZBUF_ENTRY_WIRE_BYTES: u64 = 8;

/// Depth value of an untouched (inactive) pixel.
pub const EMPTY_DEPTH: f32 = f32::INFINITY;

/// A dense depth+color buffer over the whole image plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ZBuffer {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Per-pixel depth, row-major; `EMPTY_DEPTH` marks inactive pixels.
    pub depth: Vec<f32>,
    /// Per-pixel color, row-major.
    pub color: Vec<[u8; 3]>,
}

impl ZBuffer {
    /// An empty buffer (all pixels inactive).
    pub fn new(width: u32, height: u32) -> Self {
        let n = width as usize * height as usize;
        ZBuffer { width, height, depth: vec![EMPTY_DEPTH; n], color: vec![[0, 0, 0]; n] }
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Depth-test-and-set one pixel; keeps the nearest surface. Returns
    /// whether the candidate won.
    #[inline]
    pub fn plot(&mut self, x: u32, y: u32, depth: f32, rgb: [u8; 3]) -> bool {
        let i = self.idx(x, y);
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.color[i] = rgb;
            true
        } else {
            false
        }
    }

    /// Fold `other` into `self`, keeping the nearest surface per pixel.
    pub fn merge(&mut self, other: &ZBuffer) {
        assert_eq!((self.width, self.height), (other.width, other.height), "size mismatch");
        for i in 0..self.depth.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.color[i] = other.color[i];
            }
        }
    }

    /// Number of active (written) pixels.
    pub fn active_pixels(&self) -> u64 {
        self.depth.iter().filter(|&&d| d != EMPTY_DEPTH).count() as u64
    }

    /// Total wire bytes to ship this buffer (dense: every pixel).
    pub fn wire_bytes(&self) -> u64 {
        self.depth.len() as u64 * ZBUF_ENTRY_WIRE_BYTES
    }

    /// Extract the final image over `background`.
    pub fn to_image(&self, background: [u8; 3]) -> Image {
        let mut img = Image::new(self.width, self.height, background);
        for (i, &d) in self.depth.iter().enumerate() {
            if d != EMPTY_DEPTH {
                img.data[i] = self.color[i];
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_keeps_nearest() {
        let mut zb = ZBuffer::new(4, 4);
        assert!(zb.plot(1, 1, 5.0, [10, 0, 0]));
        assert!(!zb.plot(1, 1, 7.0, [0, 20, 0])); // farther: rejected
        assert!(zb.plot(1, 1, 3.0, [0, 0, 30])); // nearer: wins
        assert_eq!(zb.color[5], [0, 0, 30]);
        assert_eq!(zb.active_pixels(), 1);
    }

    #[test]
    fn merge_keeps_nearest_per_pixel() {
        let mut a = ZBuffer::new(2, 1);
        let mut b = ZBuffer::new(2, 1);
        a.plot(0, 0, 1.0, [1, 1, 1]);
        a.plot(1, 0, 9.0, [9, 9, 9]);
        b.plot(0, 0, 5.0, [5, 5, 5]);
        b.plot(1, 0, 2.0, [2, 2, 2]);
        a.merge(&b);
        assert_eq!(a.color[0], [1, 1, 1]);
        assert_eq!(a.color[1], [2, 2, 2]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ZBuffer::new(3, 3);
        let mut b = ZBuffer::new(3, 3);
        a.plot(0, 0, 1.0, [1, 0, 0]);
        a.plot(1, 1, 4.0, [2, 0, 0]);
        b.plot(1, 1, 3.0, [3, 0, 0]);
        b.plot(2, 2, 7.0, [4, 0, 0]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let mut bufs: Vec<ZBuffer> = (0..3).map(|_| ZBuffer::new(2, 2)).collect();
        bufs[0].plot(0, 0, 3.0, [1, 0, 0]);
        bufs[1].plot(0, 0, 2.0, [2, 0, 0]);
        bufs[2].plot(0, 0, 1.0, [3, 0, 0]);
        bufs[1].plot(1, 1, 5.0, [4, 0, 0]);

        let mut left = bufs[0].clone();
        left.merge(&bufs[1]);
        left.merge(&bufs[2]);

        let mut right = bufs[1].clone();
        right.merge(&bufs[2]);
        let mut right_total = bufs[0].clone();
        right_total.merge(&right);

        assert_eq!(left, right_total);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_size_mismatch_panics() {
        let mut a = ZBuffer::new(2, 2);
        let b = ZBuffer::new(3, 2);
        a.merge(&b);
    }

    #[test]
    fn to_image_uses_background_for_inactive() {
        let mut zb = ZBuffer::new(2, 1);
        zb.plot(0, 0, 1.0, [255, 0, 0]);
        let img = zb.to_image([7, 8, 9]);
        assert_eq!(img.data[0], [255, 0, 0]);
        assert_eq!(img.data[1], [7, 8, 9]);
    }

    #[test]
    fn wire_bytes_are_dense() {
        let zb = ZBuffer::new(16, 16);
        assert_eq!(zb.wire_bytes(), 256 * ZBUF_ENTRY_WIRE_BYTES);
        // Independent of activity:
        let mut zb2 = ZBuffer::new(16, 16);
        zb2.plot(0, 0, 1.0, [1, 1, 1]);
        assert_eq!(zb2.wire_bytes(), zb.wire_bytes());
    }
}
