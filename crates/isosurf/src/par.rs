//! Data-parallel runtime for the render kernels.
//!
//! A tiny, dependency-free fork/join pool: `N` workers parked on a
//! condition variable, woken to run one shared closure per *broadcast*
//! (each worker receives its index), with the caller blocked until every
//! worker finishes. Because the caller blocks, the closure may borrow from
//! the caller's stack — the same contract as scoped threads, amortizing
//! thread spawn cost across calls.
//!
//! Kernels ([`crate::mc::extract`], [`crate::zbuf::ZBuffer::merge`],
//! [`crate::active::merge_batch`]) use the [`global`](ThreadPool::global)
//! pool by default (gated by the default-on `parallel` cargo feature) and
//! accept an explicit pool in their `*_with` variants so benchmarks can
//! sweep thread counts. All parallel decompositions in this crate are
//! *deterministic*: they partition work so results are bit-identical to
//! the serial kernels regardless of scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A broadcast job: a type-erased pointer to the caller's closure. The
/// caller blocks inside [`ThreadPool::broadcast`] until every worker has
/// finished, so the pointee outlives all use.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` and the caller keeps it alive for the
// whole broadcast (it blocks until `remaining == 0`).
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    /// Bumped once per broadcast; workers run each generation exactly once.
    generation: u64,
    /// Workers that have not yet finished the current generation.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The caller waits here for `remaining` to reach zero.
    done_cv: Condvar,
    /// Set when a worker's closure panicked (the caller re-panics).
    panicked: AtomicBool,
}

/// A persistent fork/join worker pool. See the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool running jobs on `threads` lanes. `threads <= 1` spawns no
    /// workers at all: broadcasts run inline on the caller.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let workers = if threads > 1 {
            (0..threads)
                .map(|i| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("isosurf-par-{i}"))
                        .spawn(move || worker(shared, i))
                        .expect("spawn pool worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        ThreadPool { shared, workers }
    }

    /// Number of parallel lanes `broadcast` runs (at least 1).
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }

    /// The process-wide pool, sized from `ISOSURF_THREADS` if set, else
    /// the machine's available parallelism. Built on first use.
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let n = std::env::var("ISOSURF_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            ThreadPool::new(n)
        })
    }

    /// Run `f(lane)` once on every lane (`0..threads()`), blocking until
    /// all lanes finish. Concurrent broadcasts from different threads are
    /// serialized; nested broadcasts from inside a job would deadlock and
    /// must not be issued (kernels only ever call serial code in jobs).
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let n = self.workers.len();
        if n == 0 {
            f(0);
            return;
        }
        // SAFETY: we erase the borrow's lifetime; the closure stays alive
        // because this function does not return until every worker is done
        // with it.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
            },
        };
        let mut st = self.shared.state.lock().expect("pool lock");
        // Serialize with any in-flight broadcast from another thread.
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("pool lock");
        }
        st.job = Some(job);
        st.generation += 1;
        st.remaining = n;
        self.shared.work_cv.notify_all();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).expect("pool lock");
        }
        st.job = None;
        drop(st);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("a ThreadPool worker panicked during broadcast");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker(shared: Arc<Shared>, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("job set with generation");
                }
                st = shared.work_cv.wait(st).expect("pool lock");
            }
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: the broadcasting thread keeps the closure alive until
            // `remaining` reaches zero, which happens strictly after this
            // call returns.
            (unsafe { &*job.f })(index)
        }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        let mut st = shared.state.lock().expect("pool lock");
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Split `0..len` into one contiguous band per pool lane (earlier bands
/// take the remainder) and run `f(lane, band)` on each non-empty band in
/// parallel. Band boundaries depend only on `len` and `pool.threads()`,
/// never on scheduling.
pub fn for_each_band(pool: &ThreadPool, len: usize, f: &(dyn Fn(usize, Range<usize>) + Sync)) {
    let t = pool.threads();
    if t <= 1 || len == 0 {
        if len > 0 {
            f(0, 0..len);
        }
        return;
    }
    pool.broadcast(&|lane| {
        let band = band_of(len, t, lane);
        if !band.is_empty() {
            f(lane, band);
        }
    });
}

/// The `lane`-th of `t` contiguous bands covering `0..len`.
pub(crate) fn band_of(len: usize, t: usize, lane: usize) -> Range<usize> {
    let base = len / t;
    let rem = len % t;
    let start = lane * base + lane.min(rem);
    let extent = base + usize::from(lane < rem);
    start..(start + extent).min(len)
}

/// A raw pointer assertable as `Send + Sync`, for kernels that hand each
/// worker a *disjoint* region of one buffer. Safety rests entirely on the
/// disjointness argument at each use site. The pointer is reached via
/// [`get`](SendPtr::get) rather than a public field so closures capture
/// the `Sync` wrapper, not the bare pointer.
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_every_lane() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let hits = AtomicUsize::new(0);
            pool.broadcast(&|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), pool.threads());
        }
    }

    #[test]
    fn broadcasts_are_reusable() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(&|lane| {
                total.fetch_add(lane + 1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 50 * (1 + 2 + 3));
    }

    #[test]
    fn bands_partition_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 3, 8, 13] {
                let mut covered = vec![false; len];
                for lane in 0..t {
                    for i in band_of(len, t, lane) {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "len {len} t {t} not covered");
            }
        }
    }

    #[test]
    fn for_each_band_sums_match() {
        let data: Vec<u64> = (0..10_000).collect();
        let expect: u64 = data.iter().sum();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let total = std::sync::atomic::AtomicU64::new(0);
            for_each_band(&pool, data.len(), &|_, r| {
                let s: u64 = data[r].iter().sum();
                total.fetch_add(s, Ordering::SeqCst);
            });
            assert_eq!(total.load(Ordering::SeqCst), expect);
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|lane| {
                if lane == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool still works afterwards.
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let id = std::thread::current().id();
        pool.broadcast(&|_| {
            assert_eq!(std::thread::current().id(), id);
        });
    }
}
