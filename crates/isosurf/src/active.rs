//! Sparse hidden-surface removal (the paper's **Active Pixel rendering**
//! algorithm, after Kurc et al.).
//!
//! Instead of a dense z-buffer, winning pixels are stored compactly in a
//! **Winning Pixel Array** (WPA) whose entries carry their screen position,
//! and a **Modified Scanline Array** (MSA) — one slot per screen column —
//! indexes the WPA for the scanline currently being rasterized so repeated
//! hits on the same location update in place. When the WPA fills (it is
//! sized to one output stream buffer) it is flushed downstream immediately,
//! which is what lets rasterization overlap with merging and removes the
//! z-buffer algorithm's end-of-work synchronization point.

use serde::{Deserialize, Serialize};

use crate::zbuf::ZBuffer;

/// One winning pixel on the wire: position, depth, color.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WinningPixel {
    /// Screen x.
    pub x: u16,
    /// Screen y.
    pub y: u16,
    /// View-space depth.
    pub depth: f32,
    /// Shaded color.
    pub rgb: [u8; 3],
}

/// Wire bytes per WPA entry (2+2 position, 4 depth, 3 color, 1 pad).
pub const WPA_ENTRY_WIRE_BYTES: u64 = 12;

/// MSA slot: which WPA entry column `x` most recently used, and for which
/// scanline, with an epoch to invalidate stale slots after a flush.
#[derive(Debug, Clone, Copy)]
struct MsaSlot {
    y: u16,
    wpa_index: u32,
    epoch: u32,
}

/// The active-pixel accumulator owned by one raster filter copy.
pub struct ActivePixelBuffer {
    width: u32,
    wpa: Vec<WinningPixel>,
    capacity: usize,
    msa: Vec<MsaSlot>,
    epoch: u32,
    /// Consumed output vectors returned via [`supply`](Self::supply);
    /// flushes reuse these instead of allocating.
    spare: Vec<Vec<WinningPixel>>,
    /// Pixels plotted (candidates), for stats.
    pub plotted: u64,
    /// In-place WPA updates (dedup hits), for stats.
    pub dedup_hits: u64,
}

impl ActivePixelBuffer {
    /// `width` is the x-resolution of the screen (MSA size); `capacity` is
    /// the number of WPA entries per output buffer.
    pub fn new(width: u32, capacity: usize) -> Self {
        assert!(capacity >= 1);
        ActivePixelBuffer {
            width,
            wpa: Vec::with_capacity(capacity),
            capacity,
            msa: vec![
                MsaSlot {
                    y: 0,
                    wpa_index: 0,
                    epoch: 0
                };
                width as usize
            ],
            epoch: 1,
            spare: Vec::new(),
            plotted: 0,
            dedup_hits: 0,
        }
    }

    /// Return a consumed output vector for reuse by a later flush. In the
    /// steady state the downstream consumer feeds every flushed batch back
    /// here and the accumulator never allocates.
    pub fn supply(&mut self, mut v: Vec<WinningPixel>) {
        v.clear();
        if v.capacity() >= self.capacity {
            self.spare.push(v);
        }
    }

    /// Record a pixel candidate. If the WPA fills, the full batch is passed
    /// to `flush` and the WPA restarts empty.
    pub fn plot(
        &mut self,
        x: u32,
        y: u32,
        depth: f32,
        rgb: [u8; 3],
        flush: &mut impl FnMut(Vec<WinningPixel>),
    ) {
        debug_assert!(x < self.width);
        self.plotted += 1;
        let slot = self.msa[x as usize];
        if slot.epoch == self.epoch && slot.y == y as u16 {
            // MSA hit: column x was last touched on this same scanline in
            // the current WPA generation — update in place.
            let e = &mut self.wpa[slot.wpa_index as usize];
            if e.x as u32 == x && e.y as u32 == y {
                self.dedup_hits += 1;
                if depth < e.depth {
                    e.depth = depth;
                    e.rgb = rgb;
                }
                return;
            }
        }
        let idx = self.wpa.len() as u32;
        self.wpa.push(WinningPixel {
            x: x as u16,
            y: y as u16,
            depth,
            rgb,
        });
        self.msa[x as usize] = MsaSlot {
            y: y as u16,
            wpa_index: idx,
            epoch: self.epoch,
        };
        if self.wpa.len() >= self.capacity {
            self.force_flush(flush);
        }
    }

    /// Flush whatever the WPA holds (used at end of an input buffer and at
    /// end-of-work). No-op when empty.
    pub fn force_flush(&mut self, flush: &mut impl FnMut(Vec<WinningPixel>)) {
        if self.wpa.is_empty() {
            return;
        }
        let replacement = self
            .spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.capacity));
        let batch = std::mem::replace(&mut self.wpa, replacement);
        self.epoch = self.epoch.wrapping_add(1).max(1);
        flush(batch);
    }

    /// Entries currently pending in the WPA.
    pub fn pending(&self) -> usize {
        self.wpa.len()
    }
}

/// Batch length below which [`merge_batch`] stays serial (a typical WPA
/// buffer is a couple thousand entries — far too little to fan out).
const PAR_MIN_BATCH: usize = 16 * 1024;

/// Merge a batch of winning pixels into the final (dense) buffer held by
/// the merge filter. Commutative and associative with z-buffer merging, so
/// active-pixel and z-buffer pipelines produce identical images.
///
/// With the default-on `parallel` feature, very large batches fan out
/// over image row bands on the
/// [global pool](crate::par::ThreadPool::global), bit-identical to
/// [`merge_batch_serial`].
pub fn merge_batch(target: &mut ZBuffer, batch: &[WinningPixel]) {
    #[cfg(feature = "parallel")]
    {
        let pool = crate::par::ThreadPool::global();
        if pool.threads() > 1 && batch.len() >= PAR_MIN_BATCH && target.height >= 2 {
            return merge_batch_with(pool, target, batch);
        }
    }
    merge_batch_serial(target, batch);
}

/// Serial reference batch merge; always available.
pub fn merge_batch_serial(target: &mut ZBuffer, batch: &[WinningPixel]) {
    for wp in batch {
        target.plot(wp.x as u32, wp.y as u32, wp.depth, wp.rgb);
    }
}

/// [`merge_batch`] on an explicit pool: each lane scans the whole batch
/// and applies only the entries whose row falls in its band. Per-pixel
/// candidate order is therefore exactly the batch order — the same order
/// the serial kernel applies — so the result is bit-identical regardless
/// of thread count.
pub fn merge_batch_with(
    pool: &crate::par::ThreadPool,
    target: &mut ZBuffer,
    batch: &[WinningPixel],
) {
    if pool.threads() <= 1 {
        return merge_batch_serial(target, batch);
    }
    let w = target.width as usize;
    let depth = crate::par::SendPtr::new(target.depth.as_mut_ptr());
    let color = crate::par::SendPtr::new(target.color.as_mut_ptr());
    crate::par::for_each_band(pool, target.height as usize, &|_, rows| {
        for wp in batch {
            let y = wp.y as usize;
            if y >= rows.start && y < rows.end {
                let i = y * w + wp.x as usize;
                // SAFETY: row bands are disjoint, so pixel `i` is owned by
                // exactly one lane.
                unsafe {
                    if wp.depth < *depth.get().add(i) {
                        *depth.get().add(i) = wp.depth;
                        *color.get().add(i) = wp.rgb;
                    }
                }
            }
        }
    });
}

/// [`merge_batch_serial`] with a row offset: plot each winning pixel at
/// `(x, y - y_offset)` of `target`. This is the WPA kernel of tile-owned
/// compositing — a merge copy holds one small [`ZBuffer`] per owned tile
/// (a row strip of the image) and folds batches whose entries all fall in
/// that strip. Per-pixel candidate order is the batch order and the depth
/// test is the same strict `<`, so compositing per tile and stitching is
/// bit-identical to merging every batch into one whole-image buffer.
pub fn merge_batch_offset(target: &mut ZBuffer, y_offset: u32, batch: &[WinningPixel]) {
    for wp in batch {
        debug_assert!(wp.y as u32 >= y_offset, "entry above the tile");
        target.plot(wp.x as u32, wp.y as u32 - y_offset, wp.depth, wp.rgb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_batch_offset_matches_whole_image_merge() {
        // Route each entry to a 4-row tile buffer by offset merge, stitch,
        // and compare against a single whole-image merge.
        let mut batch = Vec::new();
        let mut s = 7u64;
        for _ in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (s >> 33) as u32;
            batch.push(WinningPixel {
                x: (r % 8) as u16,
                y: ((r >> 8) % 12) as u16,
                depth: ((r >> 16) % 4) as f32,
                rgb: [r as u8, (r >> 8) as u8, (r >> 16) as u8],
            });
        }
        let mut whole = ZBuffer::new(8, 12);
        merge_batch_serial(&mut whole, &batch);

        let mut tiles: Vec<ZBuffer> = (0..3).map(|_| ZBuffer::new(8, 4)).collect();
        for wp in &batch {
            let t = wp.y as usize / 4;
            merge_batch_offset(&mut tiles[t], t as u32 * 4, std::slice::from_ref(wp));
        }
        let mut stitched = ZBuffer::new(8, 12);
        for (t, tile) in tiles.iter().enumerate() {
            crate::zbuf::merge_rows(&mut stitched, t as u32 * 4, &tile.depth, &tile.color);
        }
        assert_eq!(whole, stitched);
    }

    #[test]
    fn flushes_when_capacity_reached() {
        let mut ap = ActivePixelBuffer::new(16, 4);
        let mut batches: Vec<Vec<WinningPixel>> = Vec::new();
        let mut sink = |b: Vec<WinningPixel>| batches.push(b);
        for i in 0..10u32 {
            ap.plot(i % 16, i / 16, 1.0, [1, 2, 3], &mut sink);
        }
        ap.force_flush(&mut sink);
        assert_eq!(batches.len(), 3); // 4 + 4 + 2
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
    }

    #[test]
    fn same_scanline_duplicates_dedup_in_place() {
        let mut ap = ActivePixelBuffer::new(8, 64);
        let mut batches = Vec::new();
        let mut sink = |b: Vec<WinningPixel>| batches.push(b);
        ap.plot(3, 5, 9.0, [9, 9, 9], &mut sink);
        ap.plot(3, 5, 4.0, [4, 4, 4], &mut sink); // nearer: replaces
        ap.plot(3, 5, 7.0, [7, 7, 7], &mut sink); // farther: ignored
        ap.force_flush(&mut sink);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[0][0].depth, 4.0);
        assert_eq!(batches[0][0].rgb, [4, 4, 4]);
        assert_eq!(ap.dedup_hits, 2);
    }

    #[test]
    fn different_scanlines_create_separate_entries() {
        let mut ap = ActivePixelBuffer::new(8, 64);
        let mut batches = Vec::new();
        let mut sink = |b: Vec<WinningPixel>| batches.push(b);
        ap.plot(3, 5, 1.0, [1, 1, 1], &mut sink);
        ap.plot(3, 6, 1.0, [2, 2, 2], &mut sink);
        ap.plot(3, 5, 0.5, [3, 3, 3], &mut sink); // MSA now points at y=6: new entry
        ap.force_flush(&mut sink);
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    fn flush_invalidates_msa() {
        let mut ap = ActivePixelBuffer::new(8, 1); // flush after every entry
        let mut batches = Vec::new();
        let mut sink = |b: Vec<WinningPixel>| batches.push(b);
        ap.plot(3, 5, 9.0, [9, 9, 9], &mut sink);
        // Same location again: previous entry was flushed, must not be
        // referenced.
        ap.plot(3, 5, 1.0, [1, 1, 1], &mut sink);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn merge_batches_resolves_duplicates() {
        let mut zb = ZBuffer::new(8, 8);
        merge_batch(
            &mut zb,
            &[
                WinningPixel {
                    x: 2,
                    y: 2,
                    depth: 5.0,
                    rgb: [5, 5, 5],
                },
                WinningPixel {
                    x: 2,
                    y: 2,
                    depth: 3.0,
                    rgb: [3, 3, 3],
                },
                WinningPixel {
                    x: 2,
                    y: 2,
                    depth: 8.0,
                    rgb: [8, 8, 8],
                },
            ],
        );
        assert_eq!(zb.active_pixels(), 1);
        assert_eq!(zb.to_image([0, 0, 0]).data[2 * 8 + 2], [3, 3, 3]);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let batch = [
            WinningPixel {
                x: 0,
                y: 0,
                depth: 2.0,
                rgb: [2, 0, 0],
            },
            WinningPixel {
                x: 0,
                y: 0,
                depth: 1.0,
                rgb: [1, 0, 0],
            },
            WinningPixel {
                x: 1,
                y: 0,
                depth: 4.0,
                rgb: [4, 0, 0],
            },
        ];
        let mut fwd = ZBuffer::new(2, 1);
        merge_batch(&mut fwd, &batch);
        let mut rev = ZBuffer::new(2, 1);
        let mut rbatch = batch.to_vec();
        rbatch.reverse();
        merge_batch(&mut rev, &rbatch);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn supplied_vectors_are_reused_by_flushes() {
        let mut ap = ActivePixelBuffer::new(16, 4);
        let returned: std::cell::RefCell<Vec<Vec<WinningPixel>>> = Default::default();
        let mut sink = |b: Vec<WinningPixel>| returned.borrow_mut().push(b);
        for i in 0..8u32 {
            ap.plot(i % 16, 0, 1.0, [0, 0, 0], &mut sink);
        }
        assert_eq!(returned.borrow().len(), 2);
        // Feed both batches back; record their buffer addresses.
        let addrs: Vec<*const WinningPixel> =
            returned.borrow().iter().map(|v| v.as_ptr()).collect();
        for v in returned.borrow_mut().drain(..) {
            ap.supply(v);
        }
        // The next flush ships the vector that was already installed as
        // the working WPA before the supply; rotate it out first.
        for i in 0..4u32 {
            ap.plot(i, 1, 1.0, [0, 0, 0], &mut sink);
        }
        returned.borrow_mut().clear();
        for i in 0..8u32 {
            ap.plot(i % 16, 2, 1.0, [0, 0, 0], &mut sink);
        }
        assert_eq!(returned.borrow().len(), 2);
        for v in returned.borrow().iter() {
            assert!(
                addrs.contains(&v.as_ptr()),
                "flush allocated a fresh vector"
            );
        }
    }

    #[test]
    fn parallel_merge_batch_is_bit_identical_to_serial() {
        // Duplicate positions with equal depths force tie-break coverage;
        // candidate order must decide, exactly as in the serial kernel.
        let mut batch = Vec::new();
        let mut s = 42u64;
        for _ in 0..20_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (s >> 33) as u32;
            batch.push(WinningPixel {
                x: (r % 64) as u16,
                y: ((r >> 8) % 96) as u16,
                depth: ((r >> 16) % 8) as f32,
                rgb: [r as u8, (r >> 8) as u8, (r >> 16) as u8],
            });
        }
        let mut serial = ZBuffer::new(64, 96);
        merge_batch_serial(&mut serial, &batch);
        for threads in [1usize, 2, 3, 4] {
            let pool = crate::par::ThreadPool::new(threads);
            let mut par = ZBuffer::new(64, 96);
            merge_batch_with(&pool, &mut par, &batch);
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn wire_bytes_track_active_pixels_only() {
        // The point of the algorithm: cost scales with activity.
        let batch = [WinningPixel {
            x: 0,
            y: 0,
            depth: 1.0,
            rgb: [0, 0, 0],
        }; 10];
        let bytes = batch.len() as u64 * WPA_ENTRY_WIRE_BYTES;
        assert_eq!(bytes, 120);
    }
}
