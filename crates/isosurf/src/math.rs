//! Minimal 3-D vector / 4×4 matrix math for the rendering pipeline.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component f32 vector (points and directions).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

/// Shorthand constructor.
pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction; returns `ZERO` for (near-)zero input.
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l <= 1e-12 {
            Vec3::ZERO
        } else {
            self / l
        }
    }

    /// Component-wise linear interpolation: `self + t * (o - self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

/// A column-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns.
    pub cols: [[f32; 4]; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Right-handed look-at view matrix (world → view).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = (target - eye).normalized(); // forward
        let s = f.cross(up).normalized(); // right
        let u = s.cross(f); // corrected up
        Mat4 {
            cols: [
                [s.x, u.x, -f.x, 0.0],
                [s.y, u.y, -f.y, 0.0],
                [s.z, u.z, -f.z, 0.0],
                [-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0],
            ],
        }
    }

    /// Matrix product `self * o`.
    pub fn mul_mat(&self, o: &Mat4) -> Mat4 {
        let mut cols = [[0.0f32; 4]; 4];
        for (c, col) in cols.iter_mut().enumerate() {
            for (r, cell) in col.iter_mut().enumerate() {
                *cell = (0..4).map(|k| self.cols[k][r] * o.cols[c][k]).sum();
            }
        }
        Mat4 { cols }
    }

    /// Transform a point (w = 1), returning the xyz of the result (no
    /// perspective divide — use for affine matrices).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let c = &self.cols;
        vec3(
            c[0][0] * p.x + c[1][0] * p.y + c[2][0] * p.z + c[3][0],
            c[0][1] * p.x + c[1][1] * p.y + c[2][1] * p.z + c[3][1],
            c[0][2] * p.x + c[1][2] * p.y + c[2][2] * p.z + c[3][2],
        )
    }

    /// Transform a direction (w = 0).
    pub fn transform_vec(&self, v: Vec3) -> Vec3 {
        let c = &self.cols;
        vec3(
            c[0][0] * v.x + c[1][0] * v.y + c[2][0] * v.z,
            c[0][1] * v.x + c[1][1] * v.y + c[2][1] * v.z,
            c[0][2] * v.x + c[1][2] * v.y + c[2][2] * v.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-5
    }

    #[test]
    fn vector_algebra() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.cross(b), vec3(-3.0, 6.0, -3.0));
        assert!((vec3(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-6);
        assert!(close(a.lerp(b, 0.5), vec3(2.5, 3.5, 4.5)));
    }

    #[test]
    fn normalize_handles_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        assert!((vec3(0.0, 0.0, 2.0).normalized().z - 1.0).abs() < 1e-6);
    }

    #[test]
    fn look_at_maps_eye_to_origin() {
        let m = Mat4::look_at(
            vec3(5.0, 3.0, 2.0),
            vec3(0.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        assert!(close(m.transform_point(vec3(5.0, 3.0, 2.0)), Vec3::ZERO));
    }

    #[test]
    fn look_at_target_is_on_negative_z() {
        let eye = vec3(0.0, 0.0, 10.0);
        let m = Mat4::look_at(eye, Vec3::ZERO, vec3(0.0, 1.0, 0.0));
        let t = m.transform_point(Vec3::ZERO);
        assert!(
            t.z < 0.0,
            "target should be in front (negative z), got {t:?}"
        );
        assert!(t.x.abs() < 1e-5 && t.y.abs() < 1e-5);
    }

    #[test]
    fn identity_multiplication() {
        let m = Mat4::look_at(vec3(1.0, 2.0, 3.0), Vec3::ZERO, vec3(0.0, 1.0, 0.0));
        let p = vec3(0.3, -0.7, 2.0);
        assert!(close(
            m.mul_mat(&Mat4::IDENTITY).transform_point(p),
            m.transform_point(p)
        ));
        assert!(close(
            Mat4::IDENTITY.mul_mat(&m).transform_point(p),
            m.transform_point(p)
        ));
    }

    #[test]
    fn transform_vec_ignores_translation() {
        let m = Mat4::look_at(
            vec3(100.0, 0.0, 0.0),
            vec3(101.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        let v = m.transform_vec(vec3(0.0, 1.0, 0.0));
        assert!((v.length() - 1.0).abs() < 1e-5);
    }
}
