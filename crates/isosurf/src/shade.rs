//! Flat shading of extracted triangles.

use serde::{Deserialize, Serialize};

use crate::math::{vec3, Vec3};

/// Surface appearance: base color plus simple directional lighting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Material {
    /// Base color, 0..=255 RGB.
    pub base: [u8; 3],
    /// Ambient term in `[0, 1]`.
    pub ambient: f32,
    /// Diffuse term in `[0, 1]`.
    pub diffuse: f32,
    /// Unit light direction (from surface toward the light).
    pub light: Vec3,
}

impl Default for Material {
    fn default() -> Self {
        Material {
            base: [220, 120, 60],
            ambient: 0.25,
            diffuse: 0.75,
            light: vec3(0.5, 0.7, 0.6).normalized(),
        }
    }
}

/// Per-species materials mirroring the four ParSSim chemical species.
pub fn species_material(species: u32) -> Material {
    let base = match species % 4 {
        0 => [220, 120, 60], // oxide orange
        1 => [70, 140, 220], // solute blue
        2 => [90, 200, 110], // biomass green
        _ => [200, 90, 200], // tracer magenta
    };
    Material {
        base,
        ..Material::default()
    }
}

/// Lambertian flat shade of a face with unit normal `n` (two-sided).
pub fn shade(m: &Material, n: Vec3) -> [u8; 3] {
    let lambert = n.dot(m.light).abs();
    let k = (m.ambient + m.diffuse * lambert).clamp(0.0, 1.0);
    [
        (m.base[0] as f32 * k) as u8,
        (m.base[1] as f32 * k) as u8,
        (m.base[2] as f32 * k) as u8,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facing_light_is_brightest() {
        let m = Material::default();
        let facing = shade(&m, m.light);
        let edge_on = shade(&m, vec3(m.light.y, -m.light.x, 0.0).normalized());
        assert!(facing[0] > edge_on[0]);
    }

    #[test]
    fn shading_is_two_sided() {
        let m = Material::default();
        assert_eq!(shade(&m, m.light), shade(&m, -m.light));
    }

    #[test]
    fn ambient_floor_is_respected() {
        let m = Material::default();
        let dark = shade(&m, vec3(m.light.y, -m.light.x, 0.0).normalized());
        assert!(dark[0] as f32 >= m.base[0] as f32 * m.ambient - 1.0);
    }

    #[test]
    fn species_materials_differ() {
        let colors: Vec<[u8; 3]> = (0..4).map(|s| species_material(s).base).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(colors[i], colors[j]);
            }
        }
        assert_eq!(species_material(5).base, species_material(1).base);
    }
}
