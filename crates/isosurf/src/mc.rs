//! Isosurface extraction (the paper's **extract** filter kernel).
//!
//! The paper uses the marching cubes algorithm [Lorensen & Cline]. We
//! implement the *tetrahedral-decomposition* variant of marching cubes
//! (often called marching tetrahedra): every cell is split into six
//! tetrahedra around the main diagonal, uniformly across the grid, and each
//! tetrahedron is polygonised from its 16-case table. This variant scans
//! voxels one at a time and processes each voxel independently — the exact
//! properties the paper's extract filter relies on for pipelining — while
//! avoiding the 256-entry case tables. The uniform decomposition is
//! face-consistent between neighbouring cells (and neighbouring *chunks*,
//! which share a point plane), so surfaces are watertight across chunk
//! boundaries.

use serde::{Deserialize, Serialize};

use volume::RectGrid;

use crate::math::{vec3, Vec3};

/// One extracted surface triangle in world (grid-unit) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Triangle {
    /// Vertices in world coordinates.
    pub v: [Vec3; 3],
    /// Unit normal, oriented away from the "inside" (value > isovalue).
    pub normal: Vec3,
}

/// Wire size of one triangle on a stream (3 vertices + normal, f32).
pub const TRIANGLE_WIRE_BYTES: u64 = 48;

/// Counters the cost model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractStats {
    /// Cells scanned.
    pub cells: u64,
    /// Triangles produced.
    pub triangles: u64,
}

/// The six tetrahedra of the uniform cube decomposition. Cube corner `i`
/// sits at offset `(i & 1, (i >> 1) & 1, (i >> 2) & 1)`; all six tets share
/// the main diagonal 0–7, which makes the decomposition (and hence the
/// extracted surface) consistent across shared cell faces.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
];

/// Corner offset of cube corner `i`.
#[inline]
fn corner_offset(i: usize) -> (u32, u32, u32) {
    ((i & 1) as u32, ((i >> 1) & 1) as u32, ((i >> 2) & 1) as u32)
}

/// Cells below which [`extract`] stays serial: slab fan-out costs more
/// than it saves on small grids (a pipeline chunk is typically a few
/// hundred cells).
const PAR_MIN_CELLS: u64 = 16 * 1024;

/// Extract the isosurface of `grid` at `iso`, with the grid's point
/// `(0,0,0)` located at world position `origin` (chunks pass their global
/// cell origin so surfaces from different chunks line up). Triangles are
/// appended to `out`; returns scan statistics.
///
/// With the default-on `parallel` feature, large grids are decomposed
/// into z-slabs extracted on the [global pool](crate::par::ThreadPool::global)
/// and spliced back in slab order, which is bit-identical to
/// [`extract_serial`]. Use [`extract_with`] to control the pool and reuse
/// slab scratch buffers across calls.
pub fn extract(
    grid: &RectGrid,
    origin: (u32, u32, u32),
    iso: f32,
    out: &mut Vec<Triangle>,
) -> ExtractStats {
    #[cfg(feature = "parallel")]
    {
        let pool = crate::par::ThreadPool::global();
        if pool.threads() > 1 && grid.dims.cells() >= PAR_MIN_CELLS {
            let mut scratch = ExtractScratch::default();
            return extract_with(pool, &mut scratch, grid, origin, iso, out);
        }
    }
    extract_serial(grid, origin, iso, out)
}

/// Serial reference extraction; always available, bit-identical to the
/// parallel path.
pub fn extract_serial(
    grid: &RectGrid,
    origin: (u32, u32, u32),
    iso: f32,
    out: &mut Vec<Triangle>,
) -> ExtractStats {
    let d = grid.dims;
    if d.nx < 2 || d.ny < 2 || d.nz < 2 {
        return ExtractStats::default();
    }
    extract_slab(grid, origin, iso, 0..d.nz - 1, out)
}

/// Reusable per-slab output buffers for [`extract_with`]: hold one across
/// calls (e.g. per extract-filter copy) and the steady state allocates
/// nothing.
#[derive(Default)]
pub struct ExtractScratch {
    slabs: Vec<std::sync::Mutex<(Vec<Triangle>, ExtractStats)>>,
}

/// [`extract`] with an explicit pool and reusable slab scratch. Slabs are
/// claimed work-stealing style (density varies across z), but results are
/// spliced in slab index order, so output order — and every triangle bit —
/// matches [`extract_serial`].
pub fn extract_with(
    pool: &crate::par::ThreadPool,
    scratch: &mut ExtractScratch,
    grid: &RectGrid,
    origin: (u32, u32, u32),
    iso: f32,
    out: &mut Vec<Triangle>,
) -> ExtractStats {
    let d = grid.dims;
    if d.nx < 2 || d.ny < 2 || d.nz < 2 {
        return ExtractStats::default();
    }
    let z_cells = (d.nz - 1) as usize;
    let threads = pool.threads();
    if threads <= 1 || grid.dims.cells() < PAR_MIN_CELLS || z_cells < 2 {
        return extract_slab(grid, origin, iso, 0..d.nz - 1, out);
    }
    // More slabs than lanes smooths out the load imbalance from uneven
    // triangle density; ×4 is plenty without fragmenting the splice.
    let n_slabs = z_cells.min(threads * 4);
    if scratch.slabs.len() < n_slabs {
        scratch.slabs.resize_with(n_slabs, Default::default);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slabs = &scratch.slabs;
    pool.broadcast(&|_| loop {
        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if i >= n_slabs {
            break;
        }
        let band = crate::par::band_of(z_cells, n_slabs, i);
        let mut slot = slabs[i].lock().expect("slab slot");
        slot.0.clear();
        slot.1 = extract_slab(
            grid,
            origin,
            iso,
            band.start as u32..band.end as u32,
            &mut slot.0,
        );
    });
    let mut stats = ExtractStats::default();
    for slab in &scratch.slabs[..n_slabs] {
        let slot = slab.lock().expect("slab slot");
        stats.cells += slot.1.cells;
        stats.triangles += slot.1.triangles;
        out.extend_from_slice(&slot.0);
    }
    stats
}

/// Scan cells with `z` in `z_range` (the serial kernel over one slab).
fn extract_slab(
    grid: &RectGrid,
    origin: (u32, u32, u32),
    iso: f32,
    z_range: std::ops::Range<u32>,
    out: &mut Vec<Triangle>,
) -> ExtractStats {
    let d = grid.dims;
    let mut stats = ExtractStats::default();
    let mut corner_val = [0.0f32; 8];
    let mut corner_pos = [Vec3::ZERO; 8];
    for z in z_range {
        for y in 0..d.ny - 1 {
            for x in 0..d.nx - 1 {
                stats.cells += 1;
                for i in 0..8 {
                    let (ox, oy, oz) = corner_offset(i);
                    corner_val[i] = grid.at(x + ox, y + oy, z + oz);
                    corner_pos[i] = vec3(
                        (origin.0 + x + ox) as f32,
                        (origin.1 + y + oy) as f32,
                        (origin.2 + z + oz) as f32,
                    );
                }
                // Quick reject: cell entirely on one side.
                let any_in = corner_val.iter().any(|&v| v > iso);
                let any_out = corner_val.iter().any(|&v| v <= iso);
                if !(any_in && any_out) {
                    continue;
                }
                for tet in &TETS {
                    stats.triangles +=
                        polygonise_tet(&corner_pos, &corner_val, tet, iso, out) as u64;
                }
            }
        }
    }
    stats
}

/// Interpolate the iso crossing on the edge `a`–`b`.
#[inline]
fn edge_point(pa: Vec3, va: f32, pb: Vec3, vb: f32, iso: f32) -> Vec3 {
    let denom = vb - va;
    let t = if denom.abs() < 1e-12 {
        0.5
    } else {
        ((iso - va) / denom).clamp(0.0, 1.0)
    };
    pa.lerp(pb, t)
}

/// One precomputed tetrahedron case, indexed by the 4-bit inside mask
/// (bit `i` set ⇔ `v[i] > iso`).
///
/// For `n_in` 1 or 3, `idx` is `[isolated, o0, o1, o2]`: the isolated
/// vertex (inside for 1, outside for 3) then the other three ascending.
/// For `n_in` 2, `idx` is `[in0, in1, out0, out1]`, each pair ascending.
/// These orders reproduce exactly what the old find/filter scan produced,
/// so the emitted geometry is bit-identical — the table only removes the
/// two `Vec` allocations per active tetrahedron.
#[derive(Clone, Copy)]
struct TetCase {
    n_in: u8,
    idx: [u8; 4],
}

const TET_CASES: [TetCase; 16] = {
    let mut cases = [TetCase {
        n_in: 0,
        idx: [0; 4],
    }; 16];
    let mut mask = 0usize;
    while mask < 16 {
        let n_in = (mask & 1) + (mask >> 1 & 1) + (mask >> 2 & 1) + (mask >> 3 & 1);
        let mut idx = [0u8; 4];
        if n_in == 1 || n_in == 3 {
            let isolated_bit = if n_in == 1 { 1 } else { 0 };
            let mut a = 4usize;
            let mut i = 0;
            while i < 4 {
                if (mask >> i) & 1 == isolated_bit && a == 4 {
                    a = i;
                }
                i += 1;
            }
            idx[0] = a as u8;
            let mut k = 1;
            let mut i = 0;
            while i < 4 {
                if i != a {
                    idx[k] = i as u8;
                    k += 1;
                }
                i += 1;
            }
        } else if n_in == 2 {
            let mut k_in = 0;
            let mut k_out = 2;
            let mut i = 0;
            while i < 4 {
                if (mask >> i) & 1 == 1 {
                    idx[k_in] = i as u8;
                    k_in += 1;
                } else {
                    idx[k_out] = i as u8;
                    k_out += 1;
                }
                i += 1;
            }
        }
        cases[mask] = TetCase {
            n_in: n_in as u8,
            idx,
        };
        mask += 1;
    }
    cases
};

/// Polygonise one tetrahedron; appends 0–2 triangles, returns the count.
fn polygonise_tet(
    pos: &[Vec3; 8],
    val: &[f32; 8],
    tet: &[usize; 4],
    iso: f32,
    out: &mut Vec<Triangle>,
) -> usize {
    let p = [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]];
    let v = [val[tet[0]], val[tet[1]], val[tet[2]], val[tet[3]]];
    let mut mask = 0usize;
    for (i, &vi) in v.iter().enumerate() {
        mask |= usize::from(vi > iso) << i;
    }
    let case = &TET_CASES[mask];
    let [i0, i1, i2, i3] = [
        case.idx[0] as usize,
        case.idx[1] as usize,
        case.idx[2] as usize,
        case.idx[3] as usize,
    ];
    match case.n_in {
        0 | 4 => 0,
        1 | 3 => {
            // One vertex isolated (inside for n_in = 1, outside for 3):
            // single triangle across the three edges at that vertex.
            let tri = [
                edge_point(p[i0], v[i0], p[i1], v[i1], iso),
                edge_point(p[i0], v[i0], p[i2], v[i2], iso),
                edge_point(p[i0], v[i0], p[i3], v[i3], iso),
            ];
            let inside_ref = if case.n_in == 1 {
                p[i0]
            } else {
                (p[i1] + p[i2] + p[i3]) / 3.0
            };
            push_oriented(out, tri, inside_ref) as usize
        }
        2 => {
            // Two inside / two outside: the crossing is a quad on four
            // edges; emit two triangles.
            let q = [
                edge_point(p[i0], v[i0], p[i2], v[i2], iso),
                edge_point(p[i0], v[i0], p[i3], v[i3], iso),
                edge_point(p[i1], v[i1], p[i3], v[i3], iso),
                edge_point(p[i1], v[i1], p[i2], v[i2], iso),
            ];
            let inside_ref = (p[i0] + p[i1]) * 0.5;
            let mut n = push_oriented(out, [q[0], q[1], q[2]], inside_ref) as usize;
            n += push_oriented(out, [q[0], q[2], q[3]], inside_ref) as usize;
            n
        }
        _ => unreachable!(),
    }
}

/// Append `tri` with its normal oriented away from `inside_ref` (a point on
/// the high-value side), flipping winding as needed. Degenerate slivers are
/// dropped; returns whether a triangle was pushed.
fn push_oriented(out: &mut Vec<Triangle>, tri: [Vec3; 3], inside_ref: Vec3) -> bool {
    let n = (tri[1] - tri[0]).cross(tri[2] - tri[0]);
    if n.length() < 1e-12 {
        return false; // degenerate sliver; drop
    }
    let center = (tri[0] + tri[1] + tri[2]) / 3.0;
    let n = n.normalized();
    if n.dot(inside_ref - center) > 0.0 {
        out.push(Triangle {
            v: [tri[0], tri[2], tri[1]],
            normal: -n,
        });
    } else {
        out.push(Triangle { v: tri, normal: n });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use volume::{Dims, RectGrid};

    /// A sphere field: value = R - |p - c| (positive inside).
    fn sphere_grid(n: u32, r: f32) -> RectGrid {
        let c = (n - 1) as f32 / 2.0;
        RectGrid::from_fn(Dims::new(n, n, n), |x, y, z| {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            let dz = z as f32 - c;
            r - (dx * dx + dy * dy + dz * dz).sqrt()
        })
    }

    #[test]
    fn empty_field_produces_no_triangles() {
        let g = RectGrid::filled(Dims::new(8, 8, 8), 0.0);
        let mut out = Vec::new();
        let stats = extract(&g, (0, 0, 0), 0.5, &mut out);
        assert_eq!(stats.triangles, 0);
        assert!(out.is_empty());
        assert_eq!(stats.cells, 343);
    }

    #[test]
    fn sphere_produces_closed_surface() {
        let g = sphere_grid(17, 5.0);
        let mut out = Vec::new();
        let stats = extract(&g, (0, 0, 0), 0.0, &mut out);
        assert!(
            stats.triangles > 100,
            "sphere too coarse: {}",
            stats.triangles
        );
        assert_eq!(stats.triangles as usize, out.len());
    }

    #[test]
    fn sphere_vertices_lie_near_radius() {
        let g = sphere_grid(33, 10.0);
        let mut out = Vec::new();
        extract(&g, (0, 0, 0), 0.0, &mut out);
        let c = vec3(16.0, 16.0, 16.0);
        for t in &out {
            for v in &t.v {
                let r = (*v - c).length();
                assert!((r - 10.0).abs() < 0.5, "vertex at radius {r}");
            }
        }
    }

    #[test]
    fn normals_point_outward_on_sphere() {
        let g = sphere_grid(17, 5.0);
        let mut out = Vec::new();
        extract(&g, (0, 0, 0), 0.0, &mut out);
        let c = vec3(8.0, 8.0, 8.0);
        let mut bad = 0;
        for t in &out {
            let center = (t.v[0] + t.v[1] + t.v[2]) / 3.0;
            // Inside = value > iso = inside the sphere, so "away from
            // inside" = radially outward.
            if t.normal.dot((center - c).normalized()) <= 0.0 {
                bad += 1;
            }
        }
        assert_eq!(bad, 0, "{bad}/{} normals point inward", out.len());
    }

    #[test]
    fn surface_is_watertight() {
        // Every interior edge must be shared by exactly two triangles
        // (opposite orientations). Quantize vertices to hash them.
        let g = sphere_grid(13, 4.0);
        let mut out = Vec::new();
        extract(&g, (0, 0, 0), 0.0, &mut out);
        let key = |v: Vec3| {
            (
                (v.x * 4096.0).round() as i64,
                (v.y * 4096.0).round() as i64,
                (v.z * 4096.0).round() as i64,
            )
        };
        let mut edge_count: std::collections::HashMap<_, i32> = std::collections::HashMap::new();
        for t in &out {
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                if a == b {
                    continue; // degenerate edge after quantization
                }
                // Count directed edges; a watertight, consistently oriented
                // surface has each undirected edge once in each direction.
                let (e, dir) = if a < b { ((a, b), 1) } else { ((b, a), -1) };
                *edge_count.entry(e).or_insert(0) += dir;
            }
        }
        let unbalanced = edge_count.values().filter(|&&c| c != 0).count();
        assert_eq!(
            unbalanced,
            0,
            "{unbalanced} unbalanced edges of {}",
            edge_count.len()
        );
    }

    #[test]
    fn chunked_extraction_matches_whole_grid_triangle_count() {
        use volume::{ChunkId, ChunkLayout};
        let g = sphere_grid(17, 5.5);
        let mut whole = Vec::new();
        extract(&g, (0, 0, 0), 0.0, &mut whole);

        let layout = ChunkLayout::new(g.dims, (2, 2, 2));
        let mut chunked = Vec::new();
        for i in 0..layout.count() {
            let info = layout.info(ChunkId(i));
            let sub = layout.extract(&g, ChunkId(i));
            extract(&sub, info.cell_origin, 0.0, &mut chunked);
        }
        assert_eq!(whole.len(), chunked.len());
    }

    #[test]
    fn chunked_extraction_is_watertight_across_chunks() {
        use volume::{ChunkId, ChunkLayout};
        let g = sphere_grid(13, 4.0);
        let layout = ChunkLayout::new(g.dims, (2, 2, 2));
        let mut out = Vec::new();
        for i in 0..layout.count() {
            let info = layout.info(ChunkId(i));
            let sub = layout.extract(&g, ChunkId(i));
            extract(&sub, info.cell_origin, 0.0, &mut out);
        }
        let key = |v: Vec3| {
            (
                (v.x * 4096.0).round() as i64,
                (v.y * 4096.0).round() as i64,
                (v.z * 4096.0).round() as i64,
            )
        };
        let mut edge_count: std::collections::HashMap<_, i32> = std::collections::HashMap::new();
        for t in &out {
            for i in 0..3 {
                let a = key(t.v[i]);
                let b = key(t.v[(i + 1) % 3]);
                if a == b {
                    continue;
                }
                let (e, dir) = if a < b { ((a, b), 1) } else { ((b, a), -1) };
                *edge_count.entry(e).or_insert(0) += dir;
            }
        }
        let unbalanced = edge_count.values().filter(|&&c| c != 0).count();
        assert_eq!(unbalanced, 0);
    }

    #[test]
    fn origin_offsets_translate_vertices() {
        let g = sphere_grid(9, 3.0);
        let mut a = Vec::new();
        let mut b = Vec::new();
        extract(&g, (0, 0, 0), 0.0, &mut a);
        extract(&g, (10, 20, 30), 0.0, &mut b);
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            for k in 0..3 {
                let d = tb.v[k] - ta.v[k];
                assert!((d.x - 10.0).abs() < 1e-4);
                assert!((d.y - 20.0).abs() < 1e-4);
                assert!((d.z - 30.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn stats_count_cells() {
        let g = sphere_grid(9, 3.0);
        let mut out = Vec::new();
        let stats = extract(&g, (0, 0, 0), 0.0, &mut out);
        assert_eq!(stats.cells, 8 * 8 * 8);
    }

    #[test]
    fn parallel_extract_is_bit_identical_to_serial() {
        // 32³ cells — above PAR_MIN_CELLS so the slab path really runs.
        let g = sphere_grid(33, 10.0);
        let mut serial = Vec::new();
        let s_stats = extract_serial(&g, (5, 6, 7), 0.0, &mut serial);
        for threads in [1usize, 2, 3, 4] {
            let pool = crate::par::ThreadPool::new(threads);
            let mut scratch = ExtractScratch::default();
            let mut par_out = Vec::new();
            let p_stats = extract_with(&pool, &mut scratch, &g, (5, 6, 7), 0.0, &mut par_out);
            assert_eq!(s_stats, p_stats, "{threads} threads");
            assert_eq!(serial.len(), par_out.len(), "{threads} threads");
            assert!(
                serial.iter().zip(&par_out).all(|(a, b)| a == b),
                "{threads} threads: triangle mismatch"
            );
            // Scratch reuse must not change the result.
            let mut again = Vec::new();
            extract_with(&pool, &mut scratch, &g, (5, 6, 7), 0.0, &mut again);
            assert!(serial.iter().zip(&again).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn case_table_matches_bitcount_semantics() {
        for (mask, case) in TET_CASES.iter().enumerate() {
            assert_eq!(case.n_in as u32, (mask as u32).count_ones());
            match case.n_in {
                1 | 3 => {
                    let isolated_inside = case.n_in == 1;
                    let a = case.idx[0] as usize;
                    assert_eq!((mask >> a) & 1 == 1, isolated_inside);
                    // Others ascending, covering the complement.
                    let others = [case.idx[1], case.idx[2], case.idx[3]];
                    assert!(others.windows(2).all(|w| w[0] < w[1]));
                    assert!(!others.contains(&(a as u8)));
                }
                2 => {
                    let (i0, i1) = (case.idx[0] as usize, case.idx[1] as usize);
                    let (o0, o1) = (case.idx[2] as usize, case.idx[3] as usize);
                    assert!(i0 < i1 && o0 < o1);
                    assert!((mask >> i0) & 1 == 1 && (mask >> i1) & 1 == 1);
                    assert!((mask >> o0) & 1 == 0 && (mask >> o1) & 1 == 0);
                }
                _ => {}
            }
        }
    }
}
