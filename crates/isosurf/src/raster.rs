//! Shared scanline rasterization: triangle transform, projection, clipping
//! to the viewport, and depth-interpolated pixel generation.
//!
//! Both hidden-surface removal algorithms (the dense z-buffer and the
//! sparse active-pixel renderer) consume the *same* pixel stream produced
//! here, which is what guarantees they render identical images — the
//! consistency property the paper requires of the merge stage.

use crate::camera::{Projector, ScreenVertex};
use crate::math::{vec3, Vec3};
use crate::mc::Triangle;
use crate::shade::{shade, Material};

/// Counters the cost model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles received (pre-clip).
    pub triangles_in: u64,
    /// Triangles surviving projection/clip.
    pub triangles_drawn: u64,
    /// Pixels generated (depth-test candidates).
    pub pixels: u64,
}

/// Transform, project, clip, shade, and scan-convert `tri`, invoking
/// `plot(x, y, depth, rgb)` for every covered pixel inside the
/// `width × height` viewport. Returns pixels generated, or `None` if the
/// triangle was rejected (behind the near plane or fully off-screen).
pub fn raster_triangle(
    proj: &Projector,
    width: u32,
    height: u32,
    material: &Material,
    tri: &Triangle,
    mut plot: impl FnMut(u32, u32, f32, [u8; 3]),
) -> Option<u64> {
    // Near-plane policy: reject triangles with any vertex behind the near
    // plane. The experiment cameras sit well outside the volume, so this
    // never triggers there; it keeps the kernel simple and both renderers
    // identical.
    let s0 = proj.project(tri.v[0])?;
    let s1 = proj.project(tri.v[1])?;
    let s2 = proj.project(tri.v[2])?;

    // Trivial reject when the bounding box misses the viewport.
    let min_x = s0.x.min(s1.x).min(s2.x);
    let max_x = s0.x.max(s1.x).max(s2.x);
    let min_y = s0.y.min(s1.y).min(s2.y);
    let max_y = s0.y.max(s1.y).max(s2.y);
    if max_x < 0.0 || min_x >= width as f32 || max_y < 0.0 || min_y >= height as f32 {
        return None;
    }

    let rgb = shade(material, tri.normal);
    let pixels = fill_triangle(s0, s1, s2, width, height, |x, y, depth| {
        plot(x, y, depth, rgb);
    });
    Some(pixels)
}

/// Scan-convert the screen-space triangle `(a, b, c)`, calling
/// `plot(x, y, depth)` for each covered pixel with linearly interpolated
/// depth, clipped to `width × height`. Uses the top-left-ish pixel-center
/// rule (a pixel is covered when its center lies inside all three edges),
/// so shared edges between triangles are drawn once per triangle —
/// duplicates are resolved by the depth test downstream, matching how the
/// paper's renderer generates multiple candidates per pixel location.
pub fn fill_triangle(
    a: ScreenVertex,
    b: ScreenVertex,
    c: ScreenVertex,
    width: u32,
    height: u32,
    mut plot: impl FnMut(u32, u32, f32),
) -> u64 {
    // Signed doubled area; (near-)degenerate triangles produce nothing.
    // The threshold is far below one pixel of area, so anything rejected
    // here could not cover a pixel center anyway.
    let area = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
    if area.abs() < 1e-4 {
        return 0;
    }
    // Orient counter-clockwise so barycentric weights are positive inside.
    let (b, c) = if area < 0.0 { (c, b) } else { (b, c) };
    let area = area.abs();

    let min_x = a.x.min(b.x).min(c.x).floor().max(0.0) as i64;
    let max_x = (a.x.max(b.x).max(c.x).ceil() as i64).min(width as i64 - 1);
    let min_y = a.y.min(b.y).min(c.y).floor().max(0.0) as i64;
    let max_y = (a.y.max(b.y).max(c.y).ceil() as i64).min(height as i64 - 1);

    let mut count = 0u64;
    for y in min_y..=max_y {
        let py = y as f32 + 0.5;
        for x in min_x..=max_x {
            let px = x as f32 + 0.5;
            // Barycentric coordinates via edge functions.
            let w0 = (b.x - a.x) * (py - a.y) - (px - a.x) * (b.y - a.y); // weight of c
            let w1 = (c.x - b.x) * (py - b.y) - (px - b.x) * (c.y - b.y); // weight of a
            let w2 = (a.x - c.x) * (py - c.y) - (px - c.x) * (a.y - c.y); // weight of b
            if w0 >= 0.0 && w1 >= 0.0 && w2 >= 0.0 {
                let depth = (w1 * a.depth + w2 * b.depth + w0 * c.depth) / area;
                plot(x as u32, y as u32, depth);
                count += 1;
            }
        }
    }
    count
}

/// Convenience for tests: rasterize a world-space triangle into a vector of
/// `(x, y, depth)` samples.
pub fn collect_pixels(
    proj: &Projector,
    width: u32,
    height: u32,
    tri: &Triangle,
) -> Vec<(u32, u32, f32)> {
    let mut out = Vec::new();
    let material = Material::default();
    let _ = raster_triangle(proj, width, height, &material, tri, |x, y, d, _| {
        out.push((x, y, d));
    });
    out
}

/// A world-space triangle helper for tests and benches.
pub fn world_tri(a: Vec3, b: Vec3, c: Vec3) -> Triangle {
    let n = (b - a).cross(c - a).normalized();
    Triangle {
        v: [a, b, c],
        normal: if n == Vec3::ZERO {
            vec3(0.0, 0.0, 1.0)
        } else {
            n
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::math::vec3;

    fn cam(w: u32, h: u32) -> Camera {
        Camera {
            eye: vec3(0.0, 0.0, 10.0),
            target: Vec3::ZERO,
            up: vec3(0.0, 1.0, 0.0),
            fovy_deg: 60.0,
            width: w,
            height: h,
            near: 0.1,
        }
    }

    #[test]
    fn centered_triangle_covers_pixels() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(-2.0, -2.0, 0.0),
            vec3(2.0, -2.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        );
        let px = collect_pixels(&proj, 64, 64, &t);
        assert!(px.len() > 50, "only {} pixels", px.len());
        // All within viewport.
        assert!(px.iter().all(|&(x, y, _)| x < 64 && y < 64));
    }

    #[test]
    fn depth_is_constant_for_screen_parallel_triangle() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(-1.0, -1.0, 2.0),
            vec3(1.0, -1.0, 2.0),
            vec3(0.0, 1.0, 2.0),
        );
        for (_, _, d) in collect_pixels(&proj, 64, 64, &t) {
            assert!((d - 8.0).abs() < 0.05, "depth {d}");
        }
    }

    #[test]
    fn depth_varies_for_tilted_triangle() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(-2.0, 0.0, 4.0),
            vec3(2.0, 0.0, -4.0),
            vec3(0.0, 2.0, 0.0),
        );
        let px = collect_pixels(&proj, 64, 64, &t);
        let min = px.iter().map(|p| p.2).fold(f32::INFINITY, f32::min);
        let max = px.iter().map(|p| p.2).fold(0.0f32, f32::max);
        assert!(max - min > 3.0, "depth range {min}..{max}");
    }

    #[test]
    fn offscreen_triangle_is_rejected() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(100.0, 100.0, 0.0),
            vec3(101.0, 100.0, 0.0),
            vec3(100.0, 101.0, 0.0),
        );
        let material = Material::default();
        let r = raster_triangle(&proj, 64, 64, &material, &t, |_, _, _, _| {
            panic!("no pixels")
        });
        assert_eq!(r, None);
    }

    #[test]
    fn behind_camera_triangle_is_rejected() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(0.0, 0.0, 20.0),
            vec3(1.0, 0.0, 20.0),
            vec3(0.0, 1.0, 20.0),
        );
        assert!(collect_pixels(&proj, 64, 64, &t).is_empty());
    }

    #[test]
    fn partially_offscreen_triangle_is_clipped() {
        let proj = cam(64, 64).projector();
        // Spans far beyond the left edge.
        let t = world_tri(
            vec3(-50.0, -1.0, 0.0),
            vec3(1.0, -1.0, 0.0),
            vec3(1.0, 1.0, 0.0),
        );
        let px = collect_pixels(&proj, 64, 64, &t);
        assert!(!px.is_empty());
        assert!(px.iter().all(|&(x, y, _)| x < 64 && y < 64));
    }

    #[test]
    fn winding_does_not_change_coverage() {
        let proj = cam(64, 64).projector();
        let t1 = world_tri(
            vec3(-2.0, -2.0, 0.0),
            vec3(2.0, -2.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        );
        let t2 = world_tri(
            vec3(0.0, 2.0, 0.0),
            vec3(2.0, -2.0, 0.0),
            vec3(-2.0, -2.0, 0.0),
        );
        let mut p1 = collect_pixels(&proj, 64, 64, &t1);
        let mut p2 = collect_pixels(&proj, 64, 64, &t2);
        p1.sort_by_key(|p| (p.0, p.1));
        p2.sort_by_key(|p| (p.0, p.1));
        let xy1: Vec<_> = p1.iter().map(|p| (p.0, p.1)).collect();
        let xy2: Vec<_> = p2.iter().map(|p| (p.0, p.1)).collect();
        assert_eq!(xy1, xy2);
    }

    #[test]
    fn degenerate_triangle_draws_nothing() {
        let proj = cam(64, 64).projector();
        let t = world_tri(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 1.0, 0.0),
            vec3(2.0, 2.0, 0.0),
        );
        assert!(collect_pixels(&proj, 64, 64, &t).is_empty());
    }
}
