//! # isosurf — isosurface rendering kernels
//!
//! The visualization application of the reproduction (the paper's case
//! study, Section 3): surface extraction from rectilinear scalar fields,
//! perspective projection, scanline rasterization, and the two
//! hidden-surface removal algorithms the paper compares —
//!
//! * **Z-buffer rendering** ([`zbuf`]): dense per-pixel depth+color buffer,
//!   flushed wholesale at end-of-work (a pipeline synchronization point);
//! * **Active Pixel rendering** ([`active`]): sparse winning-pixel batches
//!   flushed as they fill, overlapping rasterization with merging.
//!
//! Both algorithms consume the identical pixel stream from [`raster`] and
//! merge with the same commutative/associative depth test, so they produce
//! identical images regardless of how work is split across filter copies —
//! the consistency property the paper's merge filter relies on.
//!
//! Extraction ([`mc`]) implements the marching-cubes family via uniform
//! tetrahedral decomposition (watertight across chunk boundaries); see the
//! module docs for the rationale.

#![warn(missing_docs)]

pub mod active;
pub mod camera;
pub mod image;
pub mod math;
pub mod mc;
pub mod raster;
pub mod render;
pub mod shade;
pub mod zbuf;

pub use active::{merge_batch, ActivePixelBuffer, WinningPixel, WPA_ENTRY_WIRE_BYTES};
pub use camera::{Camera, Projector, ScreenVertex};
pub use image::Image;
pub use math::{vec3, Mat4, Vec3};
pub use mc::{extract, ExtractStats, Triangle, TRIANGLE_WIRE_BYTES};
pub use raster::{fill_triangle, raster_triangle, RasterStats};
pub use render::{render_active_pixel, render_zbuffer, BACKGROUND};
pub use shade::{shade, species_material, Material};
pub use zbuf::{ZBuffer, EMPTY_DEPTH, ZBUF_ENTRY_WIRE_BYTES};
