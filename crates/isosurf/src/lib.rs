//! # isosurf — isosurface rendering kernels
//!
//! The visualization application of the reproduction (the paper's case
//! study, Section 3): surface extraction from rectilinear scalar fields,
//! perspective projection, scanline rasterization, and the two
//! hidden-surface removal algorithms the paper compares —
//!
//! * **Z-buffer rendering** ([`zbuf`]): dense per-pixel depth+color buffer,
//!   flushed wholesale at end-of-work (a pipeline synchronization point);
//! * **Active Pixel rendering** ([`active`]): sparse winning-pixel batches
//!   flushed as they fill, overlapping rasterization with merging.
//!
//! Both algorithms consume the identical pixel stream from [`raster`] and
//! merge with the same commutative/associative depth test, so they produce
//! identical images regardless of how work is split across filter copies —
//! the consistency property the paper's merge filter relies on.
//!
//! Extraction ([`mc`]) implements the marching-cubes family via uniform
//! tetrahedral decomposition (watertight across chunk boundaries); see the
//! module docs for the rationale.
//!
//! All compute kernels are data-parallel on large inputs via the
//! dependency-free fork/join pool in [`par`], and every parallel
//! decomposition is bit-identical to its serial counterpart (the
//! `*_serial` functions). The default-on `parallel` cargo feature gates
//! only whether the plain entry points (`extract`, `ZBuffer::merge`,
//! `merge_batch`, `merge_many`) auto-parallelize on the global pool;
//! disabling it leaves them fully serial. Explicit-pool variants
//! (`*_with`) are always available.

#![warn(missing_docs)]

pub mod active;
pub mod camera;
pub mod image;
pub mod math;
pub mod mc;
pub mod par;
pub mod raster;
pub mod render;
pub mod shade;
pub mod zbuf;

pub use active::{
    merge_batch, merge_batch_offset, merge_batch_serial, merge_batch_with, ActivePixelBuffer,
    WinningPixel, WPA_ENTRY_WIRE_BYTES,
};
pub use camera::{Camera, Projector, ScreenVertex};
pub use image::Image;
pub use math::{vec3, Mat4, Vec3};
pub use mc::{
    extract, extract_serial, extract_with, ExtractScratch, ExtractStats, Triangle,
    TRIANGLE_WIRE_BYTES,
};
pub use par::ThreadPool;
pub use raster::{fill_triangle, raster_triangle, RasterStats};
pub use render::{render_active_pixel, render_zbuffer, render_zbuffer_with, BACKGROUND};
pub use shade::{shade, species_material, Material};
pub use zbuf::{
    merge_many, merge_many_serial, merge_many_with, merge_rows, ZBuffer, EMPTY_DEPTH,
    ZBUF_ENTRY_WIRE_BYTES,
};
