//! Range queries over chunked datasets.
//!
//! The paper's application class accesses input data "by a range query,
//! which defines a multi-dimensional bounding box in the input space".
//! A [`CellRange`] selects a box of cells; [`chunks_intersecting`] resolves
//! it to the chunk ids that must be fetched.

use serde::{Deserialize, Serialize};

use crate::chunks::{ChunkId, ChunkLayout};

/// A half-open box of cells `[lo, hi)` along each axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRange {
    /// Inclusive lower corner (cell coordinates).
    pub lo: (u32, u32, u32),
    /// Exclusive upper corner (cell coordinates).
    pub hi: (u32, u32, u32),
}

impl CellRange {
    /// The whole grid covered by `layout`.
    pub fn all(layout: &ChunkLayout) -> Self {
        CellRange {
            lo: (0, 0, 0),
            hi: (layout.grid.nx - 1, layout.grid.ny - 1, layout.grid.nz - 1),
        }
    }

    /// True when the box selects no cells.
    pub fn is_empty(&self) -> bool {
        self.lo.0 >= self.hi.0 || self.lo.1 >= self.hi.1 || self.lo.2 >= self.hi.2
    }

    /// Number of cells selected.
    pub fn cells(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        (self.hi.0 - self.lo.0) as u64
            * (self.hi.1 - self.lo.1) as u64
            * (self.hi.2 - self.lo.2) as u64
    }
}

/// Chunk ids whose owned cells intersect `range`, in id order.
pub fn chunks_intersecting(layout: &ChunkLayout, range: &CellRange) -> Vec<ChunkId> {
    if range.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for info in layout.all() {
        let (ox, oy, oz) = info.cell_origin;
        let (ex, ey, ez) = info.cell_extent;
        let overlap = ox < range.hi.0
            && ox + ex > range.lo.0
            && oy < range.hi.1
            && oy + ey > range.lo.1
            && oz < range.hi.2
            && oz + ez > range.lo.2;
        if overlap {
            out.push(info.id);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::grid::Dims;

    fn layout() -> ChunkLayout {
        ChunkLayout::new(Dims::new(9, 9, 9), (2, 2, 2)) // 8 cells/axis, 4 per chunk
    }

    #[test]
    fn full_range_selects_all_chunks() {
        let l = layout();
        let r = CellRange::all(&l);
        assert_eq!(chunks_intersecting(&l, &r).len(), 8);
        assert_eq!(r.cells(), 512);
    }

    #[test]
    fn empty_range_selects_nothing() {
        let l = layout();
        let r = CellRange {
            lo: (4, 4, 4),
            hi: (4, 8, 8),
        };
        assert!(r.is_empty());
        assert!(chunks_intersecting(&l, &r).is_empty());
    }

    #[test]
    fn corner_range_selects_one_chunk() {
        let l = layout();
        let r = CellRange {
            lo: (0, 0, 0),
            hi: (2, 2, 2),
        };
        assert_eq!(chunks_intersecting(&l, &r), vec![ChunkId(0)]);
    }

    #[test]
    fn straddling_range_selects_neighbours() {
        let l = layout();
        // x span 3..5 crosses the x=4 chunk boundary.
        let r = CellRange {
            lo: (3, 0, 0),
            hi: (5, 2, 2),
        };
        let got = chunks_intersecting(&l, &r);
        assert_eq!(got, vec![ChunkId(0), ChunkId(1)]);
    }

    #[test]
    fn central_range_touches_all_octants() {
        let l = layout();
        let r = CellRange {
            lo: (3, 3, 3),
            hi: (5, 5, 5),
        };
        assert_eq!(chunks_intersecting(&l, &r).len(), 8);
    }
}
