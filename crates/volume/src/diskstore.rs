//! On-disk dataset storage: the declustered data files as real files.
//!
//! The in-memory [`crate::Dataset`] regenerates fields on demand — ideal
//! for deterministic experiments. This module materializes a dataset the
//! way the paper stored it: one binary file per declustering bucket (the
//! paper uses 64), each holding its chunks in Hilbert order, so a library
//! user can stage data once and stream it back without the generator.
//!
//! File format (little endian):
//!
//! ```text
//! magic "DCVF" | u32 version | u32 n_records
//! repeated records: u32 chunk_id | u32 payload_len | payload (encode_chunk)
//! ```
//!
//! A `manifest.dcm` file records the grid dims, chunk lattice, and file
//! count so a store can be opened without out-of-band information.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::chunks::{ChunkId, ChunkLayout};
use crate::decluster::FileId;
use crate::grid::{Dims, RectGrid};
use crate::store::{decode_chunk, encode_chunk, Dataset};

const FILE_MAGIC: &[u8; 4] = b"DCVF";
const MANIFEST_MAGIC: &[u8; 4] = b"DCVM";
const VERSION: u32 = 1;

/// A dataset materialized as data files in a directory.
pub struct DiskStore {
    dir: PathBuf,
    layout: ChunkLayout,
    n_files: u32,
    /// Chunk ids per file, in record order.
    chunks_of_file: Vec<Vec<ChunkId>>,
}

fn file_path(dir: &Path, file: FileId) -> PathBuf {
    dir.join(format!("data_{:03}.dcvf", file.0))
}

/// Write one timestep of one species of `dataset` into `dir` as
/// declustered data files plus a manifest. Returns the opened store.
pub fn write_dataset(
    dir: impl AsRef<Path>,
    dataset: &Dataset,
    species: u32,
    timestep: u32,
) -> io::Result<DiskStore> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let layout = *dataset.layout();
    let n_files = dataset.declustering().n_files;

    // Manifest.
    {
        let mut m = Vec::new();
        m.extend_from_slice(MANIFEST_MAGIC);
        m.extend_from_slice(&VERSION.to_le_bytes());
        for v in [
            layout.grid.nx,
            layout.grid.ny,
            layout.grid.nz,
            layout.chunks.0,
            layout.chunks.1,
            layout.chunks.2,
            n_files,
        ] {
            m.extend_from_slice(&v.to_le_bytes());
        }
        fs::write(dir.join("manifest.dcm"), m)?;
    }

    let mut chunks_of_file = Vec::with_capacity(n_files as usize);
    for f in 0..n_files {
        let file = FileId(f);
        let ids = dataset.chunks_in_file(file).to_vec();
        let mut out = Vec::new();
        out.extend_from_slice(FILE_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for &id in &ids {
            let payload = encode_chunk(&dataset.read_chunk(species, timestep, id));
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        let mut fh = fs::File::create(file_path(dir, file))?;
        fh.write_all(&out)?;
        chunks_of_file.push(ids);
    }
    Ok(DiskStore {
        dir: dir.to_path_buf(),
        layout,
        n_files,
        chunks_of_file,
    })
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl DiskStore {
    /// Open a store previously written by [`write_dataset`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        let dir = dir.as_ref().to_path_buf();
        let m = fs::read(dir.join("manifest.dcm"))?;
        if m.len() < 8 + 7 * 4 || &m[0..4] != MANIFEST_MAGIC {
            return Err(bad("bad manifest"));
        }
        let word = |i: usize| -> u32 {
            u32::from_le_bytes(m[8 + i * 4..12 + i * 4].try_into().expect("length checked"))
        };
        let layout = ChunkLayout::new(
            Dims::new(word(0), word(1), word(2)),
            (word(3), word(4), word(5)),
        );
        let n_files = word(6);

        let mut chunks_of_file = Vec::with_capacity(n_files as usize);
        for f in 0..n_files {
            let mut fh = fs::File::open(file_path(&dir, FileId(f)))?;
            let mut header = [0u8; 12];
            fh.read_exact(&mut header)?;
            if &header[0..4] != FILE_MAGIC {
                return Err(bad("bad data file magic"));
            }
            let n_records = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
            let mut ids = Vec::with_capacity(n_records as usize);
            let mut rec = [0u8; 8];
            for _ in 0..n_records {
                fh.read_exact(&mut rec)?;
                let id = u32::from_le_bytes(rec[0..4].try_into().expect("fixed"));
                let len = u32::from_le_bytes(rec[4..8].try_into().expect("fixed"));
                ids.push(ChunkId(id));
                // Skip the payload.
                io::copy(&mut Read::by_ref(&mut fh).take(len as u64), &mut io::sink())?;
            }
            chunks_of_file.push(ids);
        }
        Ok(DiskStore {
            dir,
            layout,
            n_files,
            chunks_of_file,
        })
    }

    /// The chunk layout.
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// Filesystem path of one data file (for streaming readers).
    pub(crate) fn data_file_path(&self, file: FileId) -> PathBuf {
        file_path(&self.dir, file)
    }

    /// Open a streaming [`ChunkCursor`](crate::cursor::ChunkCursor) over
    /// `file`, materializing at most `budget_bytes` of payload per slab.
    pub fn cursor(
        &self,
        file: FileId,
        budget_bytes: usize,
    ) -> io::Result<crate::cursor::ChunkCursor> {
        crate::cursor::ChunkCursor::open(self, file, budget_bytes)
    }

    /// Number of data files.
    pub fn n_files(&self) -> u32 {
        self.n_files
    }

    /// Chunks stored in `file`, in record order.
    pub fn chunks_in_file(&self, file: FileId) -> &[ChunkId] {
        &self.chunks_of_file[file.0 as usize]
    }

    /// Read one chunk's point data back from its data file.
    pub fn read_chunk(&self, file: FileId, chunk: ChunkId) -> io::Result<RectGrid> {
        let mut fh = fs::File::open(file_path(&self.dir, file))?;
        let mut header = [0u8; 12];
        fh.read_exact(&mut header)?;
        let n_records = u32::from_le_bytes(header[8..12].try_into().expect("fixed"));
        let mut rec = [0u8; 8];
        for _ in 0..n_records {
            fh.read_exact(&mut rec)?;
            let id = u32::from_le_bytes(rec[0..4].try_into().expect("fixed"));
            let len = u32::from_le_bytes(rec[4..8].try_into().expect("fixed")) as usize;
            if id == chunk.0 {
                let mut payload = vec![0u8; len];
                fh.read_exact(&mut payload)?;
                return decode_chunk(&payload).ok_or_else(|| bad("corrupt chunk payload"));
            }
            io::copy(&mut Read::by_ref(&mut fh).take(len as u64), &mut io::sink())?;
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("chunk {} not in file", chunk.0),
        ))
    }

    /// Read every chunk of `file` sequentially (the read filter's access
    /// pattern: one pass over the file in Hilbert order).
    pub fn read_file(&self, file: FileId) -> io::Result<Vec<(ChunkId, RectGrid)>> {
        let mut fh = fs::File::open(file_path(&self.dir, file))?;
        let mut header = [0u8; 12];
        fh.read_exact(&mut header)?;
        let n_records = u32::from_le_bytes(header[8..12].try_into().expect("fixed"));
        let mut out = Vec::with_capacity(n_records as usize);
        let mut rec = [0u8; 8];
        for _ in 0..n_records {
            fh.read_exact(&mut rec)?;
            let id = u32::from_le_bytes(rec[0..4].try_into().expect("fixed"));
            let len = u32::from_le_bytes(rec[4..8].try_into().expect("fixed")) as usize;
            let mut payload = vec![0u8; len];
            fh.read_exact(&mut payload)?;
            out.push((
                ChunkId(id),
                decode_chunk(&payload).ok_or_else(|| bad("corrupt chunk"))?,
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcvol_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn dataset() -> Dataset {
        Dataset::generate(Dims::new(9, 9, 17), (2, 2, 4), 6, 99)
    }

    #[test]
    fn write_open_roundtrip() {
        let dir = tmpdir("roundtrip");
        let ds = dataset();
        let written = write_dataset(&dir, &ds, 1, 3).unwrap();
        assert_eq!(written.n_files(), 6);

        let opened = DiskStore::open(&dir).unwrap();
        assert_eq!(opened.layout(), ds.layout());
        for f in 0..6 {
            assert_eq!(
                opened.chunks_in_file(FileId(f)),
                ds.chunks_in_file(FileId(f))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_contents_survive_the_disk() {
        let dir = tmpdir("contents");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 2).unwrap();
        for f in 0..store.n_files() {
            for &chunk in store.chunks_in_file(FileId(f)) {
                let from_disk = store.read_chunk(FileId(f), chunk).unwrap();
                let from_mem = ds.read_chunk(0, 2, chunk);
                assert_eq!(from_disk, from_mem, "chunk {}", chunk.0);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_file_scan_yields_hilbert_order() {
        let dir = tmpdir("scan");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let records = store.read_file(FileId(0)).unwrap();
        let ids: Vec<ChunkId> = records.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, ds.chunks_in_file(FileId(0)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_chunk_reports_not_found() {
        let dir = tmpdir("missing");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        // Find a chunk NOT in file 0.
        let absent = (0..ds.layout().count())
            .map(ChunkId)
            .find(|c| !store.chunks_in_file(FileId(0)).contains(c))
            .unwrap();
        let err = store.read_chunk(FileId(0), absent).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        let ds = dataset();
        write_dataset(&dir, &ds, 0, 0).unwrap();
        fs::write(dir.join("manifest.dcm"), b"garbage").unwrap();
        assert!(DiskStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
