//! On-disk dataset storage: the declustered data files as real files.
//!
//! The in-memory [`crate::Dataset`] regenerates fields on demand — ideal
//! for deterministic experiments. This module materializes a dataset the
//! way the paper stored it: one binary file per declustering bucket (the
//! paper uses 64), each holding its chunks in Hilbert order, so a library
//! user can stage data once and stream it back without the generator.
//!
//! File format (little endian):
//!
//! ```text
//! magic "DCVF" | u32 version | u32 n_records
//! repeated records: u32 chunk_id | u32 payload_len | payload (encode_chunk) | u64 fnv64(payload)
//! ```
//!
//! Version 2 sealed every record with an FNV-64 checksum of its payload;
//! all read paths verify it and report a structured `InvalidData` error
//! on mismatch (see [`crate::integrity`]). A `manifest.dcm` file records
//! the grid dims, chunk lattice, and file count so a store can be opened
//! without out-of-band information — and opening is hardened against
//! truncated or garbage manifests: every parse failure is a structured
//! error, never a panic.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::chunks::{ChunkId, ChunkLayout};
use crate::decluster::FileId;
use crate::grid::{Dims, RectGrid};
use crate::integrity::{fnv64, FaultSeam, ReadFaults};
use crate::store::{decode_chunk, encode_chunk, Dataset};

const FILE_MAGIC: &[u8; 4] = b"DCVF";
const MANIFEST_MAGIC: &[u8; 4] = b"DCVM";
const VERSION: u32 = 2;
/// Bytes of the per-record FNV-64 trailer.
pub(crate) const RECORD_TRAILER_BYTES: u64 = 8;

/// A dataset materialized as data files in a directory.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    layout: ChunkLayout,
    n_files: u32,
    /// Chunk ids per file, in record order.
    chunks_of_file: Vec<Vec<ChunkId>>,
    /// Injected-read-fault seam, shared with cursors opened from here.
    seam: FaultSeam,
}

fn file_path(dir: &Path, file: FileId) -> PathBuf {
    dir.join(format!("data_{:03}.dcvf", file.0))
}

/// Write one timestep of one species of `dataset` into `dir` as
/// declustered data files plus a manifest. Returns the opened store.
pub fn write_dataset(
    dir: impl AsRef<Path>,
    dataset: &Dataset,
    species: u32,
    timestep: u32,
) -> io::Result<DiskStore> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let layout = *dataset.layout();
    let n_files = dataset.declustering().n_files;

    // Manifest.
    {
        let mut m = Vec::new();
        m.extend_from_slice(MANIFEST_MAGIC);
        m.extend_from_slice(&VERSION.to_le_bytes());
        for v in [
            layout.grid.nx,
            layout.grid.ny,
            layout.grid.nz,
            layout.chunks.0,
            layout.chunks.1,
            layout.chunks.2,
            n_files,
        ] {
            m.extend_from_slice(&v.to_le_bytes());
        }
        fs::write(dir.join("manifest.dcm"), m)?;
    }

    let mut chunks_of_file = Vec::with_capacity(n_files as usize);
    for f in 0..n_files {
        let file = FileId(f);
        let ids = dataset.chunks_in_file(file).to_vec();
        let mut out = Vec::new();
        out.extend_from_slice(FILE_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for &id in &ids {
            let payload = encode_chunk(&dataset.read_chunk(species, timestep, id));
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        }
        let mut fh = fs::File::create(file_path(dir, file))?;
        fh.write_all(&out)?;
        chunks_of_file.push(ids);
    }
    Ok(DiskStore {
        dir: dir.to_path_buf(),
        layout,
        n_files,
        chunks_of_file,
        seam: FaultSeam::default(),
    })
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read the little-endian `u32` at byte offset `at` of `m`, or a
/// structured parse error naming `what` when `m` is too short. The
/// panicking `expect("length checked")` this replaces turned a truncated
/// manifest into an abort.
fn le_u32(m: &[u8], at: usize, what: &str) -> io::Result<u32> {
    match m.get(at..at + 4) {
        Some(b) => {
            // The slice is exactly 4 bytes by construction; map instead
            // of unwrapping to keep this a no-panic path even if the
            // bound above drifts.
            b.try_into()
                .map(u32::from_le_bytes)
                .map_err(|_| bad(format!("short read parsing {what}")))
        }
        None => Err(bad(format!(
            "{what}: need bytes {at}..{} of a {}-byte buffer",
            at + 4,
            m.len()
        ))),
    }
}

/// Parse and sanity-check a `.dcvf` file header, returning `n_records`.
fn parse_file_header(header: &[u8; 12], what: &str) -> io::Result<u32> {
    if &header[0..4] != FILE_MAGIC {
        return Err(bad(format!("{what}: bad data file magic")));
    }
    let version = le_u32(header, 4, "data file version")?;
    if version != VERSION {
        return Err(bad(format!(
            "{what}: unsupported data file version {version} (expected {VERSION})"
        )));
    }
    le_u32(header, 8, "data file record count")
}

/// Read one record header (`chunk_id`, `payload_len`) from `fh`.
fn read_record_header(fh: &mut fs::File) -> io::Result<(ChunkId, u32)> {
    let mut rec = [0u8; 8];
    fh.read_exact(&mut rec)?;
    let id = le_u32(&rec, 0, "record chunk id")?;
    let len = le_u32(&rec, 4, "record payload length")?;
    Ok((ChunkId(id), len))
}

/// Read `len` payload bytes plus the FNV trailer, apply any injected
/// fault from `seam`, and verify the checksum.
fn read_sealed_payload(fh: &mut fs::File, len: u32, seam: &FaultSeam) -> io::Result<Vec<u8>> {
    let op = seam.next_op();
    if let Some(err) = seam.read_error(op) {
        return Err(err);
    }
    let mut payload = vec![0u8; len as usize];
    fh.read_exact(&mut payload)?;
    let mut trailer = [0u8; RECORD_TRAILER_BYTES as usize];
    fh.read_exact(&mut trailer)?;
    seam.tamper(op, &mut payload);
    let stored = u64::from_le_bytes(trailer);
    let computed = fnv64(&payload);
    if stored != computed {
        return Err(bad(format!(
            "record checksum mismatch over {len} payload bytes: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    Ok(payload)
}

/// Seek past a record's payload and trailer without reading it.
fn skip_payload(fh: &mut fs::File, len: u32) -> io::Result<()> {
    io::copy(
        &mut Read::by_ref(fh).take(len as u64 + RECORD_TRAILER_BYTES),
        &mut io::sink(),
    )?;
    Ok(())
}

impl DiskStore {
    /// Open a store previously written by [`write_dataset`].
    ///
    /// Robust against damaged inputs by construction: a truncated or
    /// garbage manifest, a bad magic, an unsupported version, or a
    /// record count inconsistent with the file's actual size all return
    /// structured [`io::ErrorKind::InvalidData`] errors.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        let dir = dir.as_ref().to_path_buf();
        let m = fs::read(dir.join("manifest.dcm"))?;
        if m.len() < 4 || &m[0..4] != MANIFEST_MAGIC {
            return Err(bad("bad manifest magic"));
        }
        let version = le_u32(&m, 4, "manifest version")?;
        if version != VERSION {
            return Err(bad(format!(
                "unsupported manifest version {version} (expected {VERSION})"
            )));
        }
        let word = |i: usize| le_u32(&m, 8 + i * 4, "manifest field");
        let dims = Dims::new(word(0)?, word(1)?, word(2)?);
        let chunks = (word(3)?, word(4)?, word(5)?);
        let n_files = word(6)?;
        if dims.nx == 0 || dims.ny == 0 || dims.nz == 0 {
            return Err(bad("manifest declares an empty grid"));
        }
        if chunks.0 == 0 || chunks.1 == 0 || chunks.2 == 0 {
            return Err(bad("manifest declares an empty chunk lattice"));
        }
        if chunks.0 > dims.nx || chunks.1 > dims.ny || chunks.2 > dims.nz {
            return Err(bad("manifest chunk lattice exceeds the grid"));
        }
        if n_files == 0 {
            return Err(bad("manifest declares zero data files"));
        }
        let layout = ChunkLayout::new(dims, chunks);

        // Reserve conservatively: an adversarial manifest can declare
        // billions of files, and the first missing one errors out below
        // — don't let the pre-allocation itself be the failure.
        let mut chunks_of_file = Vec::with_capacity(n_files.min(1024) as usize);
        for f in 0..n_files {
            let path = file_path(&dir, FileId(f));
            let file_bytes = fs::metadata(&path)?.len();
            let mut fh = fs::File::open(&path)?;
            let mut header = [0u8; 12];
            fh.read_exact(&mut header)?;
            let n_records = parse_file_header(&header, "open")?;
            // Each record needs at least its 8-byte header plus the
            // trailer; a count the file cannot possibly hold is garbage
            // (and would otherwise reserve unbounded memory below).
            let body = file_bytes.saturating_sub(12);
            if n_records as u64 > body / (8 + RECORD_TRAILER_BYTES) {
                return Err(bad(format!(
                    "data file {f} declares {n_records} records in {body} body bytes"
                )));
            }
            let mut ids = Vec::with_capacity(n_records as usize);
            for _ in 0..n_records {
                let (id, len) = read_record_header(&mut fh)?;
                ids.push(id);
                skip_payload(&mut fh, len)?;
            }
            chunks_of_file.push(ids);
        }
        Ok(DiskStore {
            dir,
            layout,
            n_files,
            chunks_of_file,
            seam: FaultSeam::default(),
        })
    }

    /// Install a read-fault injection hook: subsequent
    /// [`read_chunk`](Self::read_chunk) / [`read_file`](Self::read_file)
    /// payload reads — and the reads of cursors opened *after* this call
    /// — consult it. See [`crate::integrity::ReadFaults`].
    pub fn set_read_faults(&mut self, hook: Arc<dyn ReadFaults>) {
        self.seam.hook = Some(hook);
    }

    /// Shared fault seam (cloned into cursors so the operation sequence
    /// is global per store).
    pub(crate) fn seam(&self) -> FaultSeam {
        self.seam.clone()
    }

    /// The chunk layout.
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// Filesystem path of one data file (for streaming readers).
    pub(crate) fn data_file_path(&self, file: FileId) -> PathBuf {
        file_path(&self.dir, file)
    }

    /// Open a streaming [`ChunkCursor`](crate::cursor::ChunkCursor) over
    /// `file`, materializing at most `budget_bytes` of payload per slab.
    pub fn cursor(
        &self,
        file: FileId,
        budget_bytes: usize,
    ) -> io::Result<crate::cursor::ChunkCursor> {
        crate::cursor::ChunkCursor::open(self, file, budget_bytes)
    }

    /// Number of data files.
    pub fn n_files(&self) -> u32 {
        self.n_files
    }

    /// Chunks stored in `file`, in record order.
    pub fn chunks_in_file(&self, file: FileId) -> &[ChunkId] {
        self.chunks_of_file
            .get(file.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Read one chunk's point data back from its data file, verifying
    /// the record checksum.
    pub fn read_chunk(&self, file: FileId, chunk: ChunkId) -> io::Result<RectGrid> {
        let mut fh = fs::File::open(file_path(&self.dir, file))?;
        let mut header = [0u8; 12];
        fh.read_exact(&mut header)?;
        let n_records = parse_file_header(&header, "read_chunk")?;
        for _ in 0..n_records {
            let (id, len) = read_record_header(&mut fh)?;
            if id == chunk {
                let payload = read_sealed_payload(&mut fh, len, &self.seam)?;
                return decode_chunk(&payload).ok_or_else(|| bad("corrupt chunk payload"));
            }
            skip_payload(&mut fh, len)?;
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("chunk {} not in file", chunk.0),
        ))
    }

    /// Read every chunk of `file` sequentially (the read filter's access
    /// pattern: one pass over the file in Hilbert order), verifying each
    /// record checksum.
    pub fn read_file(&self, file: FileId) -> io::Result<Vec<(ChunkId, RectGrid)>> {
        let mut fh = fs::File::open(file_path(&self.dir, file))?;
        let mut header = [0u8; 12];
        fh.read_exact(&mut header)?;
        let n_records = parse_file_header(&header, "read_file")?;
        let mut out = Vec::with_capacity(n_records.min(4096) as usize);
        for _ in 0..n_records {
            let (id, len) = read_record_header(&mut fh)?;
            let payload = read_sealed_payload(&mut fh, len, &self.seam)?;
            out.push((
                id,
                decode_chunk(&payload).ok_or_else(|| bad("corrupt chunk"))?,
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcvol_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn dataset() -> Dataset {
        Dataset::generate(Dims::new(9, 9, 17), (2, 2, 4), 6, 99)
    }

    #[test]
    fn write_open_roundtrip() {
        let dir = tmpdir("roundtrip");
        let ds = dataset();
        let written = write_dataset(&dir, &ds, 1, 3).unwrap();
        assert_eq!(written.n_files(), 6);

        let opened = DiskStore::open(&dir).unwrap();
        assert_eq!(opened.layout(), ds.layout());
        for f in 0..6 {
            assert_eq!(
                opened.chunks_in_file(FileId(f)),
                ds.chunks_in_file(FileId(f))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_contents_survive_the_disk() {
        let dir = tmpdir("contents");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 2).unwrap();
        for f in 0..store.n_files() {
            for &chunk in store.chunks_in_file(FileId(f)) {
                let from_disk = store.read_chunk(FileId(f), chunk).unwrap();
                let from_mem = ds.read_chunk(0, 2, chunk);
                assert_eq!(from_disk, from_mem, "chunk {}", chunk.0);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_file_scan_yields_hilbert_order() {
        let dir = tmpdir("scan");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let records = store.read_file(FileId(0)).unwrap();
        let ids: Vec<ChunkId> = records.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, ds.chunks_in_file(FileId(0)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_chunk_reports_not_found() {
        let dir = tmpdir("missing");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        // Find a chunk NOT in file 0.
        let absent = (0..ds.layout().count())
            .map(ChunkId)
            .find(|c| !store.chunks_in_file(FileId(0)).contains(c))
            .unwrap();
        let err = store.read_chunk(FileId(0), absent).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        let ds = dataset();
        write_dataset(&dir, &ds, 0, 0).unwrap();
        fs::write(dir.join("manifest.dcm"), b"garbage").unwrap();
        assert!(DiskStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipping_one_stored_payload_bit_is_detected() {
        let dir = tmpdir("bitflip");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let path = store.data_file_path(FileId(0));
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit inside the first record's payload (header is
        // 12 bytes, record header 8; +16 lands well inside the data).
        bytes[12 + 8 + 16] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let first = store.chunks_in_file(FileId(0))[0];
        let err = store.read_chunk(FileId(0), first).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_read_error_and_corruption_surface_structurally() {
        struct FailFirstCorruptSecond;
        impl ReadFaults for FailFirstCorruptSecond {
            fn read_error(&self, op: u64) -> Option<io::Error> {
                (op == 0).then(|| io::Error::other("injected read error"))
            }
            fn corrupt_bit(&self, op: u64, _len_bits: u64) -> Option<u64> {
                (op == 1).then_some(3)
            }
        }
        let dir = tmpdir("seam");
        let ds = dataset();
        let mut store = write_dataset(&dir, &ds, 0, 0).unwrap();
        store.set_read_faults(Arc::new(FailFirstCorruptSecond));
        let first = store.chunks_in_file(FileId(0))[0];
        let e1 = store.read_chunk(FileId(0), first).unwrap_err();
        assert_eq!(e1.to_string(), "injected read error");
        let e2 = store.read_chunk(FileId(0), first).unwrap_err();
        assert_eq!(e2.kind(), io::ErrorKind::InvalidData, "got: {e2}");
        // Op 2 is clean again: detection never poisons the store.
        assert!(store.read_chunk(FileId(0), first).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        /// Hardening pin: `DiskStore::open` never panics on arbitrary
        /// manifest bytes — truncated, garbage, or adversarial input all
        /// come back as structured errors.
        #[test]
        fn open_survives_arbitrary_manifest_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let dir = tmpdir(&format!("propmanifest_{}", fnv64(&bytes)));
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("manifest.dcm"), &bytes).unwrap();
            // Must return (almost surely an Err) without panicking.
            let _ = DiskStore::open(&dir);
            fs::remove_dir_all(&dir).unwrap();
        }

        /// A valid magic+version with arbitrary trailing fields must
        /// still parse safely (short buffers are the expect-path this
        /// guards) — and a declared record count far beyond the data
        /// file's size is rejected, not allocated.
        #[test]
        fn open_survives_truncated_valid_prefixes(extra in prop::collection::vec(any::<u8>(), 0..32)) {
            let mut m = Vec::new();
            m.extend_from_slice(MANIFEST_MAGIC);
            m.extend_from_slice(&VERSION.to_le_bytes());
            m.extend_from_slice(&extra);
            let dir = tmpdir(&format!("propprefix_{}", fnv64(&m)));
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("manifest.dcm"), &m).unwrap();
            let _ = DiskStore::open(&dir);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn absurd_record_counts_are_rejected_not_allocated() {
        let dir = tmpdir("absurd");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let path = store.data_file_path(FileId(0));
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, bytes).unwrap();
        let err = DiskStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("records"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
